"""Data-source filters: the wire format of a pushdown selection.

These mirror Spark SQL's ``org.apache.spark.sql.sources.Filter``
hierarchy -- the representation Catalyst hands to a
``PrunedFilteredScan`` data source.  In Scoop these filters travel
further: serialized to JSON, attached as request metadata to the object
GET, and evaluated by the CSV storlet next to the disk.

Evaluation here is *conservative* (NULL never matches), matching Spark's
contract that a data source may only drop rows the filter definitely
rejects.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.sql.errors import SqlError
from repro.sql.types import Row, Schema

Predicate = Callable[[Row], bool]


class Filter:
    """Base class for source filters."""

    op = "filter"

    def references(self) -> Set[str]:
        raise NotImplementedError

    def to_predicate(self, schema: Schema) -> Predicate:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return json.dumps(self.to_dict())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Filter) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))


class _AttributeFilter(Filter):
    """A filter on one attribute against a constant."""

    def __init__(self, attribute: str, value: Any = None):
        self.attribute = attribute
        self.value = value

    def references(self) -> Set[str]:
        return {self.attribute.lower()}

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "attr": self.attribute, "value": self.value}

    def _comparer(self) -> Callable[[Any, Any], bool]:
        raise NotImplementedError

    def to_predicate(self, schema: Schema) -> Predicate:
        index = schema.index_of(self.attribute)
        value = self.value
        compare = self._comparer()

        def predicate(row: Row) -> bool:
            cell = row[index]
            if cell is None:
                return False
            try:
                return compare(cell, value)
            except TypeError:
                return False

        return predicate


class EqualTo(_AttributeFilter):
    op = "eq"

    def _comparer(self):
        return lambda a, b: a == b


class GreaterThan(_AttributeFilter):
    op = "gt"

    def _comparer(self):
        return lambda a, b: a > b


class GreaterThanOrEqual(_AttributeFilter):
    op = "gte"

    def _comparer(self):
        return lambda a, b: a >= b


class LessThan(_AttributeFilter):
    op = "lt"

    def _comparer(self):
        return lambda a, b: a < b


class LessThanOrEqual(_AttributeFilter):
    op = "lte"

    def _comparer(self):
        return lambda a, b: a <= b


class StringStartsWith(_AttributeFilter):
    op = "starts_with"

    def _comparer(self):
        return lambda a, b: str(a).startswith(b)


class StringEndsWith(_AttributeFilter):
    op = "ends_with"

    def _comparer(self):
        return lambda a, b: str(a).endswith(b)


class StringContains(_AttributeFilter):
    op = "contains"

    def _comparer(self):
        return lambda a, b: b in str(a)


class In(_AttributeFilter):
    op = "in"

    def __init__(self, attribute: str, values: Sequence[Any]):
        super().__init__(attribute, list(values))

    def to_predicate(self, schema: Schema) -> Predicate:
        index = schema.index_of(self.attribute)
        members = set(self.value)

        def predicate(row: Row) -> bool:
            cell = row[index]
            return cell is not None and cell in members

        return predicate


class IsNull(_AttributeFilter):
    op = "is_null"

    def __init__(self, attribute: str):
        super().__init__(attribute, None)

    def to_predicate(self, schema: Schema) -> Predicate:
        index = schema.index_of(self.attribute)
        return lambda row: row[index] is None


class IsNotNull(_AttributeFilter):
    op = "is_not_null"

    def __init__(self, attribute: str):
        super().__init__(attribute, None)

    def to_predicate(self, schema: Schema) -> Predicate:
        index = schema.index_of(self.attribute)
        return lambda row: row[index] is not None


class LikePattern(_AttributeFilter):
    """A general LIKE pattern (%, _).

    Spark does not push arbitrary LIKE, but Scoop's CSV storlet can
    evaluate it; the delegator decomposes prefix/suffix/contains shapes
    into the simpler filters above and uses this node for the rest.
    """

    op = "like"

    def to_predicate(self, schema: Schema) -> Predicate:
        from repro.sql.expressions import like_pattern_to_regex

        index = schema.index_of(self.attribute)
        regex = like_pattern_to_regex(self.value)

        def predicate(row: Row) -> bool:
            cell = row[index]
            return cell is not None and regex.match(str(cell)) is not None

        return predicate


class And(Filter):
    op = "and"

    def __init__(self, left: Filter, right: Filter):
        self.left = left
        self.right = right

    def references(self) -> Set[str]:
        return self.left.references() | self.right.references()

    def to_predicate(self, schema: Schema) -> Predicate:
        left = self.left.to_predicate(schema)
        right = self.right.to_predicate(schema)
        return lambda row: left(row) and right(row)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }


class Or(Filter):
    op = "or"

    def __init__(self, left: Filter, right: Filter):
        self.left = left
        self.right = right

    def references(self) -> Set[str]:
        return self.left.references() | self.right.references()

    def to_predicate(self, schema: Schema) -> Predicate:
        left = self.left.to_predicate(schema)
        right = self.right.to_predicate(schema)
        return lambda row: left(row) or right(row)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }


class Not(Filter):
    op = "not"

    def __init__(self, child: Filter):
        self.child = child

    def references(self) -> Set[str]:
        return self.child.references()

    def to_predicate(self, schema: Schema) -> Predicate:
        child = self.child.to_predicate(schema)
        return lambda row: not child(row)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "child": self.child.to_dict()}


_SIMPLE_CLASSES: Dict[str, type] = {
    cls.op: cls
    for cls in (
        EqualTo,
        GreaterThan,
        GreaterThanOrEqual,
        LessThan,
        LessThanOrEqual,
        StringStartsWith,
        StringEndsWith,
        StringContains,
        LikePattern,
    )
}


def filter_from_dict(payload: Dict[str, Any]) -> Filter:
    """Deserialize one filter from its dict form."""
    op = payload.get("op")
    if op in _SIMPLE_CLASSES:
        return _SIMPLE_CLASSES[op](payload["attr"], payload["value"])
    if op == "in":
        return In(payload["attr"], payload["value"])
    if op == "is_null":
        return IsNull(payload["attr"])
    if op == "is_not_null":
        return IsNotNull(payload["attr"])
    if op == "and":
        return And(
            filter_from_dict(payload["left"]), filter_from_dict(payload["right"])
        )
    if op == "or":
        return Or(
            filter_from_dict(payload["left"]), filter_from_dict(payload["right"])
        )
    if op == "not":
        return Not(filter_from_dict(payload["child"]))
    raise SqlError(f"unknown filter op in payload: {op!r}")


def filters_to_json(filters: Sequence[Filter]) -> str:
    """Serialize a conjunctive filter list for HTTP transport."""
    return json.dumps([item.to_dict() for item in filters])


def filters_from_json(text: str) -> List[Filter]:
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise SqlError("filter payload must be a JSON list")
    return [filter_from_dict(item) for item in payload]


def conjunction_predicate(
    filters: Sequence[Filter], schema: Schema
) -> Predicate:
    """AND together a filter list into one row predicate."""
    predicates = [item.to_predicate(schema) for item in filters]
    if not predicates:
        return lambda row: True

    def predicate(row: Row) -> bool:
        return all(check(row) for check in predicates)

    return predicate
