"""Scalar function library and aggregate accumulators.

SUBSTRING follows Spark semantics: positions are 1-based and position 0
behaves like 1 (the GridPocket queries in Table I all use
``SUBSTRING(date, 0, k)`` to truncate ISO timestamps).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sql.errors import SqlAnalysisError


def _null_safe(function: Callable) -> Callable:
    """Return None when any argument is None (SQL scalar convention)."""

    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return function(*args)

    return wrapper


@_null_safe
def sql_substring(value: Any, position: int, length: Optional[int] = None) -> str:
    text = str(value)
    position = int(position)
    if position > 0:
        start = position - 1
    elif position == 0:
        start = 0
    else:
        start = max(0, len(text) + position)
    if length is None:
        return text[start:]
    if length < 0:
        return ""
    return text[start : start + int(length)]


@_null_safe
def sql_upper(value: Any) -> str:
    return str(value).upper()


@_null_safe
def sql_lower(value: Any) -> str:
    return str(value).lower()


@_null_safe
def sql_length(value: Any) -> int:
    return len(str(value))


@_null_safe
def sql_trim(value: Any) -> str:
    return str(value).strip()


def sql_concat(*args: Any) -> Optional[str]:
    if any(arg is None for arg in args):
        return None
    return "".join(str(arg) for arg in args)


@_null_safe
def sql_abs(value: Any):
    return abs(value)


@_null_safe
def sql_round(value: Any, digits: int = 0):
    return round(float(value), int(digits))


@_null_safe
def sql_floor(value: Any) -> int:
    return math.floor(value)


@_null_safe
def sql_ceil(value: Any) -> int:
    return math.ceil(value)


def sql_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


@_null_safe
def sql_cast_int(value: Any) -> int:
    return int(float(value))


@_null_safe
def sql_cast_float(value: Any) -> float:
    return float(value)


@_null_safe
def sql_year(value: Any) -> int:
    return int(str(value)[0:4])


@_null_safe
def sql_month(value: Any) -> int:
    return int(str(value)[5:7])


@_null_safe
def sql_day(value: Any) -> int:
    return int(str(value)[8:10])


@_null_safe
def sql_hour(value: Any) -> int:
    return int(str(value)[11:13])


# name -> (min_args, max_args, callable); max_args None = variadic
_SCALARS: Dict[str, Tuple[int, Optional[int], Callable]] = {
    "substring": (2, 3, sql_substring),
    "substr": (2, 3, sql_substring),
    "upper": (1, 1, sql_upper),
    "lower": (1, 1, sql_lower),
    "length": (1, 1, sql_length),
    "trim": (1, 1, sql_trim),
    "concat": (1, None, sql_concat),
    "abs": (1, 1, sql_abs),
    "round": (1, 2, sql_round),
    "floor": (1, 1, sql_floor),
    "ceil": (1, 1, sql_ceil),
    "coalesce": (1, None, sql_coalesce),
    "int": (1, 1, sql_cast_int),
    "float": (1, 1, sql_cast_float),
    "year": (1, 1, sql_year),
    "month": (1, 1, sql_month),
    "day": (1, 1, sql_day),
    "hour": (1, 1, sql_hour),
}


def lookup_scalar(name: str, arg_count: int) -> Callable:
    entry = _SCALARS.get(name.lower())
    if entry is None:
        raise SqlAnalysisError(f"unknown function {name!r}")
    minimum, maximum, function = entry
    if arg_count < minimum or (maximum is not None and arg_count > maximum):
        raise SqlAnalysisError(
            f"{name.upper()} takes "
            f"{minimum if maximum == minimum else f'{minimum}..{maximum or chr(8734)}'} "
            f"arguments, got {arg_count}"
        )
    return function


def scalar_function_names() -> List[str]:
    return sorted(_SCALARS)


class Accumulator:
    """Incremental state for one aggregate over one group."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class SumAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class CountAccumulator(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class MinAccumulator(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class MaxAccumulator(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class AvgAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count


class FirstValueAccumulator(Accumulator):
    def __init__(self) -> None:
        self.seen = False
        self.value: Any = None

    def add(self, value: Any) -> None:
        if not self.seen:
            self.seen = True
            self.value = value

    def result(self) -> Any:
        return self.value


class LastValueAccumulator(Accumulator):
    def __init__(self) -> None:
        self.value: Any = None

    def add(self, value: Any) -> None:
        self.value = value

    def result(self) -> Any:
        return self.value


class DistinctAccumulator(Accumulator):
    """Wraps another accumulator, feeding it each distinct value once."""

    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_ACCUMULATORS: Dict[str, Callable[[], Accumulator]] = {
    "sum": SumAccumulator,
    "count": CountAccumulator,
    "min": MinAccumulator,
    "max": MaxAccumulator,
    "avg": AvgAccumulator,
    "first_value": FirstValueAccumulator,
    "last_value": LastValueAccumulator,
}


def make_accumulator(name: str, distinct: bool = False) -> Accumulator:
    factory = _ACCUMULATORS.get(name.lower())
    if factory is None:
        raise SqlAnalysisError(f"unknown aggregate {name!r}")
    accumulator = factory()
    if distinct:
        accumulator = DistinctAccumulator(accumulator)
    return accumulator
