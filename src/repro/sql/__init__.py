"""A SQL engine with Catalyst-style projection/selection extraction.

Scoop's pushdown contract hinges on Spark SQL's Catalyst optimizer: given
a query, Catalyst "extracts the projection and selection filters implied
by the query" and hands them to the data source (paper Section III-A).
This package provides the equivalent machinery:

* :mod:`repro.sql.lexer` / :mod:`repro.sql.parser` -- SQL text to AST for
  the dialect GridPocket's queries use (SELECT with aggregates and
  aliases, WHERE with LIKE / comparisons / AND / OR, GROUP BY, ORDER BY,
  LIMIT, SUBSTRING and friends).
* :mod:`repro.sql.expressions` -- expression tree with schema binding and
  evaluation.
* :mod:`repro.sql.filters` -- the ``sources.Filter`` equivalents that
  cross the wire to the object store (EqualTo, GreaterThan,
  StringStartsWith, ...), JSON-serializable for HTTP headers.
* :mod:`repro.sql.catalyst` -- logical plans, rewrite rules, and
  ``extract_pushdown``: required columns + pushable filters + residual.
* :mod:`repro.sql.executor` -- volcano-style physical operators
  (filter, project, hash aggregate, sort, limit).
"""

from repro.sql.catalyst import (
    LogicalPlan,
    Optimizer,
    PushdownSpec,
    build_logical_plan,
    extract_pushdown,
)
from repro.sql.errors import SqlError, SqlParseError
from repro.sql.executor import execute_plan, execute_query
from repro.sql.expressions import (
    Aggregate,
    BinaryOp,
    Column,
    FunctionCall,
    Like,
    Literal,
    Star,
)
from repro.sql.filters import (
    And,
    EqualTo,
    Filter,
    GreaterThan,
    GreaterThanOrEqual,
    In,
    IsNotNull,
    LessThan,
    LessThanOrEqual,
    Not,
    Or,
    StringContains,
    StringEndsWith,
    StringStartsWith,
    filters_from_json,
    filters_to_json,
)
from repro.sql.parser import parse_query
from repro.sql.types import DataType, Field, Row, Schema

__all__ = [
    "Aggregate",
    "And",
    "BinaryOp",
    "Column",
    "DataType",
    "EqualTo",
    "Field",
    "Filter",
    "FunctionCall",
    "GreaterThan",
    "GreaterThanOrEqual",
    "In",
    "IsNotNull",
    "LessThan",
    "LessThanOrEqual",
    "Like",
    "Literal",
    "LogicalPlan",
    "Not",
    "Optimizer",
    "Or",
    "PushdownSpec",
    "Row",
    "Schema",
    "SqlError",
    "SqlParseError",
    "Star",
    "StringContains",
    "StringEndsWith",
    "StringStartsWith",
    "build_logical_plan",
    "execute_plan",
    "execute_query",
    "extract_pushdown",
    "filters_from_json",
    "filters_to_json",
    "parse_query",
]
