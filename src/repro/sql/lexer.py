"""Tokenizer for the SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.sql.errors import SqlParseError

KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "having",
    "order",
    "by",
    "as",
    "and",
    "or",
    "not",
    "like",
    "in",
    "between",
    "is",
    "null",
    "asc",
    "desc",
    "limit",
    "distinct",
    "true",
    "false",
    "case",
    "when",
    "then",
    "else",
    "end",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    DOT = "."
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in words

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r})"


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "/", "%", "||")


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SqlParseError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch == '"' or ch == "`":
            value, i = _read_quoted_ident(text, i, ch)
            tokens.append(Token(TokenType.IDENT, value, i))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", i))
            i += 1
            continue
        for operator in _OPERATORS:
            if text.startswith(operator, i):
                tokens.append(Token(TokenType.OPERATOR, operator, i))
                i += len(operator)
                break
        else:
            raise SqlParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping."""
    i = start + 1
    parts: List[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlParseError("unterminated string literal", start)


def _read_quoted_ident(text: str, start: int, quote: str) -> tuple[str, int]:
    end = text.find(quote, start + 1)
    if end < 0:
        raise SqlParseError("unterminated quoted identifier", start)
    return text[start + 1 : end], end + 1


def _read_number(text: str, start: int) -> tuple[str, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    return text[start:i], i
