"""Logical plans and the Catalyst-style optimizer.

"Given a SQL query, the optimizer extracts the projection and selection
filters implied by the query.  These extracted filters are then used by
Spark SQL with the customized flavors of the data source API" (paper
Section III-A).  This module provides exactly that:

* :func:`build_logical_plan` -- Query AST to logical plan
  (Scan -> Filter -> Aggregate/Project -> Distinct -> Sort -> Limit).
* :class:`Optimizer` -- rule-based rewrites: constant folding, boolean
  simplification, conjunct splitting and LIKE decomposition.
* :func:`extract_pushdown` -- the Data-Sources-API handshake: required
  columns (projection), convertible source filters (selection) and the
  residual predicate that must still run in the compute cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.sql import filters as f
from repro.sql.errors import SqlAnalysisError
from repro.sql.expressions import (
    Aggregate,
    Between,
    BinaryOp,
    Column,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.parser import Query
from repro.sql.types import Schema


# --------------------------------------------------------------------------
# Logical plan nodes
# --------------------------------------------------------------------------


class LogicalPlan:
    """Base class for logical plan nodes."""

    child: Optional["LogicalPlan"] = None

    def describe(self, indent: int = 0) -> str:
        line = " " * indent + self._label()
        if self.child is not None:
            return line + "\n" + self.child.describe(indent + 2)
        return line

    def _label(self) -> str:
        return type(self).__name__


class ScanNode(LogicalPlan):
    def __init__(self, table: str, schema: Schema):
        self.table = table
        self.schema = schema
        self.child = None

    def _label(self) -> str:
        return f"Scan({self.table}: {', '.join(self.schema.names)})"


class FilterNode(LogicalPlan):
    def __init__(self, condition: Expression, child: LogicalPlan):
        self.condition = condition
        self.child = child

    def _label(self) -> str:
        return f"Filter({self.condition.to_sql()})"


class ProjectNode(LogicalPlan):
    def __init__(self, items: List[SelectItem], child: LogicalPlan):
        self.items = items
        self.child = child

    def _label(self) -> str:
        return "Project(" + ", ".join(i.to_sql() for i in self.items) + ")"


class AggregateNode(LogicalPlan):
    def __init__(
        self,
        group_by: List[Expression],
        items: List[SelectItem],
        child: LogicalPlan,
        having: Optional[Expression] = None,
    ):
        self.group_by = group_by
        self.items = items
        self.child = child
        self.having = having

    def _label(self) -> str:
        keys = ", ".join(e.to_sql() for e in self.group_by)
        outs = ", ".join(i.to_sql() for i in self.items)
        having = (
            f", having={self.having.to_sql()}" if self.having is not None else ""
        )
        return f"Aggregate(keys=[{keys}], out=[{outs}]{having})"


class DistinctNode(LogicalPlan):
    def __init__(self, child: LogicalPlan):
        self.child = child


class SortNode(LogicalPlan):
    def __init__(
        self, order_by: List[Tuple[Expression, bool]], child: LogicalPlan
    ):
        self.order_by = order_by
        self.child = child

    def _label(self) -> str:
        keys = ", ".join(
            e.to_sql() + ("" if asc else " DESC") for e, asc in self.order_by
        )
        return f"Sort({keys})"


class LimitNode(LogicalPlan):
    def __init__(self, count: int, child: LogicalPlan):
        self.count = count
        self.child = child

    def _label(self) -> str:
        return f"Limit({self.count})"


def build_logical_plan(query: Query, schema: Schema) -> LogicalPlan:
    """Translate a parsed query into the canonical logical plan."""
    plan: LogicalPlan = ScanNode(query.table, schema)
    if query.where is not None:
        if query.where.contains_aggregate():
            raise SqlAnalysisError("aggregates are not allowed in WHERE")
        plan = FilterNode(query.where, plan)

    items = _expand_star(query.items, schema)
    has_aggregates = bool(query.group_by) or any(
        item.expression.contains_aggregate() for item in items
    )
    if has_aggregates:
        plan = AggregateNode(
            list(query.group_by), items, plan, having=query.having
        )
    elif query.having is not None:
        raise SqlAnalysisError("HAVING requires GROUP BY or aggregates")
    else:
        plan = ProjectNode(items, plan)
    if query.distinct:
        plan = DistinctNode(plan)
    if query.order_by:
        plan = SortNode(list(query.order_by), plan)
    if query.limit is not None:
        plan = LimitNode(query.limit, plan)
    return plan


def _expand_star(
    items: Sequence[SelectItem], schema: Schema
) -> List[SelectItem]:
    expanded: List[SelectItem] = []
    for item in items:
        if isinstance(item.expression, Star):
            expanded.extend(SelectItem(Column(name)) for name in schema.names)
        else:
            expanded.append(item)
    return expanded


# --------------------------------------------------------------------------
# Expression rewriting rules
# --------------------------------------------------------------------------


def fold_constants(expression: Expression) -> Expression:
    """Evaluate literal-only subtrees and simplify boolean algebra."""
    rewritten = _rewrite_children(expression, fold_constants)

    if isinstance(rewritten, BinaryOp):
        left, right = rewritten.left, rewritten.right
        if rewritten.op == "and":
            if _is_literal(left, True):
                return right
            if _is_literal(right, True):
                return left
            if _is_literal(left, False) or _is_literal(right, False):
                return Literal(False)
        elif rewritten.op == "or":
            if _is_literal(left, False):
                return right
            if _is_literal(right, False):
                return left
            if _is_literal(left, True) or _is_literal(right, True):
                return Literal(True)
        if isinstance(left, Literal) and isinstance(right, Literal):
            return _evaluate_constant(rewritten)
    elif isinstance(rewritten, UnaryOp):
        if rewritten.op == "not" and isinstance(rewritten.operand, UnaryOp):
            inner = rewritten.operand
            if inner.op == "not":
                return inner.operand
        if isinstance(rewritten.operand, Literal):
            return _evaluate_constant(rewritten)
    elif isinstance(rewritten, FunctionCall):
        if all(isinstance(arg, Literal) for arg in rewritten.args):
            return _evaluate_constant(rewritten)
    return rewritten


def _rewrite_children(expression: Expression, rule) -> Expression:
    if isinstance(expression, BinaryOp):
        return BinaryOp(expression.op, rule(expression.left), rule(expression.right))
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, rule(expression.operand))
    if isinstance(expression, Like):
        return Like(rule(expression.operand), expression.pattern, expression.negated)
    if isinstance(expression, InList):
        return InList(
            rule(expression.operand),
            [rule(item) for item in expression.items],
            expression.negated,
        )
    if isinstance(expression, Between):
        return Between(
            rule(expression.operand),
            rule(expression.low),
            rule(expression.high),
            expression.negated,
        )
    if isinstance(expression, IsNull):
        return IsNull(rule(expression.operand), expression.negated)
    if isinstance(expression, FunctionCall):
        return FunctionCall(expression.name, [rule(arg) for arg in expression.args])
    if isinstance(expression, Aggregate):
        return Aggregate(expression.name, rule(expression.arg), expression.distinct)
    return expression


def _is_literal(expression: Expression, value) -> bool:
    return isinstance(expression, Literal) and expression.value is value


def _evaluate_constant(expression: Expression) -> Expression:
    empty_schema = Schema([])
    try:
        return Literal(expression.bind(empty_schema)(()))
    except Exception:
        return expression


def split_conjuncts(expression: Expression) -> List[Expression]:
    """Flatten a tree of top-level ANDs into its conjuncts."""
    if isinstance(expression, BinaryOp) and expression.op == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild an AND-tree from a conjunct list (None when empty)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("and", result, conjunct)
    return result


# --------------------------------------------------------------------------
# Expression -> source-filter conversion (the pushdown boundary)
# --------------------------------------------------------------------------

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}
_COMPARE_FILTERS = {
    "=": f.EqualTo,
    ">": f.GreaterThan,
    ">=": f.GreaterThanOrEqual,
    "<": f.LessThan,
    "<=": f.LessThanOrEqual,
}


def decompose_like(attribute: str, pattern: str) -> f.Filter:
    """Rewrite a LIKE pattern into the cheapest equivalent source filter.

    ``abc`` -> EqualTo, ``abc%`` -> StartsWith, ``%abc`` -> EndsWith,
    ``%abc%`` -> Contains, anything else -> general LikePattern.
    """
    has_underscore = "_" in pattern
    body = pattern.strip("%")
    if not has_underscore and "%" not in body:
        starts = not pattern.startswith("%")
        ends = not pattern.endswith("%")
        if starts and ends:
            return f.EqualTo(attribute, body)
        if starts:
            return f.StringStartsWith(attribute, body)
        if ends:
            return f.StringEndsWith(attribute, body)
        return f.StringContains(attribute, body)
    return f.LikePattern(attribute, pattern)


def expression_to_filter(expression: Expression) -> Optional[f.Filter]:
    """Convert one predicate expression to a source filter, or None if it
    cannot be pushed (references computed values, non-literal operands...)."""
    if isinstance(expression, BinaryOp):
        if expression.op == "and":
            left = expression_to_filter(expression.left)
            right = expression_to_filter(expression.right)
            if left is not None and right is not None:
                return f.And(left, right)
            return None
        if expression.op == "or":
            left = expression_to_filter(expression.left)
            right = expression_to_filter(expression.right)
            if left is not None and right is not None:
                return f.Or(left, right)
            return None
        if expression.op in _COMPARE_FILTERS or expression.op in ("<>", "!="):
            column, literal, op = _normalize_comparison(expression)
            if column is None:
                return None
            if op in ("<>", "!="):
                return f.Not(f.EqualTo(column, literal))
            return _COMPARE_FILTERS[op](column, literal)
        return None
    if isinstance(expression, UnaryOp) and expression.op == "not":
        inner = expression_to_filter(expression.operand)
        return f.Not(inner) if inner is not None else None
    if isinstance(expression, Like):
        if not isinstance(expression.operand, Column):
            return None
        converted = decompose_like(expression.operand.name, expression.pattern)
        return f.Not(converted) if expression.negated else converted
    if isinstance(expression, InList):
        if not isinstance(expression.operand, Column):
            return None
        values = []
        for item in expression.items:
            if not isinstance(item, Literal):
                return None
            values.append(item.value)
        converted: f.Filter = f.In(expression.operand.name, values)
        return f.Not(converted) if expression.negated else converted
    if isinstance(expression, Between):
        if not isinstance(expression.operand, Column):
            return None
        if not (
            isinstance(expression.low, Literal)
            and isinstance(expression.high, Literal)
        ):
            return None
        name = expression.operand.name
        converted = f.And(
            f.GreaterThanOrEqual(name, expression.low.value),
            f.LessThanOrEqual(name, expression.high.value),
        )
        return f.Not(converted) if expression.negated else converted
    if isinstance(expression, IsNull):
        if not isinstance(expression.operand, Column):
            return None
        if expression.negated:
            return f.IsNotNull(expression.operand.name)
        return f.IsNull(expression.operand.name)
    return None


def _normalize_comparison(expression: BinaryOp):
    """Orient ``column op literal``; returns (name, value, op) or Nones."""
    left, right, op = expression.left, expression.right, expression.op
    if isinstance(left, Column) and isinstance(right, Literal):
        return left.name, right.value, op
    if isinstance(left, Literal) and isinstance(right, Column):
        return right.name, left.value, _FLIPPED.get(op, op)
    return None, None, op


# --------------------------------------------------------------------------
# Pushdown extraction
# --------------------------------------------------------------------------


@dataclass
class PushdownSpec:
    """What the data source is asked to do (projection + selection).

    ``required_columns`` are in base-schema order.  ``filters`` is a
    conjunctive list the source *may* apply (it must not drop rows the
    filters keep).  ``residual`` is the predicate part the compute side
    must still evaluate; Spark conservatively re-applies all filters
    upstream anyway, and so does our executor.
    """

    required_columns: List[str]
    filters: List[f.Filter] = field(default_factory=list)
    residual: Optional[Expression] = None

    @property
    def column_count(self) -> int:
        return len(self.required_columns)

    def describe(self) -> str:
        filters = ", ".join(repr(item) for item in self.filters) or "none"
        residual = self.residual.to_sql() if self.residual else "none"
        return (
            f"columns=[{', '.join(self.required_columns)}] "
            f"filters=[{filters}] residual={residual}"
        )


def required_columns(query: Query, schema: Schema) -> List[str]:
    """All base columns the query touches, in schema order."""
    referenced: Set[str] = set()
    for item in _expand_star(query.items, schema):
        referenced |= item.expression.columns()
    if query.where is not None:
        referenced |= query.where.columns()
    for expression in query.group_by:
        referenced |= expression.columns()
    for expression, _ascending in query.order_by:
        referenced |= expression.columns()
    # ORDER BY / GROUP BY may also name select aliases; those resolve to
    # the aliased expressions whose base columns are already in the select
    # items' reference set, so filtering against schema names suffices.
    return [name for name in schema.names if name.lower() in referenced]


def extract_pushdown(query: Query, schema: Schema) -> PushdownSpec:
    """The PrunedFilteredScan handshake for a query against ``schema``."""
    columns = required_columns(query, schema)
    filters: List[f.Filter] = []
    residual_parts: List[Expression] = []
    if query.where is not None:
        folded = fold_constants(query.where)
        for conjunct in split_conjuncts(folded):
            converted = expression_to_filter(conjunct)
            known = conjunct.columns() <= {n.lower() for n in schema.names}
            if converted is not None and known:
                filters.append(converted)
            else:
                residual_parts.append(conjunct)
    return PushdownSpec(
        required_columns=columns,
        filters=filters,
        residual=conjoin(residual_parts),
    )


class Optimizer:
    """Rule-based logical optimizer.

    Rules applied (in order): constant folding on every expression,
    removal of always-true filters, replacement of always-false filters'
    subtree results at execution time (the executor short-circuits), and
    column pruning via :func:`extract_pushdown` when the consumer asks.
    """

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        return self._rewrite(plan)

    def _rewrite(self, plan: LogicalPlan) -> LogicalPlan:
        if plan.child is not None:
            plan.child = self._rewrite(plan.child)
        if isinstance(plan, FilterNode):
            condition = fold_constants(plan.condition)
            if _is_literal(condition, True):
                return plan.child  # type: ignore[return-value]
            plan.condition = condition
        if isinstance(plan, ProjectNode):
            plan.items = [
                SelectItem(fold_constants(item.expression), item.alias)
                for item in plan.items
            ]
        if isinstance(plan, AggregateNode):
            plan.group_by = [fold_constants(e) for e in plan.group_by]
            plan.items = [
                SelectItem(fold_constants(item.expression), item.alias)
                for item in plan.items
            ]
            if plan.having is not None:
                plan.having = fold_constants(plan.having)
        return plan
