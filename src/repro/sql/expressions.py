"""Expression trees: construction, schema binding and evaluation.

Every expression can ``bind(schema)`` itself into a plain Python closure
``row -> value`` so that per-row evaluation costs no tree walking.  NULL
handling follows SQL three-valued logic where it matters (comparisons
propagate None; AND/OR use Kleene logic; WHERE treats None as false).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sql.errors import SqlAnalysisError, SqlTypeError
from repro.sql.types import Row, Schema

Evaluator = Callable[[Row], Any]


class Expression:
    """Base expression node."""

    def children(self) -> Sequence["Expression"]:
        return ()

    def bind(self, schema: Schema) -> Evaluator:
        raise NotImplementedError

    def columns(self) -> Set[str]:
        found: Set[str] = set()
        for child in self.children():
            found |= child.columns()
        return found

    def contains_aggregate(self) -> bool:
        return any(child.contains_aggregate() for child in self.children())

    def aggregates(self) -> List["Aggregate"]:
        found: List[Aggregate] = []
        for child in self.children():
            found.extend(child.aggregates())
        return found

    def to_sql(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_sql()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        raise NotImplementedError


class Literal(Expression):
    def __init__(self, value: Any):
        self.value = value

    def bind(self, schema: Schema) -> Evaluator:
        value = self.value
        return lambda row: value

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)

    def _key(self) -> Tuple:
        return (self.value,)


class Column(Expression):
    def __init__(self, name: str):
        self.name = name

    def bind(self, schema: Schema) -> Evaluator:
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def columns(self) -> Set[str]:
        return {self.name.lower()}

    def to_sql(self) -> str:
        return self.name

    def _key(self) -> Tuple:
        return (self.name.lower(),)


class Star(Expression):
    """``*`` -- only valid as a select item or inside COUNT(*)."""

    def bind(self, schema: Schema) -> Evaluator:
        raise SqlAnalysisError("'*' cannot be evaluated as a scalar")

    def to_sql(self) -> str:
        return "*"

    def _key(self) -> Tuple:
        return ()


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}
_COMPARISON = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class BinaryOp(Expression):
    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op.lower() if op.lower() in ("and", "or") else op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def bind(self, schema: Schema) -> Evaluator:
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        op = self.op
        if op == "and":

            def eval_and(row: Row) -> Any:
                a = left(row)
                if a is False:
                    return False
                b = right(row)
                if b is False:
                    return False
                if a is None or b is None:
                    return None
                return bool(a) and bool(b)

            return eval_and
        if op == "or":

            def eval_or(row: Row) -> Any:
                a = left(row)
                if a is True:
                    return True
                b = right(row)
                if b is True:
                    return True
                if a is None or b is None:
                    return None
                return bool(a) or bool(b)

            return eval_or
        if op == "||":

            def eval_concat(row: Row) -> Any:
                a, b = left(row), right(row)
                if a is None or b is None:
                    return None
                return str(a) + str(b)

            return eval_concat
        if op in _COMPARISON:
            compare = _COMPARISON[op]

            def eval_compare(row: Row) -> Any:
                a, b = left(row), right(row)
                if a is None or b is None:
                    return None
                try:
                    return compare(a, b)
                except TypeError as error:
                    raise SqlTypeError(
                        f"cannot compare {a!r} {op} {b!r}"
                    ) from error

            return eval_compare
        if op in _ARITHMETIC:
            compute = _ARITHMETIC[op]

            def eval_arith(row: Row) -> Any:
                a, b = left(row), right(row)
                if a is None or b is None:
                    return None
                try:
                    return compute(a, b)
                except TypeError as error:
                    raise SqlTypeError(f"cannot apply {a!r} {op} {b!r}") from error
                except ZeroDivisionError:
                    return None

            return eval_arith
        raise SqlAnalysisError(f"unknown operator {op!r}")

    def to_sql(self) -> str:
        op = self.op.upper() if self.op in ("and", "or") else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"

    def _key(self) -> Tuple:
        return (self.op, self.left, self.right)


class UnaryOp(Expression):
    def __init__(self, op: str, operand: Expression):
        self.op = op.lower()
        self.operand = operand

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def bind(self, schema: Schema) -> Evaluator:
        inner = self.operand.bind(schema)
        if self.op == "not":

            def eval_not(row: Row) -> Any:
                value = inner(row)
                if value is None:
                    return None
                return not value

            return eval_not
        if self.op == "-":

            def eval_neg(row: Row) -> Any:
                value = inner(row)
                return None if value is None else -value

            return eval_neg
        raise SqlAnalysisError(f"unknown unary operator {self.op!r}")

    def to_sql(self) -> str:
        return f"({self.op.upper()} {self.operand.to_sql()})"

    def _key(self) -> Tuple:
        return (self.op, self.operand)


def like_pattern_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (``%``, ``_``) into a regex."""
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


class Like(Expression):
    def __init__(self, operand: Expression, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def bind(self, schema: Schema) -> Evaluator:
        inner = self.operand.bind(schema)
        regex = like_pattern_to_regex(self.pattern)
        negated = self.negated

        def eval_like(row: Row) -> Any:
            value = inner(row)
            if value is None:
                return None
            matched = regex.match(str(value)) is not None
            return (not matched) if negated else matched

        return eval_like

    def to_sql(self) -> str:
        negation = " NOT" if self.negated else ""
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.to_sql()}{negation} LIKE '{escaped}')"

    def _key(self) -> Tuple:
        return (self.operand, self.pattern, self.negated)


class InList(Expression):
    def __init__(
        self, operand: Expression, items: Sequence[Expression], negated: bool = False
    ):
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand, *self.items)

    def bind(self, schema: Schema) -> Evaluator:
        inner = self.operand.bind(schema)
        item_evals = [item.bind(schema) for item in self.items]
        negated = self.negated

        def eval_in(row: Row) -> Any:
            value = inner(row)
            if value is None:
                return None
            members = {evaluate(row) for evaluate in item_evals}
            result = value in members
            return (not result) if negated else result

        return eval_in

    def to_sql(self) -> str:
        negation = " NOT" if self.negated else ""
        items = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()}{negation} IN ({items}))"

    def _key(self) -> Tuple:
        return (self.operand, tuple(self.items), self.negated)


class Between(Expression):
    def __init__(
        self,
        operand: Expression,
        low: Expression,
        high: Expression,
        negated: bool = False,
    ):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.low, self.high)

    def bind(self, schema: Schema) -> Evaluator:
        inner = self.operand.bind(schema)
        low = self.low.bind(schema)
        high = self.high.bind(schema)
        negated = self.negated

        def eval_between(row: Row) -> Any:
            value = inner(row)
            lo, hi = low(row), high(row)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if negated else result

        return eval_between

    def to_sql(self) -> str:
        negation = " NOT" if self.negated else ""
        return (
            f"({self.operand.to_sql()}{negation} BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )

    def _key(self) -> Tuple:
        return (self.operand, self.low, self.high, self.negated)


class IsNull(Expression):
    def __init__(self, operand: Expression, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def bind(self, schema: Schema) -> Evaluator:
        inner = self.operand.bind(schema)
        negated = self.negated

        def eval_is_null(row: Row) -> Any:
            result = inner(row) is None
            return (not result) if negated else result

        return eval_is_null

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"

    def _key(self) -> Tuple:
        return (self.operand, self.negated)


class CaseWhen(Expression):
    def __init__(
        self,
        branches: Sequence[Tuple[Expression, Expression]],
        otherwise: Optional[Expression] = None,
    ):
        self.branches = list(branches)
        self.otherwise = otherwise

    def children(self) -> Sequence[Expression]:
        kids: List[Expression] = []
        for condition, result in self.branches:
            kids.extend((condition, result))
        if self.otherwise is not None:
            kids.append(self.otherwise)
        return kids

    def bind(self, schema: Schema) -> Evaluator:
        bound = [
            (condition.bind(schema), result.bind(schema))
            for condition, result in self.branches
        ]
        default = (
            self.otherwise.bind(schema) if self.otherwise is not None else None
        )

        def eval_case(row: Row) -> Any:
            for condition, result in bound:
                if condition(row) is True:
                    return result(row)
            return default(row) if default is not None else None

        return eval_case

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise.to_sql()}")
        parts.append("END")
        return " ".join(parts)

    def _key(self) -> Tuple:
        return (tuple(self.branches), self.otherwise)


class FunctionCall(Expression):
    """A scalar function call (SUBSTRING, UPPER, ...)."""

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name.lower()
        self.args = list(args)

    def children(self) -> Sequence[Expression]:
        return tuple(self.args)

    def bind(self, schema: Schema) -> Evaluator:
        from repro.sql.functions import lookup_scalar

        function = lookup_scalar(self.name, len(self.args))
        arg_evals = [arg.bind(schema) for arg in self.args]

        def eval_call(row: Row) -> Any:
            return function(*[evaluate(row) for evaluate in arg_evals])

        return eval_call

    def to_sql(self) -> str:
        args = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name.upper()}({args})"

    def _key(self) -> Tuple:
        return (self.name, tuple(self.args))


AGGREGATE_NAMES = {
    "sum",
    "min",
    "max",
    "count",
    "avg",
    "first_value",
    "last_value",
}


class Aggregate(Expression):
    """An aggregate call: SUM(x), COUNT(*), FIRST_VALUE(city)..."""

    def __init__(
        self, name: str, arg: Expression, distinct: bool = False
    ):
        self.name = name.lower()
        if self.name not in AGGREGATE_NAMES:
            raise SqlAnalysisError(f"unknown aggregate {name!r}")
        self.arg = arg
        self.distinct = distinct

    def children(self) -> Sequence[Expression]:
        return (self.arg,)

    def contains_aggregate(self) -> bool:
        return True

    def aggregates(self) -> List["Aggregate"]:
        return [self]

    def columns(self) -> Set[str]:
        if isinstance(self.arg, Star):
            return set()
        return self.arg.columns()

    def bind(self, schema: Schema) -> Evaluator:
        raise SqlAnalysisError(
            f"aggregate {self.name.upper()} outside an aggregation context"
        )

    def bind_input(self, schema: Schema) -> Evaluator:
        """Bind the aggregate's input expression (Star yields 1)."""
        if isinstance(self.arg, Star):
            return lambda row: 1
        return self.arg.bind(schema)

    def to_sql(self) -> str:
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({prefix}{self.arg.to_sql()})"

    def _key(self) -> Tuple:
        return (self.name, self.arg, self.distinct)


class SelectItem:
    """One projection item: expression plus optional alias."""

    def __init__(self, expression: Expression, alias: Optional[str] = None):
        self.expression = expression
        self.alias = alias

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, Column):
            return self.expression.name
        return self.expression.to_sql()

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expression.to_sql()} AS {self.alias}"
        return self.expression.to_sql()

    def __repr__(self) -> str:
        return f"SelectItem({self.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SelectItem)
            and self.expression == other.expression
            and self.alias == other.alias
        )
