"""Recursive-descent parser producing :class:`Query` ASTs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sql.errors import SqlParseError
from repro.sql.expressions import (
    AGGREGATE_NAMES,
    Aggregate,
    Between,
    BinaryOp,
    CaseWhen,
    Column,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.lexer import Token, TokenType, tokenize


@dataclass
class Query:
    """A parsed SELECT statement."""

    items: List[SelectItem]
    table: str
    distinct: bool = False
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[Tuple[Expression, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        parts.append(f"FROM {self.table}")
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(e.to_sql() for e in self.group_by)
            )
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            rendered = ", ".join(
                e.to_sql() + ("" if ascending else " DESC")
                for e, ascending in self.order_by
            )
            parts.append("ORDER BY " + rendered)
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def parse_query(text: str) -> Query:
    """Parse SQL text into a :class:`Query`; raises :class:`SqlParseError`."""
    return _Parser(tokenize(text)).parse()


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used by tests and filter tooling)."""
    parser = _Parser(tokenize(text))
    expression = parser._expression()
    parser._expect_eof()
    return expression


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, text: Optional[str] = None) -> bool:
        token = self._current
        if token.type is not token_type:
            return False
        return text is None or token.text == text

    def _accept(self, token_type: TokenType, text: Optional[str] = None) -> bool:
        if self._check(token_type, text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, *words: str) -> bool:
        if self._current.is_keyword(*words):
            self._advance()
            return True
        return False

    def _expect(self, token_type: TokenType, text: Optional[str] = None) -> Token:
        if not self._check(token_type, text):
            raise SqlParseError(
                f"expected {text or token_type.value}, got "
                f"{self._current.text!r}",
                self._current.position,
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlParseError(
                f"expected {word.upper()}, got {self._current.text!r}",
                self._current.position,
            )

    def _expect_eof(self) -> None:
        if self._current.type is not TokenType.EOF:
            raise SqlParseError(
                f"unexpected trailing input: {self._current.text!r}",
                self._current.position,
            )

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = self._select_items()
        self._expect_keyword("from")
        table = self._expect(TokenType.IDENT).text

        where = None
        if self._accept_keyword("where"):
            where = self._expression()

        group_by: List[Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._expression_list()

        having = None
        if self._accept_keyword("having"):
            having = self._expression()

        order_by: List[Tuple[Expression, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            while True:
                expression = self._expression()
                ascending = True
                if self._accept_keyword("desc"):
                    ascending = False
                else:
                    self._accept_keyword("asc")
                order_by.append((expression, ascending))
                if not self._accept(TokenType.COMMA):
                    break

        limit = None
        if self._accept_keyword("limit"):
            token = self._expect(TokenType.NUMBER)
            limit = int(token.text)

        self._expect_eof()
        return Query(
            items=items,
            table=table,
            distinct=distinct,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _select_items(self) -> List[SelectItem]:
        items: List[SelectItem] = []
        while True:
            if self._accept(TokenType.STAR):
                items.append(SelectItem(Star()))
            else:
                expression = self._expression()
                alias = None
                if self._accept_keyword("as"):
                    alias = self._expect(TokenType.IDENT).text
                elif self._check(TokenType.IDENT):
                    alias = self._advance().text
                items.append(SelectItem(expression, alias))
            if not self._accept(TokenType.COMMA):
                return items

    def _expression_list(self) -> List[Expression]:
        expressions = [self._expression()]
        while self._accept(TokenType.COMMA):
            expressions.append(self._expression())
        return expressions

    # Precedence: OR < AND < NOT < predicate < additive < multiplicative < unary
    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._additive()
        negated = self._accept_keyword("not")
        if self._accept_keyword("like"):
            pattern = self._expect(TokenType.STRING).text
            return Like(left, pattern, negated)
        if self._accept_keyword("in"):
            self._expect(TokenType.LPAREN)
            items = self._expression_list()
            self._expect(TokenType.RPAREN)
            return InList(left, items, negated)
        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return Between(left, low, high, negated)
        if negated:
            raise SqlParseError(
                "NOT must be followed by LIKE, IN or BETWEEN here",
                self._current.position,
            )
        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, is_negated)
        if self._check(TokenType.OPERATOR) and self._current.text in (
            "=",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self._advance().text
            right = self._additive()
            return BinaryOp(op, left, right)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self._check(TokenType.OPERATOR) and self._current.text in (
            "+",
            "-",
            "||",
        ):
            op = self._advance().text
            left = BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            if self._check(TokenType.STAR):
                self._advance()
                left = BinaryOp("*", left, self._unary())
            elif self._check(TokenType.OPERATOR) and self._current.text in (
                "/",
                "%",
            ):
                op = self._advance().text
                left = BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self._check(TokenType.OPERATOR) and self._current.text == "-":
            self._advance()
            return UnaryOp("-", self._unary())
        if self._check(TokenType.OPERATOR) and self._current.text == "+":
            self._advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.text or "e" in token.text or "E" in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("case"):
            return self._case()
        if token.type is TokenType.LPAREN:
            self._advance()
            expression = self._expression()
            self._expect(TokenType.RPAREN)
            return expression
        if token.type is TokenType.IDENT:
            self._advance()
            if self._accept(TokenType.LPAREN):
                return self._call(token.text)
            return Column(token.text)
        raise SqlParseError(
            f"unexpected token {token.text!r}", token.position
        )

    def _case(self) -> Expression:
        self._expect_keyword("case")
        branches: List[Tuple[Expression, Expression]] = []
        while self._accept_keyword("when"):
            condition = self._expression()
            self._expect_keyword("then")
            result = self._expression()
            branches.append((condition, result))
        if not branches:
            raise SqlParseError(
                "CASE needs at least one WHEN branch", self._current.position
            )
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._expression()
        self._expect_keyword("end")
        return CaseWhen(branches, otherwise)

    def _call(self, name: str) -> Expression:
        lowered = name.lower()
        distinct = False
        if lowered in AGGREGATE_NAMES and self._accept_keyword("distinct"):
            distinct = True
        args: List[Expression] = []
        if self._check(TokenType.STAR):
            self._advance()
            args.append(Star())
        elif not self._check(TokenType.RPAREN):
            args = self._expression_list()
        self._expect(TokenType.RPAREN)
        if lowered in AGGREGATE_NAMES:
            if len(args) != 1:
                raise SqlParseError(
                    f"{name.upper()} takes exactly one argument",
                    self._current.position,
                )
            return Aggregate(lowered, args[0], distinct)
        return FunctionCall(lowered, args)
