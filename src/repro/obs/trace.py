"""Request-scoped trace spans across every tier of the GET/query path.

One analytics read crosses six tiers -- connector, Swift client, load
balancer/proxy, middleware, storlet sandbox, object backend -- and the
only way to explain *where* bytes were discarded or time was spent is to
follow a single request through all of them.  A :class:`TraceCollector`
does that: the connector mints a trace id, attaches it to the request as
the ``X-Trace-Id`` header, and every tier underneath records a
:class:`Span` carrying the same id.

Design constraints (shared with the chaos suite, docs/observability.md):

* **Deterministic ids.**  Trace and span ids come from seeded process
  counters, never from clocks or RNGs, so two runs of the same workload
  assign the same ids (modulo thread interleaving of *allocation
  order*, which nothing fingerprints).
* **No wall time in fingerprints.**  Spans do carry wall durations
  (``time.perf_counter``), but nothing the chaos suite fingerprints is
  derived from them; byte counts and retry counts are exact.
* **Streaming-safe.**  The data plane is lazy: a response body streams
  *after* the request returns.  Spans for streaming tiers therefore
  stay open until the stream drains (or is abandoned) and are finalized
  from the iterator's ``finally`` block, so their byte counts reconcile
  exactly with :class:`~repro.connector.stocator.TransferMetrics`.
* **Bounded, coherently.**  The collector is bounded by
  :attr:`~TraceCollector.max_spans` via *head-based sampling*: the
  keep/drop decision is made once per trace id, when the trace's first
  span arrives, and applies to every later span of that trace.  An
  exported trace is therefore always complete -- never truncated
  mid-request -- at the price of a soft cap (a trace admitted near the
  limit records all of its spans).  ``dropped`` counts whole dropped
  traces (anonymous spans, which carry no trace id, count
  individually).  Overflow is *counted*, never silent.

The collector is process-global (like :mod:`logging`): tiers call
:func:`get_collector` and record only when it is enabled, which costs a
single attribute check on the hot path.  Enable it with the
``REPRO_TRACE=1`` environment variable, ``ScoopContext(trace=True)`` or
:meth:`TraceCollector.enable`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Header propagating the trace id between tiers (case-insensitive; the
#: HeaderDict normalizes).  Mirrors the W3C/B3 style single-header model.
TRACE_HEADER = "x-trace-id"


@dataclass
class Span:
    """One tier's view of one operation.

    ``bytes_in``/``bytes_out`` are the tier's own accounting (what it
    read from below / emitted above); ``attributes`` carries flat
    string/number facts (node, worker, retries, admission wait...).
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    tier: str
    operation: str
    start: float = 0.0
    duration: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)
    # Whether this span is being recorded (False when the collector was
    # disabled at start time: every mutation becomes a cheap no-op).
    _live: bool = field(default=True, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """The span as plain JSON-ready data."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tier": self.tier,
            "operation": self.operation,
            "start": self.start,
            "duration": self.duration,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


_NULL_SPAN = Span("", 0, None, "", "", _live=False)


class TraceCollector:
    """Thread-safe sink for spans, with deterministic id allocation.

    Spans are recorded via the ``start``/``finish`` pair (streaming
    tiers finish from a ``finally``) or the :meth:`span` context
    manager.  Parenting uses a per-thread stack of open spans: the GET
    path is synchronous down the tiers within one thread, so nesting
    falls out naturally; cross-thread streams simply start a new root
    under the same trace id.
    """

    def __init__(self, enabled: bool = False, max_spans: int = 100_000):
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        #: Whole traces (or anonymous spans) discarded because
        #: ``max_spans`` was reached -- counted, never silent (exported
        #: alongside the spans).
        self.dropped = 0
        #: Head-based sampling decisions, one per trace id, made when
        #: the trace's first span is allocated.
        self._trace_keep: Dict[str, bool] = {}
        self._lock = threading.Lock()
        # Seeded counters: ids are deterministic, clock/RNG-free.
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._stacks = threading.local()

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording spans (already-recorded spans are kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Forget every recorded span and rewind the id counters."""
        with self._lock:
            self.spans = []
            self.dropped = 0
            self._trace_keep = {}
            self._trace_ids = itertools.count(1)
            self._span_ids = itertools.count(1)

    # -- recording ----------------------------------------------------------

    def new_trace_id(self) -> str:
        """Mint the next deterministic trace id (``t00000001``, ...)."""
        with self._lock:
            return f"t{next(self._trace_ids):08d}"

    def start(
        self,
        tier: str,
        operation: str,
        trace_id: str = "",
        **attributes: Any,
    ) -> Span:
        """Open a span; finish it with :meth:`finish` (also on errors)."""
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        with self._lock:
            span_id = next(self._span_ids)
            if trace_id:
                # Head-based sampling: decide the whole trace's fate at
                # root-span creation (first sight of the trace id).
                self._keep_locked(trace_id)
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=stack[-1].span_id if stack else None,
            tier=tier,
            operation=operation,
            start=time.perf_counter(),
            attributes=dict(attributes),
        )
        stack.append(span)
        return span

    def finish(
        self, span: Span, status: Optional[str] = None, **attributes: Any
    ) -> None:
        """Close a span and record it (idempotent for the null span)."""
        if not span._live or span is _NULL_SPAN:
            return
        span._live = False
        span.duration = time.perf_counter() - span.start
        if status is not None:
            span.status = status
        span.attributes.update(attributes)
        stack = self._stack()
        # Streaming spans can finish out of stack order (the connector
        # span outlives the client span that opened after it): remove by
        # identity wherever it sits.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is span:
                del stack[index]
                break
        self._append(span)

    def span(self, tier: str, operation: str, trace_id: str = "", **attrs):
        """Context manager sugar over ``start``/``finish``."""
        return _SpanContext(self, tier, operation, trace_id, attrs)

    def record_complete(
        self,
        tier: str,
        operation: str,
        duration: float,
        trace_id: str = "",
        bytes_in: int = 0,
        bytes_out: int = 0,
        status: str = "ok",
        **attributes: Any,
    ) -> None:
        """Record a span whose duration is already known (e.g. a task
        logged after the fact); never touches the parenting stacks."""
        if not self.enabled:
            return
        with self._lock:
            span_id = next(self._span_ids)
        self._append(
            Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=None,
                tier=tier,
                operation=operation,
                start=time.perf_counter() - duration,
                duration=duration,
                bytes_in=bytes_in,
                bytes_out=bytes_out,
                status=status,
                attributes=dict(attributes),
                _live=False,
            )
        )

    def record_event(
        self, tier: str, operation: str, trace_id: str = "", **attributes: Any
    ) -> None:
        """Record an instantaneous event (e.g. an injected fault)."""
        if not self.enabled:
            return
        with self._lock:
            span_id = next(self._span_ids)
        stack = self._stack()
        self._append(
            Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=stack[-1].span_id if stack else None,
                tier=tier,
                operation=operation,
                start=time.perf_counter(),
                duration=0.0,
                attributes=dict(attributes),
                _live=False,
            )
        )

    # -- queries -------------------------------------------------------------

    def snapshot(self) -> List[Span]:
        """A point-in-time copy of every recorded span."""
        with self._lock:
            return list(self.spans)

    def byte_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-tier byte totals, for reconciliation assertions."""
        totals: Dict[str, Dict[str, int]] = {}
        for span in self.snapshot():
            entry = totals.setdefault(
                span.tier, {"bytes_in": 0, "bytes_out": 0, "spans": 0}
            )
            entry["bytes_in"] += span.bytes_in
            entry["bytes_out"] += span.bytes_out
            entry["spans"] += 1
        return totals

    # -- exporters -----------------------------------------------------------

    def export_json(self) -> Dict[str, Any]:
        """Span list plus the overflow counter, as plain JSON data."""
        spans = self.snapshot()
        return {
            "span_count": len(spans),
            "dropped": self.dropped,
            "byte_totals": self.byte_totals(),
            "spans": [span.to_dict() for span in spans],
        }

    def export_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` format (load in chrome://tracing or
        Perfetto): complete events (``ph: "X"``) with one virtual thread
        per tier, named via metadata events."""
        spans = self.snapshot()
        tiers = sorted({span.tier for span in spans})
        tids = {tier: index + 1 for index, tier in enumerate(tiers)}
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[tier],
                "args": {"name": tier},
            }
            for tier in tiers
        ]
        for span in spans:
            events.append(
                {
                    "name": span.operation,
                    "cat": span.tier,
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": 1,
                    "tid": tids[span.tier],
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "bytes_in": span.bytes_in,
                        "bytes_out": span.bytes_out,
                        "status": span.status,
                        **span.attributes,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # -- internals ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _keep_locked(self, trace_id: str) -> bool:
        """The memoized head-sampling decision for ``trace_id``.

        Caller holds ``_lock``.  The first consultation decides (is
        there room for another trace?) and bumps ``dropped`` once when
        the answer is no; later spans of the same trace inherit the
        decision, so kept traces are always exported complete even if
        they overshoot ``max_spans`` (a soft cap).
        """
        keep = self._trace_keep.get(trace_id)
        if keep is None:
            keep = len(self.spans) < self.max_spans
            self._trace_keep[trace_id] = keep
            if not keep:
                self.dropped += 1
        return keep

    def _append(self, span: Span) -> None:
        with self._lock:
            if span.trace_id:
                if not self._keep_locked(span.trace_id):
                    return
                self.spans.append(span)
                return
            # Anonymous spans carry no trace id: each is its own
            # one-span pseudo-trace, decided individually.
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            self.spans.append(span)


def validate_chrome_trace(data: Any) -> None:
    """Assert that ``data`` is a loadable Chrome ``trace_event`` export.

    The round-trip contract the CI observability job and the benchmark
    harness both rely on: a top-level ``traceEvents`` list whose events
    are complete (``ph: "X"``, with numeric ``ts``/``dur >= 0``) or
    metadata (``ph: "M"``) entries carrying integer ``pid``/``tid``, and
    every virtual thread used by a complete event has a ``thread_name``
    metadata record.  Raises :class:`ValueError` on the first violation.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("chrome trace must be an object with traceEvents")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    named_tids = set()
    used_tids = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        if event.get("ph") not in ("X", "M"):
            raise ValueError(f"{where}: ph must be 'X' or 'M'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if event["ph"] == "M":
            if event.get("name") != "thread_name":
                raise ValueError(f"{where}: metadata must name a thread")
            named_tids.add(event["tid"])
            continue
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: name must be a string")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                raise ValueError(f"{where}: {key} must be numeric")
        if event["dur"] < 0:
            raise ValueError(f"{where}: dur must be >= 0")
        used_tids.add(event["tid"])
    unnamed = used_tids - named_tids
    if unnamed:
        raise ValueError(f"spans on unnamed virtual threads: {sorted(unnamed)}")


class _SpanContext:
    def __init__(self, collector, tier, operation, trace_id, attributes):
        self._collector = collector
        self._args = (tier, operation, trace_id)
        self._attributes = attributes
        self.span = _NULL_SPAN

    def __enter__(self) -> Span:
        tier, operation, trace_id = self._args
        self.span = self._collector.start(
            tier, operation, trace_id, **self._attributes
        )
        return self.span

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self._collector.finish(
            self.span, status="error" if exc_type is not None else None
        )


_collector = TraceCollector(
    enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0")
)


def get_collector() -> TraceCollector:
    """The process-wide collector every tier records into."""
    return _collector


def set_collector(collector: TraceCollector) -> TraceCollector:
    """Install ``collector`` as the process-wide sink; returns it."""
    global _collector
    _collector = collector
    return collector
