"""A process-wide registry of labelled counters, gauges and histograms.

The repo accumulated one ad-hoc counter bundle per tier --
:class:`~repro.connector.stocator.TransferMetrics`,
:class:`~repro.swift.retry.ClientStats`, the cluster's ``counters``
dict, :class:`~repro.storlets.sandbox.SandboxStats`, scheduler task
logs -- each with its own locking and snapshot idiom.  The registry
unifies them under one naming scheme (``tier.metric`` plus labels,
Prometheus-style) *without replacing them*: the legacy objects keep
their public APIs (``resilience_summary``/``concurrency_summary`` stay
byte-identical) and simply mirror their increments here, so one
``snapshot()`` shows the whole system.

Thread-safety: one leaf lock guards all three maps; it is held for
dict arithmetic only, never across I/O (docs/concurrency.md).
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default fixed buckets (upper bounds, seconds) for wall-clock latency
#: histograms: roughly exponential from 1 ms to 5 minutes, chosen so the
#: benchmark harness's per-point timings land in distinct buckets at
#: both laptop and CI speeds.  Values above the last bound fall into an
#: implicit ``+inf`` overflow bucket.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default fixed buckets (upper bounds, seconds) for *simulated* run
#: durations, which span three orders of magnitude (a pushed-down 50 GB
#: query takes a few seconds; a plain 3 TB ingest takes thousands).
SIMULATED_SECONDS_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


@dataclass
class HistogramStats:
    """Summary statistics for one labelled histogram series.

    With ``buckets`` (a sorted tuple of upper bounds) every observation
    is also counted into a fixed bucket -- plus an implicit ``+inf``
    overflow bucket -- which makes percentile *estimation* possible
    without retaining samples (the Prometheus histogram model).  Without
    buckets the series keeps summary stats only, exactly as before.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))
    #: Sorted upper bounds of the fixed buckets (empty = unbucketed).
    buckets: Tuple[float, ...] = ()
    #: Per-bucket observation counts; one extra slot for ``+inf``.
    bucket_counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        """Normalize the bucket bounds and size the count vector."""
        if self.buckets:
            self.buckets = tuple(sorted(self.buckets))
            if not self.bucket_counts:
                self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one sample (and count it into its fixed bucket)."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if self.buckets:
            self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> Optional[float]:
        """Estimate the ``quantile`` (in [0, 1]) from the fixed buckets.

        Uses the Prometheus ``histogram_quantile`` model: find the first
        bucket whose cumulative count covers the target rank and
        interpolate linearly within it, clamping to the observed
        min/max so estimates never leave the data's actual range.
        Returns ``None`` for an unbucketed or empty series.
        """
        if not self.buckets or not self.count:
            return None
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {quantile}")
        target = quantile * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                lower = self.buckets[index - 1] if index > 0 else min(
                    self.minimum, self.buckets[0]
                )
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.maximum
                )
                estimate = lower + (upper - lower) * max(0.0, fraction)
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum

    def percentiles(self) -> Optional[Dict[str, float]]:
        """The reporting trio -- ``{"p50": .., "p95": .., "p99": ..}`` --
        or ``None`` for an unbucketed/empty series."""
        if not self.buckets or not self.count:
            return None
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Summary stats as JSON-ready data (plus buckets/percentiles
        when the series is bucketed)."""
        if not self.count:
            base: Dict[str, Any] = {
                "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            }
        else:
            base = {
                "count": self.count,
                "total": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.mean(),
            }
        if self.buckets:
            base["buckets"] = list(self.buckets)
            base["bucket_counts"] = list(self.bucket_counts)
            quantiles = self.percentiles()
            if quantiles is not None:
                base.update(quantiles)
        return base


class MetricsRegistry:
    """Counters (monotonic), gauges (last value) and histograms, all
    keyed by ``(name, sorted labels)``."""

    def __init__(self):
        """Create an empty registry with no declared bucket layouts."""
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey], HistogramStats] = {}
        self._bucket_layouts: Dict[str, Tuple[float, ...]] = {}

    # -- write side ---------------------------------------------------------

    def declare_histogram(
        self, name: str, buckets: Sequence[float]
    ) -> None:
        """Fix the bucket upper bounds for every series of ``name``.

        Series created by later :meth:`observe` calls count samples into
        these buckets, enabling :meth:`HistogramStats.percentile`
        reporting.  Declaring is idempotent for identical bounds;
        changing the bounds of an already-declared name raises (bucket
        counts would silently stop being comparable).
        """
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("declare_histogram needs at least one bound")
        with self._lock:
            existing = self._bucket_layouts.get(name)
            if existing is not None and existing != bounds:
                raise ValueError(
                    f"histogram {name!r} already declared with different "
                    f"buckets: {existing} != {bounds}"
                )
            self._bucket_layouts[name] = bounds

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name{labels}``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to its latest ``value``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into the histogram ``name{labels}`` (using
        the bucket layout declared for ``name``, if any)."""
        key = (name, _label_key(labels))
        with self._lock:
            stats = self._histograms.get(key)
            if stats is None:
                stats = self._histograms[key] = HistogramStats(
                    buckets=self._bucket_layouts.get(name, ())
                )
            stats.observe(float(value))

    # -- read side -----------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one labelled counter series (0 if unseen)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(
                value
                for (counter, _labels), value in self._counters.items()
                if counter == name
            )

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        """Latest value of one labelled gauge (None if never set)."""
        with self._lock:
            return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str, **labels: Any) -> HistogramStats:
        """Stats object of one labelled histogram series (empty stats,
        with ``name``'s declared buckets, if unseen)."""
        with self._lock:
            return self._histograms.get(
                (name, _label_key(labels)),
                HistogramStats(buckets=self._bucket_layouts.get(name, ())),
            )

    def histogram_series(self, name: str) -> Dict[str, HistogramStats]:
        """Every label set observed for histogram ``name``, rendered as
        ``{"name{k=v,...}": stats}`` (sorted, deterministic)."""
        with self._lock:
            return {
                _render(series, labels): stats
                for (series, labels), stats in sorted(
                    self._histograms.items()
                )
                if series == name
            }

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as plain JSON-ready data.

        Series names render as ``name{k=v,...}`` (sorted labels), so the
        snapshot is deterministic for a deterministic workload.
        """
        with self._lock:
            return {
                "counters": {
                    _render(name, labels): value
                    for (name, labels), value in sorted(self._counters.items())
                },
                "gauges": {
                    _render(name, labels): value
                    for (name, labels), value in sorted(self._gauges.items())
                },
                "histograms": {
                    _render(name, labels): stats.to_dict()
                    for (name, labels), stats in sorted(
                        self._histograms.items()
                    )
                },
            }

    def reset(self) -> None:
        """Clear every series (declared bucket layouts survive)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _render(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (tiers built without an
    explicit registry mirror into this one)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default; returns it."""
    global _registry
    _registry = registry
    return registry
