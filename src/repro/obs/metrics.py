"""A process-wide registry of labelled counters, gauges and histograms.

The repo accumulated one ad-hoc counter bundle per tier --
:class:`~repro.connector.stocator.TransferMetrics`,
:class:`~repro.swift.retry.ClientStats`, the cluster's ``counters``
dict, :class:`~repro.storlets.sandbox.SandboxStats`, scheduler task
logs -- each with its own locking and snapshot idiom.  The registry
unifies them under one naming scheme (``tier.metric`` plus labels,
Prometheus-style) *without replacing them*: the legacy objects keep
their public APIs (``resilience_summary``/``concurrency_summary`` stay
byte-identical) and simply mirror their increments here, so one
``snapshot()`` shows the whole system.

Thread-safety: one leaf lock guards all three maps; it is held for
dict arithmetic only, never across I/O (docs/concurrency.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


@dataclass
class HistogramStats:
    """Summary statistics for one labelled histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean(),
        }


class MetricsRegistry:
    """Counters (monotonic), gauges (last value) and histograms, all
    keyed by ``(name, sorted labels)``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey], HistogramStats] = {}

    # -- write side ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name{labels}``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into the histogram ``name{labels}``."""
        key = (name, _label_key(labels))
        with self._lock:
            stats = self._histograms.get(key)
            if stats is None:
                stats = self._histograms[key] = HistogramStats()
            stats.observe(float(value))

    # -- read side -----------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one labelled counter series (0 if unseen)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(
                value
                for (counter, _labels), value in self._counters.items()
                if counter == name
            )

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str, **labels: Any) -> HistogramStats:
        with self._lock:
            return self._histograms.get(
                (name, _label_key(labels)), HistogramStats()
            )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as plain JSON-ready data.

        Series names render as ``name{k=v,...}`` (sorted labels), so the
        snapshot is deterministic for a deterministic workload.
        """
        with self._lock:
            return {
                "counters": {
                    _render(name, labels): value
                    for (name, labels), value in sorted(self._counters.items())
                },
                "gauges": {
                    _render(name, labels): value
                    for (name, labels), value in sorted(self._gauges.items())
                },
                "histograms": {
                    _render(name, labels): stats.to_dict()
                    for (name, labels), stats in sorted(
                        self._histograms.items()
                    )
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _render(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (tiers built without an
    explicit registry mirror into this one)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    global _registry
    _registry = registry
    return registry
