"""Request-scoped tracing and unified metrics (docs/observability.md).

The paper's headline claims are measurements -- bytes discarded at the
store vs. shipped over the constrained link, storlet CPU on storage
nodes, retry behaviour under faults -- so the reproduction needs to
attribute costs per tier for a single GET the way PushdownDB does for
S3-side vs. compute-side work.  This package provides the two shared
primitives every tier hooks into:

* :mod:`repro.obs.trace` -- spans propagated via the ``X-Trace-Id``
  header from the Stocator connector down to the object backend, plus
  JSON and Chrome ``trace_event`` exporters;
* :mod:`repro.obs.metrics` -- a process-wide registry of labelled
  counters/gauges/histograms that absorbs the ad-hoc counters
  (``TransferMetrics``, ``ClientStats``, cluster counters, sandbox
  stats) without changing their public APIs.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_SECONDS,
    SIMULATED_SECONDS_BUCKETS,
    HistogramStats,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    TraceCollector,
    get_collector,
    set_collector,
    validate_chrome_trace,
)

__all__ = [
    "TRACE_HEADER",
    "LATENCY_BUCKETS_SECONDS",
    "SIMULATED_SECONDS_BUCKETS",
    "HistogramStats",
    "Span",
    "TraceCollector",
    "MetricsRegistry",
    "get_collector",
    "set_collector",
    "get_registry",
    "set_registry",
    "validate_chrome_trace",
]
