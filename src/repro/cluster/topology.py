"""The 63-machine OSIC testbed topology from the paper's evaluation.

Section VI ("Platform") describes: 1 identity node, 1 HAProxy load
balancer, 6 Swift proxy/metadata servers, 29 object servers (10 data disks
each in the object ring), 25 Spark workers plus a master and a client.
The inter-cluster path goes through the load balancer's 10 Gbps link,
which Fig. 9(c) shows saturating during plain ingest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.flow import FlowNetwork, FlowResource
from repro.cluster.node import Node, NodeSpec
from repro.simulation import Environment


@dataclass(frozen=True)
class TestbedSpec:
    """Counts and link speeds for a disaggregated testbed."""

    __test__ = False  # not a pytest test class despite the name

    proxy_count: int = 6
    storage_count: int = 29
    worker_count: int = 25
    lb_bandwidth: float = 10e9 / 8  # HAProxy machine: one 10 Gbps link
    storage_disks_in_ring: int = 10
    node_spec: NodeSpec = field(default_factory=NodeSpec)

    def scaled(self, factor: float) -> "TestbedSpec":
        """A proportionally smaller testbed (minimum one node per role)."""
        return TestbedSpec(
            proxy_count=max(1, round(self.proxy_count * factor)),
            storage_count=max(1, round(self.storage_count * factor)),
            worker_count=max(1, round(self.worker_count * factor)),
            lb_bandwidth=self.lb_bandwidth * factor,
            storage_disks_in_ring=self.storage_disks_in_ring,
            node_spec=self.node_spec,
        )


OSIC_SPEC = TestbedSpec()


class Testbed:
    """Instantiated cluster: proxies, object servers, workers, LB link."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, env: Environment, spec: TestbedSpec = OSIC_SPEC):
        self.env = env
        self.spec = spec
        self.network = FlowNetwork(env)
        self.proxies: List[Node] = [
            Node(self.network, f"proxy{i}", spec.node_spec)
            for i in range(spec.proxy_count)
        ]
        self.storage_nodes: List[Node] = [
            Node(self.network, f"storage{i}", spec.node_spec)
            for i in range(spec.storage_count)
        ]
        self.workers: List[Node] = [
            Node(self.network, f"worker{i}", spec.node_spec)
            for i in range(spec.worker_count)
        ]
        # The inter-cluster bottleneck: every byte moving from the storage
        # cluster to the compute cluster crosses this link.
        self.lb_link: FlowResource = self.network.add_resource(
            "loadbalancer.link", spec.lb_bandwidth
        )

    # -- placement helpers -------------------------------------------------

    def proxy_for(self, index: int) -> Node:
        return self.proxies[index % len(self.proxies)]

    def storage_for(self, index: int) -> Node:
        return self.storage_nodes[index % len(self.storage_nodes)]

    def worker_for(self, index: int) -> Node:
        return self.workers[index % len(self.workers)]

    def all_nodes(self) -> List[Node]:
        return self.proxies + self.storage_nodes + self.workers

    def node_groups(self) -> Dict[str, List[Node]]:
        return {
            "proxy": self.proxies,
            "storage": self.storage_nodes,
            "worker": self.workers,
        }
