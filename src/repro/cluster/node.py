"""Node model: cores, memory, NICs and disks as flow resources."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.flow import FlowNetwork, FlowResource
from repro.simulation import Environment


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one machine.

    Defaults correspond to the paper's OSIC servers: HP DL380 Gen9,
    2x 12-core Intel E5-2680 v3, 256 GB RAM, 12x 600 GB 15K SAS disks,
    dual 10 GbE bonded NICs.
    """

    cores: int = 24
    memory_bytes: float = 256 * 2**30
    nic_bandwidth: float = 2 * 10e9 / 8  # 2x10 Gbps bond, in bytes/s
    disk_count: int = 12
    disk_bandwidth: float = 180e6  # 15K SAS sequential read, bytes/s
    label: str = "node"


class Node:
    """A machine whose CPU, NIC and disks are registered flow resources.

    CPU capacity is expressed in core-seconds per second (== ``cores``);
    a flow whose per-byte CPU cost is ``c`` core-seconds declares weight
    ``c`` against :attr:`cpu`.

    Memory is tracked as an explicit level (bytes) with
    :meth:`allocate_memory` / :meth:`free_memory`; the metrics collector
    samples :attr:`memory_used`.
    """

    def __init__(self, network: FlowNetwork, name: str, spec: NodeSpec):
        self.network = network
        self.name = name
        self.spec = spec
        self.cpu: FlowResource = network.add_resource(f"{name}.cpu", spec.cores)
        self.nic_in: FlowResource = network.add_resource(
            f"{name}.nic_in", spec.nic_bandwidth
        )
        self.nic_out: FlowResource = network.add_resource(
            f"{name}.nic_out", spec.nic_bandwidth
        )
        self.disks: List[FlowResource] = [
            network.add_resource(f"{name}.disk{i}", spec.disk_bandwidth)
            for i in range(spec.disk_count)
        ]
        self.memory_used = 0.0
        self._baseline_memory = 0.0

    @property
    def env(self) -> Environment:
        return self.network.env

    def disk(self, index: int) -> FlowResource:
        return self.disks[index % len(self.disks)]

    def allocate_memory(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative allocation: {amount}")
        if self.memory_used + amount > self.spec.memory_bytes:
            raise MemoryError(
                f"{self.name}: allocation of {amount:.3g} B exceeds "
                f"{self.spec.memory_bytes:.3g} B"
            )
        self.memory_used += amount

    def free_memory(self, amount: float) -> None:
        self.memory_used = max(self._baseline_memory, self.memory_used - amount)

    def set_baseline_memory(self, amount: float) -> None:
        """Resident memory that never drops (OS, JVM heap floor...)."""
        self._baseline_memory = amount
        self.memory_used = max(self.memory_used, amount)

    @property
    def memory_fraction(self) -> float:
        return self.memory_used / self.spec.memory_bytes

    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    def __repr__(self) -> str:
        return f"<Node {self.name} cores={self.spec.cores}>"
