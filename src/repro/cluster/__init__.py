"""Cluster hardware model for the Scoop performance experiments.

This package models the disaggregated compute/storage platform used in the
paper's evaluation (Section VI, "Platform"): compute nodes, storage nodes,
proxies, a load balancer, and the 10 GbE inter-cluster network.  It is a
*fluid-flow* model: transfers and CPU work are flows that share resources
under weighted max-min fairness, simulated on the DES kernel from
:mod:`repro.simulation`.

The central pieces are:

* :class:`~repro.cluster.flow.FlowNetwork` -- resources + flows with
  progressive-filling (water-filling) rate allocation.
* :class:`~repro.cluster.node.Node` -- cores, memory, NICs and disks, all
  registered as flow resources.
* :class:`~repro.cluster.topology.Testbed` -- the 63-machine OSIC layout.
* :class:`~repro.cluster.metrics.MetricsCollector` -- collectd-style
  per-node CPU/memory/network sampling.
"""

from repro.cluster.flow import Flow, FlowNetwork, FlowResource
from repro.cluster.metrics import MetricsCollector, ResourceSeries
from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import OSIC_SPEC, Testbed, TestbedSpec

__all__ = [
    "Flow",
    "FlowNetwork",
    "FlowResource",
    "MetricsCollector",
    "Node",
    "NodeSpec",
    "OSIC_SPEC",
    "ResourceSeries",
    "Testbed",
    "TestbedSpec",
]
