"""collectd-style resource sampling for the simulated cluster.

The paper's evaluation runs collectd v5.4 on every node to collect CPU,
memory and network usage (Fig. 9 and Fig. 10).  :class:`MetricsCollector`
plays the same role on the DES: a sampling process records per-node CPU
utilization, memory fraction and NIC throughput, plus arbitrary extra
flow resources (the load-balancer link), at a fixed interval.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.flow import FlowResource
from repro.cluster.node import Node
from repro.simulation import Environment, Interrupt


@dataclass
class ResourceSeries:
    """One sampled time series: (time, value) pairs plus summary stats.

    Appends are locked so samplers on different threads (a live workload
    thread and the DES clock, or sharded samplers merging into one
    series) cannot tear the parallel times/values lists.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, time: float, value: float) -> None:
        with self._lock:
            self.times.append(time)
            self.values.append(value)

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def peak(self) -> float:
        return max(self.values, default=0.0)

    def mean_over(self, start: float, end: float) -> float:
        window = [
            value
            for time, value in zip(self.times, self.values)
            if start <= time <= end
        ]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def integral(self) -> float:
        """Trapezoidal integral of the series (e.g. CPU-seconds burnt)."""
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += dt * (self.values[i] + self.values[i - 1]) / 2
        return total

    def __len__(self) -> int:
        return len(self.values)


class MetricsCollector:
    """Samples node groups and extra resources at a fixed interval."""

    def __init__(
        self,
        env: Environment,
        interval: float = 1.0,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.env = env
        self.interval = interval
        self._node_groups: Dict[str, Sequence[Node]] = {}
        self._resources: Dict[str, FlowResource] = {}
        self.series: Dict[str, ResourceSeries] = {}
        self._process = None
        # Guards registration and sampling against concurrent callers;
        # individual series additionally lock their own appends.
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------

    def watch_nodes(self, group: str, nodes: Sequence[Node]) -> None:
        """Track mean CPU/memory/NIC across ``nodes`` as group series."""
        with self._lock:
            self._node_groups[group] = nodes
            for metric in ("cpu", "memory", "net_tx", "net_rx"):
                key = f"{group}.{metric}"
                self.series.setdefault(key, ResourceSeries(key))

    def watch_resource(self, name: str, resource: FlowResource) -> None:
        """Track one flow resource's throughput and utilization."""
        with self._lock:
            self._resources[name] = resource
            self.series.setdefault(
                f"{name}.throughput", ResourceSeries(f"{name}.throughput")
            )
            self.series.setdefault(
                f"{name}.utilization", ResourceSeries(f"{name}.utilization")
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("collector already running")
        self._process = self.env.process(self._sample_loop())

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
        self._process = None

    def _sample_loop(self):
        try:
            while True:
                self.sample_once()
                yield self.env.timeout(self.interval)
        except Interrupt:
            return

    def sample_once(self) -> None:
        now = self.env.now
        with self._lock:
            node_groups = dict(self._node_groups)
            resources = dict(self._resources)
        for group, nodes in node_groups.items():
            if not nodes:
                continue
            cpu = sum(node.cpu_utilization() for node in nodes) / len(nodes)
            memory = sum(node.memory_fraction for node in nodes) / len(nodes)
            tx = sum(node.nic_out.throughput() for node in nodes) / len(nodes)
            rx = sum(node.nic_in.throughput() for node in nodes) / len(nodes)
            self.series[f"{group}.cpu"].record(now, cpu)
            self.series[f"{group}.memory"].record(now, memory)
            self.series[f"{group}.net_tx"].record(now, tx)
            self.series[f"{group}.net_rx"].record(now, rx)
        for name, resource in resources.items():
            self.series[f"{name}.throughput"].record(now, resource.throughput())
            self.series[f"{name}.utilization"].record(now, resource.utilization())

    # -- reporting -------------------------------------------------------------

    def get(self, key: str) -> ResourceSeries:
        return self.series[key]

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """``{series: (mean, peak)}`` for quick inspection."""
        return {
            key: (series.mean(), series.peak())
            for key, series in self.series.items()
        }
