"""Fluid-flow network with weighted max-min fair rate allocation.

A :class:`Flow` is a fixed amount of work (bytes) that traverses a set of
:class:`FlowResource` objects (links, disks, CPU pools).  Each flow ``f``
declares, per resource ``r``, a *weight* ``w[f, r]``: how many units of
``r``'s capacity one byte of the flow consumes per second.  A network link
has weight 1 (a byte is a byte), while a CPU pool sized in core-seconds per
second gives a flow weight ``c`` when parsing a byte costs ``c`` core-
seconds.

Rates follow *bottleneck fairness*: each resource shares its capacity
max-min fairly among the flows crossing it (demand-capped, so a flow
bottlenecked elsewhere releases its slack), and a flow's rate is the
minimum over its resources.  This matches TCP-like behaviour -- a
pushdown flow whose response stream consumes 1% of a link per scanned
byte is frozen by its real bottleneck, not by fat neighbours' rates.
The allocation is recomputed on every flow arrival and departure, which
is exact for piecewise-constant fluid models.

This is the timing engine behind every Scoop experiment: the superlinear
speedups in Fig. 5/6 of the paper fall out of the bottleneck moving from
the load-balancer link to storage-node CPUs as data selectivity grows.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.simulation import Environment, Event, Interrupt

_EPSILON = 1e-12


class FlowResource:
    """A capacity-constrained resource flows may traverse.

    ``capacity`` is in units per second (bytes/s for links and disks,
    core-seconds/s -- i.e. cores -- for CPU pools).
    """

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self.name = name
        self.capacity = float(capacity)
        self.flows: Set["Flow"] = set()

    def utilization(self) -> float:
        """Fraction of capacity currently consumed (0..1)."""
        used = sum(flow.rate * flow.weights[self] for flow in self.flows)
        return min(1.0, used / self.capacity)

    def throughput(self) -> float:
        """Units per second currently flowing through this resource."""
        return sum(flow.rate * flow.weights[self] for flow in self.flows)

    def __repr__(self) -> str:
        return f"<FlowResource {self.name} cap={self.capacity:g}>"


class Flow:
    """A unit of work in flight through the network."""

    _ids = itertools.count()

    def __init__(
        self,
        network: "FlowNetwork",
        size: float,
        weights: Dict[FlowResource, float],
        label: str = "",
    ):
        self.id = next(Flow._ids)
        self.network = network
        self.label = label
        self.remaining = float(size)
        self.weights = {res: w for res, w in weights.items() if w > 0}
        self.rate = 0.0
        self.started_at = network.env.now
        self.done: Event = network.env.event()

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.id} {self.label or ''} remaining={self.remaining:.3g}"
            f" rate={self.rate:.3g}>"
        )


class FlowNetwork:
    """Manages flows and recomputes max-min fair rates on every change."""

    def __init__(self, env: Environment):
        self.env = env
        self.resources: Dict[str, FlowResource] = {}
        self._flows: Set[Flow] = set()
        self._last_update = env.now
        self._timer: Optional[object] = None  # the sleeping watcher Process
        self._completed_count = 0

    # -- topology --------------------------------------------------------

    def add_resource(self, name: str, capacity: float) -> FlowResource:
        if name in self.resources:
            raise ValueError(f"duplicate resource name: {name!r}")
        resource = FlowResource(name, capacity)
        self.resources[name] = resource
        return resource

    def resource(self, name: str) -> FlowResource:
        return self.resources[name]

    # -- flow lifecycle ----------------------------------------------------

    def start_flow(
        self,
        size: float,
        demands: Dict[FlowResource, float],
        label: str = "",
    ) -> Flow:
        """Begin a flow of ``size`` bytes; returns it (wait on ``flow.done``).

        ``demands`` maps resources to per-byte weights.  A zero-size flow
        completes immediately.
        """
        if size < 0:
            raise ValueError(f"flow size must be >= 0: {size!r}")
        flow = Flow(self, size, demands, label)
        if flow.remaining <= _EPSILON or not flow.weights:
            flow.done.succeed(flow)
            return flow
        self._advance()
        self._flows.add(flow)
        for resource in flow.weights:
            resource.flows.add(flow)
        self._reallocate()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a flow in flight; its ``done`` event fails with Interrupt."""
        if flow not in self._flows:
            return
        self._advance()
        self._remove(flow)
        if not flow.done.triggered:
            error = Interrupt("flow cancelled")
            flow.done.fail(error)
            flow.done._defused = True
        self._reallocate()

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._flows)

    @property
    def completed_count(self) -> int:
        return self._completed_count

    # -- allocation engine -------------------------------------------------

    def _advance(self) -> None:
        """Drain work done at current rates since the last update and
        complete any flows that finished (or can no longer make
        representable progress on the float clock)."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * elapsed
        # Completion threshold: a flow whose remaining service time is
        # below the clock's representable resolution at `now` would arm
        # a timer that never advances time (now + delay == now), spinning
        # the event loop forever -- finish it here instead.
        time_floor = max(_EPSILON, 8 * math.ulp(max(1.0, now)))
        finished: List[Flow] = []
        for flow in self._flows:
            if flow.remaining <= _EPSILON * max(1.0, flow.rate):
                finished.append(flow)
            elif flow.rate > 0 and flow.remaining / flow.rate <= time_floor:
                finished.append(flow)
        for flow in finished:
            flow.remaining = 0.0
            self._remove(flow)
            self._completed_count += 1
            flow.done.succeed(flow)

    def _remove(self, flow: Flow) -> None:
        self._flows.discard(flow)
        for resource in flow.weights:
            resource.flows.discard(flow)
        flow.rate = 0.0

    #: Fixed-point iteration controls for rate allocation.
    _MAX_ALLOCATION_ITERATIONS = 60
    _ALLOCATION_TOLERANCE = 1e-7

    def _reallocate(self) -> None:
        """Bottleneck-fair rate allocation, then arm the completion timer.

        Each resource shares its *capacity* max-min fairly among the
        flows crossing it, capped by each flow's demand (the rate its
        other resources allow times its weight here); a flow's rate is
        the minimum of its per-resource allocations divided by weights.
        This is TCP-like fairness: a flow that consumes little of a link
        per unit of work (e.g. a pushdown flow whose response stream is a
        trickle) is *not* throttled to the same rate as fat flows -- it
        is frozen by its true bottleneck and the link redistributes the
        slack.  Computed by Jacobi iteration to the max-min fixed point.
        """
        flows = list(self._flows)
        if not flows:
            self._arm_timer()
            return

        # Fast path: when every flow shares one weights mapping (the
        # common case for a single simulated job, whose tasks are
        # identical), the fair allocation is uniform and closed-form.
        first_weights = flows[0].weights
        if all(
            flow.weights is first_weights or flow.weights == first_weights
            for flow in flows
        ):
            count = len(flows)
            rate_bound = math.inf
            for res, weight in first_weights.items():
                rate_bound = min(rate_bound, res.capacity / (count * weight))
            for flow in flows:
                flow.rate = 0.0 if rate_bound is math.inf else rate_bound
            self._arm_timer()
            return

        active_resources = [
            res for res in self.resources.values() if res.flows
        ]
        rate: Dict[Flow, float] = {flow: math.inf for flow in flows}
        # Per resource: each flow's per-resource rate bound from the
        # previous round (consumption / weight), used as the demand cap.
        previous_bounds: Dict[FlowResource, Dict[Flow, float]] = {}

        for _iteration in range(self._MAX_ALLOCATION_ITERATIONS):
            bounds: Dict[FlowResource, Dict[Flow, float]] = {}
            for res in active_resources:
                users = []
                for flow in res.flows:
                    # Demand on this resource = weight x the rate the
                    # flow's OTHER resources allowed last round.
                    bound_elsewhere = math.inf
                    for other in flow.weights:
                        if other is res:
                            continue
                        prior = previous_bounds.get(other, {}).get(
                            flow, math.inf
                        )
                        bound_elsewhere = min(bound_elsewhere, prior)
                    demand = (
                        math.inf
                        if bound_elsewhere is math.inf
                        else bound_elsewhere * flow.weights[res]
                    )
                    users.append((flow, flow.weights[res], demand))
                consumption = _max_min_single_resource(res.capacity, users)
                bounds[res] = {
                    flow: consumption[flow] / flow.weights[res]
                    for flow in res.flows
                }

            new_rate: Dict[Flow, float] = {}
            converged = True
            for flow in flows:
                bound = math.inf
                for res in flow.weights:
                    bound = min(bound, bounds[res][flow])
                new_rate[flow] = bound
                old = rate[flow]
                if old is math.inf or abs(bound - old) > (
                    self._ALLOCATION_TOLERANCE * max(1.0, old)
                ):
                    converged = False
            rate = new_rate
            previous_bounds = bounds
            if converged:
                break

        for flow in flows:
            flow.rate = 0.0 if rate[flow] is math.inf else rate[flow]
        self._arm_timer()

    @staticmethod
    def _single_resource(capacity: float, users):  # pragma: no cover
        return _max_min_single_resource(capacity, users)

    def _next_completion_delay(self) -> float:
        delay = math.inf
        for flow in self._flows:
            if flow.rate > 0:
                delay = min(delay, flow.remaining / flow.rate)
        return delay

    def _arm_timer(self) -> None:
        if self._timer is not None and self._timer.is_alive:
            try:
                self._timer.interrupt("reallocate")
            except Exception:
                pass
        delay = self._next_completion_delay()
        if delay is math.inf:
            self._timer = None
            return
        self._timer = self.env.process(self._watch(delay))

    def _watch(self, delay: float):
        try:
            yield self.env.timeout(delay)
        except Interrupt:
            return
        self._advance()
        self._reallocate()

    # -- introspection -----------------------------------------------------

    def utilization_snapshot(self) -> Dict[str, float]:
        return {name: res.utilization() for name, res in self.resources.items()}


def _max_min_single_resource(capacity: float, users) -> Dict[Flow, float]:
    """Classic single-resource max-min with demand caps.

    ``users`` is a list of ``(flow, weight, demand)`` where ``demand`` is
    the consumption (capacity units) the flow can actually use; flows
    with infinite demand are backlogged and absorb the leftover equally.
    Returns each flow's allocated consumption.
    """
    allocation: Dict[Flow, float] = {}
    remaining = capacity
    # Ascending by demand; inf (backlogged) flows come last.
    ordered = sorted(users, key=lambda item: item[2])
    for position, (flow, _weight, demand) in enumerate(ordered):
        fair = remaining / (len(ordered) - position)
        granted = fair if demand is math.inf else min(demand, fair)
        allocation[flow] = granted
        remaining -= granted
    return allocation
