"""The ingest simulation: plain, pushdown and parquet replays.

One simulated query = job overhead + waves of ingest tasks.  A task is a
weighted flow through the aggregated cluster resources; its per-resource
weights encode the process shape:

=============  ==========================  =========================
resource       plain ingest                Scoop pushdown
=============  ==========================  =========================
storage disk   1 byte/byte                 1 byte/byte (full scan)
storage CPU    relay cost                  storlet scan+filter cost
storage NIC    1                           (1 - selectivity)
proxy NIC      1                           (1 - selectivity)
LB link        1                           (1 - selectivity)
worker NIC     1                           (1 - selectivity)
worker CPU     CSV parse cost              post-cost on kept bytes
=============  ==========================  =========================

Parquet transfers the whole compressed object (ratio x dataset) and pays
decode cost at the workers.  The proxy-staged pushdown ablation moves
the full object across the storage NIC to the proxies and runs the
storlet on the much smaller proxy CPU pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.flow import FlowNetwork, FlowResource
from repro.cluster.metrics import ResourceSeries
from repro.perfmodel.parameters import PerfParameters
from repro.simulation import Environment


@dataclass(frozen=True)
class SelectivityProfile:
    """What fraction a query discards, and by which mechanism."""

    data_selectivity: float
    row_filtering: bool = False
    column_projection: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.data_selectivity <= 1.0:
            raise ValueError(
                f"data_selectivity must be in [0, 1]: {self.data_selectivity}"
            )

    @property
    def kept_fraction(self) -> float:
        return 1.0 - self.data_selectivity

    @classmethod
    def rows(cls, selectivity: float) -> "SelectivityProfile":
        return cls(selectivity, row_filtering=True)

    @classmethod
    def columns(cls, selectivity: float) -> "SelectivityProfile":
        return cls(selectivity, column_projection=True)

    @classmethod
    def mixed(cls, selectivity: float) -> "SelectivityProfile":
        return cls(selectivity, row_filtering=True, column_projection=True)


@dataclass
class RunResult:
    """Outcome of one simulated query execution."""

    mode: str
    dataset_bytes: float
    duration: float
    bytes_over_lb: float
    series: Dict[str, ResourceSeries]
    task_count: int
    wave_count: int

    def mean_series(self, key: str) -> float:
        return self.series[key].mean()

    def peak_series(self, key: str) -> float:
        return self.series[key].peak()


class IngestSimulation:
    """Builds the aggregated OSIC resource model and replays queries."""

    MODES = ("plain", "pushdown", "pushdown_proxy", "pushdown_compressed", "parquet")

    def __init__(self, params: Optional[PerfParameters] = None):
        self.params = params or PerfParameters()

    # -- public API --------------------------------------------------------

    def run(
        self,
        mode: str,
        dataset_bytes: float,
        profile: Optional[SelectivityProfile] = None,
    ) -> RunResult:
        """Simulate one query execution and return its timing/metrics."""
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}: {mode!r}")
        profile = profile or SelectivityProfile(0.0)
        params = self.params
        spec = params.testbed
        node = spec.node_spec

        env = Environment()
        network = FlowNetwork(env)
        storage_disk = network.add_resource(
            "storage.disk",
            spec.storage_count * spec.storage_disks_in_ring * node.disk_bandwidth,
        )
        storage_cpu = network.add_resource(
            "storage.cpu", params.total_storage_cores()
        )
        storage_nic = network.add_resource(
            "storage.nic", spec.storage_count * node.nic_bandwidth
        )
        proxy_cpu = network.add_resource(
            "proxy.cpu", spec.proxy_count * node.cores
        )
        proxy_nic = network.add_resource(
            "proxy.nic", spec.proxy_count * node.nic_bandwidth
        )
        lb = network.add_resource("lb.link", spec.lb_bandwidth)
        worker_nic = network.add_resource(
            "worker.nic", spec.worker_count * node.nic_bandwidth
        )
        worker_cpu = network.add_resource(
            "worker.cpu", params.total_worker_cores()
        )

        weights, scan_bytes_factor = self._task_weights(
            mode,
            profile,
            {
                "storage_disk": storage_disk,
                "storage_cpu": storage_cpu,
                "storage_nic": storage_nic,
                "proxy_cpu": proxy_cpu,
                "proxy_nic": proxy_nic,
                "lb": lb,
                "worker_nic": worker_nic,
                "worker_cpu": worker_cpu,
            },
        )

        scanned_total = dataset_bytes * scan_bytes_factor
        task_count = max(1, math.ceil(scanned_total / params.chunk_size))
        slots = params.total_slots()
        # Per-stream ceiling: N concurrent single-threaded tasks cannot
        # scan/transfer faster than N x the per-stream rate, however much
        # aggregate capacity the pools have.  This is what penalizes
        # oversized chunks in the partition-size ablation.
        stream_rate = (
            params.storlet_stream_rate
            if mode.startswith("pushdown")
            else params.plain_stream_rate
        )
        streams = network.add_resource(
            "streams.cap", min(slots, task_count) * stream_rate
        )
        weights[streams] = 1.0
        wave_count = math.ceil(task_count / slots)
        macro_count = min(params.max_macro_flows, task_count)
        kept = self._kept_fraction(mode, profile)

        # -- memory accounting (sampled, not flow-modelled) -----------------
        memory_state = {
            "worker": params.worker_baseline_memory,
            "storage": params.storage_baseline_memory
            + (
                params.storage_sandbox_memory
                if mode.startswith("pushdown")
                else 0.0
            ),
        }
        worker_memory_total = (
            spec.worker_count * node.memory_bytes
        )
        buffered_bytes_per_task = (
            (scanned_total / task_count) * kept * params.worker_buffer_fraction
        )

        series: Dict[str, ResourceSeries] = {
            key: ResourceSeries(key)
            for key in (
                "lb.throughput",
                "lb.utilization",
                "storage.cpu",
                "worker.cpu",
                "worker.memory",
                "storage.memory",
                "proxy.nic.throughput",
            )
        }

        def sampler():
            while True:
                now = env.now
                series["lb.throughput"].record(now, lb.throughput())
                series["lb.utilization"].record(now, lb.utilization())
                series["storage.cpu"].record(now, storage_cpu.utilization())
                series["worker.cpu"].record(now, worker_cpu.utilization())
                series["worker.memory"].record(now, memory_state["worker"])
                series["storage.memory"].record(now, memory_state["storage"])
                series["proxy.nic.throughput"].record(
                    now, proxy_nic.throughput()
                )
                yield env.timeout(params.metrics_interval)

        sampler_process = env.process(sampler())

        done_event = env.event()

        def macro_flow(flow_index: int):
            """One macro-flow: its share of every wave's tasks."""
            tasks_for_me = [
                wave_tasks
                for wave_tasks in self._wave_split(
                    task_count, slots, macro_count, flow_index
                )
            ]
            chunk = scanned_total / task_count
            latency = params.task_fixed_latency
            if mode.startswith("pushdown"):
                latency += params.storlet_task_extra_latency
            for wave_task_count in tasks_for_me:
                if wave_task_count == 0:
                    continue
                yield env.timeout(latency)
                flow = network.start_flow(
                    wave_task_count * chunk, weights, label=f"f{flow_index}"
                )
                yield flow.done
                memory_state["worker"] = min(
                    0.95,
                    memory_state["worker"]
                    + wave_task_count
                    * buffered_bytes_per_task
                    / worker_memory_total,
                )

        def job():
            yield env.timeout(params.job_fixed_overhead)
            flows = [
                env.process(macro_flow(index)) for index in range(macro_count)
            ]
            for process in flows:
                yield process
            # Release buffered memory shortly after the job completes.
            yield env.timeout(1.0)
            memory_state["worker"] = params.worker_baseline_memory
            done_event.succeed(env.now)

        env.process(job())
        duration = env.run(until=done_event)
        sampler_process.interrupt("done")
        env.run()

        return RunResult(
            mode=mode,
            dataset_bytes=dataset_bytes,
            duration=duration,
            bytes_over_lb=scanned_total * self._lb_fraction(mode, profile),
            series=series,
            task_count=task_count,
            wave_count=wave_count,
        )

    def speedup(
        self,
        dataset_bytes: float,
        profile: SelectivityProfile,
        baseline_mode: str = "plain",
        mode: str = "pushdown",
    ) -> float:
        """S_Q = T_baseline / T_mode for one dataset and selectivity."""
        baseline = self.run(baseline_mode, dataset_bytes, profile)
        accelerated = self.run(mode, dataset_bytes, profile)
        return baseline.duration / accelerated.duration

    # -- internals ------------------------------------------------------------

    def _task_weights(
        self,
        mode: str,
        profile: SelectivityProfile,
        resources: Dict[str, FlowResource],
    ):
        """Per-scanned-byte weights and the scan-bytes/dataset-bytes ratio."""
        params = self.params
        kept = profile.kept_fraction
        if mode == "plain":
            return (
                {
                    resources["storage_disk"]: 1.0,
                    resources["storage_cpu"]: params.storage_relay_cost,
                    resources["storage_nic"]: 1.0,
                    resources["proxy_nic"]: 2.0,  # in + out of the proxy
                    resources["lb"]: 1.0,
                    resources["worker_nic"]: 1.0,
                    resources["worker_cpu"]: params.spark_parse_cost,
                },
                1.0,
            )
        if mode == "pushdown":
            storlet = params.storlet_cost(
                profile.row_filtering, profile.column_projection
            ) + kept * params.storlet_output_cost
            return (
                {
                    resources["storage_disk"]: 1.0,
                    resources["storage_cpu"]: storlet,
                    resources["storage_nic"]: kept,
                    resources["proxy_nic"]: 2.0 * kept,
                    resources["lb"]: kept,
                    resources["worker_nic"]: kept,
                    resources["worker_cpu"]: kept * params.spark_post_cost,
                },
                1.0,
            )
        if mode == "pushdown_compressed":
            # Filter at the store, then compress the filtered output
            # before it crosses the network (Section VI-C).
            ratio = params.transfer_compression_ratio
            storlet = (
                params.storlet_cost(
                    profile.row_filtering, profile.column_projection
                )
                + kept * params.storlet_output_cost
                + kept * params.compress_cost
            )
            wire = kept * ratio
            return (
                {
                    resources["storage_disk"]: 1.0,
                    resources["storage_cpu"]: storlet,
                    resources["storage_nic"]: wire,
                    resources["proxy_nic"]: 2.0 * wire,
                    resources["lb"]: wire,
                    resources["worker_nic"]: wire,
                    resources["worker_cpu"]: wire * params.decompress_cost
                    + kept * params.spark_post_cost,
                },
                1.0,
            )
        if mode == "pushdown_proxy":
            # Staging ablation: the full object crosses the storage NIC to
            # the proxy, whose small CPU pool runs the storlet.
            storlet = params.storlet_cost(
                profile.row_filtering, profile.column_projection
            ) + kept * params.storlet_output_cost
            return (
                {
                    resources["storage_disk"]: 1.0,
                    resources["storage_cpu"]: params.storage_relay_cost,
                    resources["storage_nic"]: 1.0,
                    resources["proxy_nic"]: 1.0 + kept,
                    resources["proxy_cpu"]: storlet,
                    resources["lb"]: kept,
                    resources["worker_nic"]: kept,
                    resources["worker_cpu"]: kept * params.spark_post_cost,
                },
                1.0,
            )
        if mode == "parquet":
            # Scanned bytes = compressed bytes; whole object travels.
            return (
                {
                    resources["storage_disk"]: 1.0,
                    resources["storage_cpu"]: params.storage_relay_cost,
                    resources["storage_nic"]: 1.0,
                    resources["proxy_nic"]: 2.0,
                    resources["lb"]: 1.0,
                    resources["worker_nic"]: 1.0,
                    resources["worker_cpu"]: params.parquet_decode_cost,
                },
                params.parquet_compression_ratio,
            )
        raise ValueError(f"unknown mode {mode!r}")

    def _kept_fraction(self, mode: str, profile: SelectivityProfile) -> float:
        if mode.startswith("pushdown"):
            return profile.kept_fraction
        if mode == "parquet":
            # Whole compressed object is buffered; pruning happens after.
            return self.params.parquet_compression_ratio
        return 1.0

    def _lb_fraction(self, mode: str, profile: SelectivityProfile) -> float:
        if mode == "pushdown_compressed":
            return profile.kept_fraction * self.params.transfer_compression_ratio
        if mode.startswith("pushdown"):
            return profile.kept_fraction
        return 1.0

    @staticmethod
    def _wave_split(
        task_count: int, slots: int, macro_count: int, flow_index: int
    ) -> List[int]:
        """How many tasks macro-flow ``flow_index`` carries in each wave."""
        waves = []
        remaining = task_count
        while remaining > 0:
            wave_tasks = min(slots, remaining)
            base, extra = divmod(wave_tasks, macro_count)
            waves.append(base + (1 if flow_index < extra else 0))
            remaining -= wave_tasks
        return waves
