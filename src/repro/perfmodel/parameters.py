"""Calibration constants for the performance model.

Hardware numbers come from the paper's platform description (Section
VI): 63 HP DL380 Gen9 servers (2x12 cores @2.5 GHz, 256 GB RAM, 12x 600
GB 15K SAS, 2x10 GbE bonded), 1 HAProxy load balancer on a 10 Gbps
link, 6 proxies, 29 object servers (10 ring disks each), 25 Spark
workers.

Software cost constants are calibrated against the paper's measured
anchors rather than guessed:

* plain ingest of the 3 TB dataset saturates the 10 Gbps LB link
  (Fig. 9c) while Spark-node CPU averages ~3.1% (Fig. 9a)
  -> ``spark_parse_cost`` ~ 1.5e-8 core-s/B;
* pushdown of a ~99%-selectivity query moves ~189 MB/s through the LB
  for ~120 s and keeps storage CPU near 23.5% (Fig. 9c / Fig. 10)
  -> storlet scan throughput ~ 100 MB/s/core;
* speedups top out around 31x on 3 TB (Fig. 6) -> job fixed overheads
  of a few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.topology import OSIC_SPEC, TestbedSpec


@dataclass(frozen=True)
class DatasetScale:
    """One of the paper's dataset sizes."""

    name: str
    size_bytes: float
    rows: float

    @property
    def label(self) -> str:
        gigabytes = self.size_bytes / 1e9
        if gigabytes >= 1000:
            return f"{gigabytes / 1000:.0f}TB"
        return f"{gigabytes:.0f}GB"


#: Section VI: Small 438M rows (50 GB), Medium 3,900M rows (500 GB),
#: Large 21,099M rows (3 TB).
DATASETS: Dict[str, DatasetScale] = {
    "small": DatasetScale("small", 50e9, 438e6),
    "medium": DatasetScale("medium", 500e9, 3.9e9),
    "large": DatasetScale("large", 3e12, 21.099e9),
}


@dataclass
class PerfParameters:
    """Everything the ingest simulation needs."""

    testbed: TestbedSpec = field(default_factory=lambda: OSIC_SPEC)

    # -- partitioning / scheduling ------------------------------------------
    #: HDFS-style chunk size driving partition discovery (128 MB).
    chunk_size: float = 128e6
    #: Concurrent ingest tasks per worker (one per core).
    slots_per_worker: int = 24
    #: Per-task fixed latency: HTTP round trip + task scheduling.
    task_fixed_latency: float = 0.20
    #: Per-job fixed overhead: driver planning, stage submission.
    job_fixed_overhead: float = 3.0

    # -- storage-side costs (core-seconds per scanned byte) --------------------
    #: Plain GET relay cost (checksum, send) on storage nodes.
    storage_relay_cost: float = 1.0 / 2e9
    #: CSV storlet streaming scan.
    storlet_scan_cost: float = 1.0 / 110e6
    #: Extra per-byte cost when evaluating row predicates.
    storlet_row_filter_cost: float = 0.2 / 110e6
    #: Extra per-byte cost when selecting/re-concatenating columns
    #: (the row-vs-column asymmetry of Section VI-A).
    storlet_column_project_cost: float = 0.55 / 110e6
    #: Per output byte (serialization).
    storlet_output_cost: float = 0.4 / 110e6
    #: Extra per-task latency of a storlet invocation (sandbox dispatch);
    #: the source of the paper's worst-case -3.4% at zero selectivity.
    storlet_task_extra_latency: float = 0.08

    # -- compute-side costs (core-seconds per transferred byte) ------------------
    #: Spark CSV parse + predicate evaluation during plain ingest.
    spark_parse_cost: float = 1.0 / 67e6
    #: Spark processing of rows that survive filtering (aggregation...).
    spark_post_cost: float = 1.0 / 120e6
    #: Parquet decompression + column decode, per *compressed* byte
    #: (Spark 1.6's Parquet reader was slow; this includes row assembly).
    parquet_decode_cost: float = 1.0 / 12e6

    # -- transfer compression (Section VI-C combination) ---------------------------
    #: zlib ratio on filtered CSV output.
    transfer_compression_ratio: float = 0.3
    #: Storage-side compression cost per filtered-output byte.
    compress_cost: float = 0.6 / 110e6
    #: Worker-side decompression cost per compressed byte.
    decompress_cost: float = 1.0 / 250e6

    # -- parquet format ------------------------------------------------------------
    #: Compressed/raw size ratio for GridPocket-like CSV (zlib ~ 4x).
    parquet_compression_ratio: float = 0.32

    # -- memory model -----------------------------------------------------------------
    #: Resident fraction of worker memory before the job (OS + executor).
    worker_baseline_memory: float = 0.12
    #: Fraction of ingested-and-kept bytes resident in worker memory
    #: (Spark buffers/deserialized rows; the rest spills).
    worker_buffer_fraction: float = 0.35
    #: Storage-node resident memory fraction: baseline and with the
    #: storlet Docker sandbox warm (paper: 4-6%).
    storage_baseline_memory: float = 0.02
    storage_sandbox_memory: float = 0.05

    # -- per-stream limits -----------------------------------------------------------
    #: A single plain HTTP GET stream cannot exceed this (TCP/window).
    plain_stream_rate: float = 150e6
    #: A storlet invocation is single-threaded: per-task scan ceiling.
    storlet_stream_rate: float = 110e6

    # -- simulation control ------------------------------------------------------------
    #: Cap on simultaneously simulated macro-flows (tasks are exact in
    #: byte volume; only their grouping into flows is coarsened).
    max_macro_flows: int = 64
    metrics_interval: float = 1.0

    def worker_count(self) -> int:
        return self.testbed.worker_count

    def storage_count(self) -> int:
        return self.testbed.storage_count

    def total_worker_cores(self) -> float:
        return self.testbed.worker_count * self.testbed.node_spec.cores

    def total_storage_cores(self) -> float:
        return self.testbed.storage_count * self.testbed.node_spec.cores

    def total_slots(self) -> int:
        return self.testbed.worker_count * self.slots_per_worker

    def storlet_cost(self, row_filtering: bool, column_projection: bool) -> float:
        """Per-scanned-byte storlet CPU cost for a task shape."""
        cost = self.storlet_scan_cost
        if row_filtering:
            cost += self.storlet_row_filter_cost
        if column_projection:
            cost += self.storlet_column_project_cost
        return cost
