"""Concurrent multi-tenant replay: Scoop frees capacity for neighbours.

Section VI-D's closing argument: "with Scoop both the datacenter network
and Swift proxies have more resources to serve other jobs or services
running in the system."  This module simulates several tenants' queries
*sharing* one cluster: all jobs' flows contend under max-min fairness on
the same LB link, storage CPUs and worker pools, so the benefit one
tenant's pushdown brings to its *neighbours* is measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.flow import FlowNetwork, FlowResource
from repro.cluster.metrics import ResourceSeries
from repro.perfmodel.model import IngestSimulation, SelectivityProfile
from repro.perfmodel.parameters import PerfParameters
from repro.simulation import Environment


@dataclass(frozen=True)
class JobSpec:
    """One tenant's query in a concurrent scenario."""

    name: str
    mode: str
    dataset_bytes: float
    profile: SelectivityProfile = field(
        default_factory=lambda: SelectivityProfile(0.0)
    )
    start_time: float = 0.0


@dataclass
class JobResult:
    name: str
    mode: str
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class ConcurrentRunResult:
    jobs: List[JobResult]
    lb_utilization: ResourceSeries

    def job(self, name: str) -> JobResult:
        for result in self.jobs:
            if result.name == name:
                return result
        raise KeyError(f"no job named {name!r}")

    def makespan(self) -> float:
        return max(result.finish_time for result in self.jobs)


class ConcurrentIngestSimulation(IngestSimulation):
    """Runs several jobs against one shared resource model."""

    def run_concurrent(
        self, specs: Sequence[JobSpec]
    ) -> ConcurrentRunResult:
        if not specs:
            raise ValueError("need at least one job")
        for spec in specs:
            if spec.mode not in self.MODES:
                raise ValueError(f"unknown mode {spec.mode!r} in {spec.name}")
        params = self.params
        testbed = params.testbed
        node = testbed.node_spec

        env = Environment()
        network = FlowNetwork(env)
        resources = {
            "storage_disk": network.add_resource(
                "storage.disk",
                testbed.storage_count
                * testbed.storage_disks_in_ring
                * node.disk_bandwidth,
            ),
            "storage_cpu": network.add_resource(
                "storage.cpu", params.total_storage_cores()
            ),
            "storage_nic": network.add_resource(
                "storage.nic", testbed.storage_count * node.nic_bandwidth
            ),
            "proxy_cpu": network.add_resource(
                "proxy.cpu", testbed.proxy_count * node.cores
            ),
            "proxy_nic": network.add_resource(
                "proxy.nic", testbed.proxy_count * node.nic_bandwidth
            ),
            "lb": network.add_resource("lb.link", testbed.lb_bandwidth),
            "worker_nic": network.add_resource(
                "worker.nic", testbed.worker_count * node.nic_bandwidth
            ),
            "worker_cpu": network.add_resource(
                "worker.cpu", params.total_worker_cores()
            ),
        }
        lb = resources["lb"]
        lb_series = ResourceSeries("lb.utilization")

        def sampler():
            while True:
                lb_series.record(env.now, lb.utilization())
                yield env.timeout(params.metrics_interval)

        sampler_process = env.process(sampler())

        results: List[JobResult] = []
        done_events = []

        for spec in specs:
            done = env.event()
            done_events.append(done)
            env.process(self._job(env, network, resources, spec, done, results))

        def all_done():
            for event in done_events:
                yield event

        finished = env.process(all_done())
        env.run(until=finished)
        sampler_process.interrupt("done")
        env.run()
        results.sort(key=lambda r: r.name)
        return ConcurrentRunResult(jobs=results, lb_utilization=lb_series)

    # -- one job as a process ----------------------------------------------

    def _job(self, env, network, resources, spec: JobSpec, done, results):
        params = self.params
        weights, scan_factor = self._task_weights(
            spec.mode, spec.profile, resources
        )
        scanned_total = spec.dataset_bytes * scan_factor
        task_count = max(1, math.ceil(scanned_total / params.chunk_size))
        # Tenants share the slot pool; give each job an equal static share
        # (the scheduler-level fairness the paper's multi-tenant compute
        # cluster would provide).
        slots = max(1, params.total_slots())
        stream_rate = (
            params.storlet_stream_rate
            if spec.mode.startswith("pushdown")
            else params.plain_stream_rate
        )
        streams = network.add_resource(
            f"streams.{spec.name}", min(slots, task_count) * stream_rate
        )
        weights = dict(weights)
        weights[streams] = 1.0

        macro_count = min(params.max_macro_flows, task_count)
        chunk = scanned_total / task_count
        latency = params.task_fixed_latency
        if spec.mode.startswith("pushdown"):
            latency += params.storlet_task_extra_latency

        if spec.start_time > 0:
            yield env.timeout(spec.start_time)
        yield env.timeout(params.job_fixed_overhead)

        def macro_flow(index: int):
            for wave_tasks in self._wave_split(
                task_count, slots, macro_count, index
            ):
                if wave_tasks == 0:
                    continue
                yield env.timeout(latency)
                flow = network.start_flow(
                    wave_tasks * chunk, weights, label=f"{spec.name}#{index}"
                )
                yield flow.done

        flows = [env.process(macro_flow(i)) for i in range(macro_count)]
        for process in flows:
            yield process
        results.append(
            JobResult(
                name=spec.name,
                mode=spec.mode,
                start_time=spec.start_time,
                finish_time=env.now,
            )
        )
        done.succeed()


@dataclass
class NeighbourImpactResult:
    """How a foreground tenant's strategy affects a background tenant."""

    foreground_mode: str
    foreground_duration: float
    background_duration: float


def neighbour_impact(
    foreground_bytes: float,
    background_bytes: float,
    data_selectivity: float = 0.99,
    params: Optional[PerfParameters] = None,
) -> List[NeighbourImpactResult]:
    """Run a plain background ingest next to a foreground query executed
    plainly vs with pushdown; report both tenants' durations each way."""
    simulation = ConcurrentIngestSimulation(params)
    results = []
    for mode in ("plain", "pushdown"):
        outcome = simulation.run_concurrent(
            [
                JobSpec(
                    name="foreground",
                    mode=mode,
                    dataset_bytes=foreground_bytes,
                    profile=SelectivityProfile.mixed(data_selectivity),
                ),
                JobSpec(
                    name="background",
                    mode="plain",
                    dataset_bytes=background_bytes,
                ),
            ]
        )
        results.append(
            NeighbourImpactResult(
                foreground_mode=mode,
                foreground_duration=outcome.job("foreground").duration,
                background_duration=outcome.job("background").duration,
            )
        )
    return results
