"""Performance model: the paper's experiments at the paper's scale.

The functional layer (real Swift + storlets + Spark at laptop scale)
establishes *what* each query keeps and discards; this package replays
those measured selectivities through the DES cluster model at the
evaluation's declared scale (50 GB / 500 GB / 3 TB over the 63-machine
OSIC testbed) to reproduce the *timing* results: query speedups
(Fig. 5/6/7), the Parquet comparison (Fig. 8) and the resource-usage
profiles (Fig. 9/10).

The key modelling idea: one ingest task is a single weighted flow whose
per-resource weights encode how many bytes each resource handles per
scanned byte -- the storage disk and storlet CPU see the whole chunk,
while the NICs, load-balancer link and worker CPU see only the
``(1 - selectivity)`` fraction that survives the filter.  Max-min fair
sharing over those flows makes the bottleneck shift (LB link at low
selectivity, storage CPU at high selectivity) emerge rather than being
hard-coded.
"""

from repro.perfmodel.parameters import (
    DATASETS,
    DatasetScale,
    PerfParameters,
)
from repro.perfmodel.concurrent import (
    ConcurrentIngestSimulation,
    JobSpec,
    neighbour_impact,
)
from repro.perfmodel.model import IngestSimulation, RunResult, SelectivityProfile

__all__ = [
    "ConcurrentIngestSimulation",
    "DATASETS",
    "JobSpec",
    "DatasetScale",
    "IngestSimulation",
    "PerfParameters",
    "RunResult",
    "SelectivityProfile",
    "neighbour_impact",
]
