"""Concurrency gates for the event-loop serving core.

``asyncio.Semaphore`` offers no non-blocking acquire, which the
threaded tiers rely on to count contention (``pool_waits``,
``proxy_queue_waits``): a slot is first tried without waiting, and only
a failed try counts as a wait.  :class:`AsyncGate` reproduces exactly
that protocol for coroutines.  :class:`LoopLocal` scopes a value (a
gate, a pool) to the running event loop, so every loop gets its own
bounded pool and no loop ever touches another loop's futures.
"""

from __future__ import annotations

import asyncio
import weakref
from collections import deque
from typing import Callable, Deque, Generic, TypeVar

T = TypeVar("T")


class AsyncGate:
    """A counting gate bounding coroutine concurrency on one loop.

    Single-loop by construction (create it per loop via
    :class:`LoopLocal`); methods must only be called from that loop's
    thread, so no locking is needed.  ``release`` hands the freed slot
    directly to the oldest live waiter, giving the same FIFO fairness as
    ``threading.Semaphore`` under contention.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"gate limit must be >= 1: {limit!r}")
        self._limit = limit
        self._value = limit
        self._waiters: Deque[asyncio.Future] = deque()

    @property
    def limit(self) -> int:
        """The configured slot count."""
        return self._limit

    @property
    def available(self) -> int:
        """Slots currently free (waiters pending means 0)."""
        return self._value

    def try_acquire(self) -> bool:
        """Take a slot without waiting; ``False`` when saturated."""
        if self._value > 0:
            self._value -= 1
            return True
        return False

    async def acquire(self) -> bool:
        """Take a slot, suspending until one frees up.

        Returns ``True`` when the caller had to wait (the contention
        signal the wait counters record) and ``False`` for an immediate
        grant.  Cancellation-safe: a waiter cancelled after being handed
        a slot passes it on instead of leaking it.
        """
        if self.try_acquire():
            return False
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._waiters.append(future)
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was granted concurrently with cancellation:
                # pass it to the next waiter rather than losing it.
                self.release()
            else:
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
            raise
        return True

    def release(self) -> None:
        """Free a slot, waking the oldest live waiter if any."""
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)
                return
        if self._value >= self._limit:
            raise RuntimeError("AsyncGate released more times than acquired")
        self._value += 1


class LoopLocal(Generic[T]):
    """A value built lazily once per event loop.

    The map is keyed by the *running* loop through a weak reference, so
    short-lived loops (one per worker thread under the sync shims) never
    accumulate: when a loop is garbage collected its pool goes with it.
    """

    def __init__(self, factory: Callable[[], T]):
        self._factory = factory
        self._values: "weakref.WeakKeyDictionary[asyncio.AbstractEventLoop, T]"
        self._values = weakref.WeakKeyDictionary()

    def get(self) -> T:
        """Return this loop's value, building it on first use.

        Must be called from coroutine context (there must be a running
        loop -- that loop is the scope key).
        """
        loop = asyncio.get_running_loop()
        try:
            return self._values[loop]
        except KeyError:
            value = self._factory()
            self._values[loop] = value
            return value
