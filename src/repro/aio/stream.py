"""Async twins of the streaming record/chunk helpers.

The quote-aware record framing (`RFC 4180` quoting with state carried
across chunk refills) is single-sourced in
``repro.storlets.csv_storlet._find_record_end``; :func:`aowned_lines`
reuses it verbatim over an *async* chunk iterator, so the async scan
path frames byte-identical records to the sync one by construction.
"""

from __future__ import annotations

import zlib
from typing import AsyncIterator, Optional

from repro.storlets.csv_storlet import _find_record_end


async def aowned_lines(
    chunks: AsyncIterator[bytes],
    range_start: int,
    range_len: Optional[int],
) -> AsyncIterator[bytes]:
    """Async twin of ``repro.storlets.csv_storlet._owned_lines``.

    Identical ownership semantics (Hadoop LineRecordReader rules: a
    non-zero ``range_start`` discards its first line, a range owns the
    record starting exactly at its end boundary) and identical
    quote-aware framing -- only the chunk source is awaited.  The
    caller is responsible for closing ``chunks`` if this generator is
    abandoned early; closing *this* generator does that automatically
    via the ``finally`` below.
    """
    buffer = b""
    offset = 0  # stream offset of buffer[0]
    skipping_first = range_start > 0
    exhausted = False
    scan_pos = 0
    in_quotes = False

    try:
        while True:
            newline, scan_pos, in_quotes = _find_record_end(
                buffer, scan_pos, in_quotes
            )
            while newline < 0 and not exhausted:
                try:
                    chunk = await chunks.__anext__()
                except StopAsyncIteration:
                    exhausted = True
                    break
                if not chunk:
                    continue
                buffer += chunk
                newline, scan_pos, in_quotes = _find_record_end(
                    buffer, scan_pos, in_quotes
                )

            if newline < 0:
                if buffer and not skipping_first:
                    if range_len is None or offset <= range_len:
                        yield buffer
                return

            line, buffer = buffer[:newline], buffer[newline + 1 :]
            line_start = offset
            offset = line_start + newline + 1
            scan_pos = 0
            in_quotes = False

            if skipping_first:
                skipping_first = False
                continue
            if range_len is not None and line_start > range_len:
                return
            yield line.rstrip(b"\r")
    finally:
        aclose = getattr(chunks, "aclose", None)
        if aclose is not None:
            await aclose()


async def adecompress_chunks(
    chunks: AsyncIterator[bytes],
) -> AsyncIterator[bytes]:
    """Streaming zlib inflate over an async chunk iterator.

    The async twin of the connector-side decompression used when a
    pushdown response travelled with ``compress_transfer``; memory stays
    O(chunk) exactly as in the sync path.
    """
    inflater = zlib.decompressobj()
    try:
        async for chunk in chunks:
            if not chunk:
                continue
            plain = inflater.decompress(chunk)
            if plain:
                yield plain
        tail = inflater.flush()
        if tail:
            yield tail
    finally:
        aclose = getattr(chunks, "aclose", None)
        if aclose is not None:
            await aclose()
