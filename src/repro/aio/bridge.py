"""Sync shims over the async core: loop-per-thread bridging.

The sync API stays the default and is "a thin driver over the async
core" (docs/async.md): every OS thread that needs to run a coroutine
gets one persistent private event loop, created on first use and kept
for the thread's lifetime.  Loop-per-*thread* (not loop-per-call) keeps
the cost of entering the async core at one ``run_until_complete`` per
pump, and loop-per-thread (not one global loop) lets the existing
thread-based callers -- tests hammering one context from many threads,
the threaded scheduler mode -- each drive their own work without
cross-thread loop handoffs.

Teardown: loops are registered globally and closed at interpreter exit,
which keeps ``PYTHONDEVMODE=1`` quiet about unclosed event loops while
letting threads die without ceremony.
"""

from __future__ import annotations

import asyncio
import atexit
import threading
from typing import AsyncIterator, Awaitable, Coroutine, Iterator, List, TypeVar

T = TypeVar("T")

_thread_state = threading.local()
_all_loops: List[asyncio.AbstractEventLoop] = []
_all_loops_lock = threading.Lock()


def thread_loop() -> asyncio.AbstractEventLoop:
    """This thread's private event loop, created on first use."""
    loop = getattr(_thread_state, "loop", None)
    if loop is None or loop.is_closed():
        loop = asyncio.new_event_loop()
        _thread_state.loop = loop
        with _all_loops_lock:
            _all_loops.append(loop)
    return loop


def run_sync(awaitable: Awaitable[T]) -> T:
    """Run a coroutine to completion on this thread's loop.

    The sync-shim entry point: must be called from sync context (never
    from inside a running loop -- that would be a re-entrant pump and is
    rejected loudly).
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise RuntimeError(
            "run_sync() called from inside a running event loop; "
            "await the coroutine instead"
        )
    coroutine: Coroutine = (
        awaitable  # type: ignore[assignment]
        if asyncio.iscoroutine(awaitable)
        else _wrap(awaitable)
    )
    return thread_loop().run_until_complete(coroutine)


async def _wrap(awaitable: Awaitable[T]) -> T:
    """Adapt a non-coroutine awaitable for ``run_until_complete``."""
    return await awaitable


def drive(agen: AsyncIterator[T]) -> Iterator[T]:
    """Pump an async generator from sync code, item by item.

    Each ``next()`` resumes the generator on this thread's loop; any
    other coroutines scheduled on the loop (prefetching producers)
    progress during the pump.  Closing the returned generator -- a
    consumer breaking out of its ``for`` loop, a satisfied LIMIT --
    closes the async generator on the loop, which is the cancellation
    path that unwinds producer tasks and releases pool slots
    deterministically (docs/async.md).
    """
    loop = thread_loop()
    try:
        while True:
            try:
                item = loop.run_until_complete(agen.__anext__())
            except StopAsyncIteration:
                return
            yield item
    finally:
        loop.run_until_complete(agen.aclose())


def _close_all_loops() -> None:
    """Interpreter-exit teardown: close every loop ever handed out."""
    with _all_loops_lock:
        loops = list(_all_loops)
        _all_loops.clear()
    for loop in loops:
        if not loop.is_closed():
            loop.close()


atexit.register(_close_all_loops)
