"""Asyncio substrate for the event-loop serving core.

Small, dependency-free primitives shared by every async tier
(docs/async.md):

* :class:`~repro.aio.gate.AsyncGate` -- a counting gate with a
  non-blocking ``try_acquire`` (needed for wait-count parity with the
  threaded ``threading.Semaphore`` paths).
* :class:`~repro.aio.gate.LoopLocal` -- per-event-loop lazily built
  values, how "one bounded connection pool per event loop" is spelled.
* :mod:`repro.aio.bridge` -- the sync-shim contract: a persistent
  private event loop per OS thread, ``run_sync`` for coroutines and
  ``drive`` for async generators.
* :mod:`repro.aio.stream` -- async twins of the chunk/record streaming
  helpers (quote-aware record framing over async chunk iterators).
"""

from repro.aio.bridge import drive, run_sync, thread_loop
from repro.aio.gate import AsyncGate, LoopLocal

__all__ = ["AsyncGate", "LoopLocal", "drive", "run_sync", "thread_loop"]
