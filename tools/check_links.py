#!/usr/bin/env python
"""Check intra-repo markdown links in README.md and docs/.

Stdlib-only (this repo has no dependencies, and CI should not need
any to lint docs).  For every markdown file checked, each inline link
or image ``[text](target)`` whose target is *not* an external URL or a
pure ``#fragment`` must resolve to a file or directory inside the
repository; when the target carries a ``#heading`` fragment and points
at a markdown file, the heading must exist in that file (GitHub slug
rules: lowercase, punctuation stripped, spaces to hyphens).

Usage::

    python tools/check_links.py [files...]

With no arguments, checks ``README.md`` and every ``docs/*.md``
relative to the repository root (the parent of this script's
directory).  Exits non-zero listing every broken link.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterable, List, Tuple

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
#: Targets never contain whitespace in this repo's docs, which keeps the
#: pattern from swallowing prose parentheses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that mark a link as external (not checked).
EXTERNAL = ("http://", "https://", "mailto:")

#: Fenced code blocks, where link-looking text is code, not a link.
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a markdown heading."""
    slug = heading.strip().lower()
    # Inline code/emphasis markers vanish (underscores stay: in these
    # docs they are identifiers, not emphasis); then everything that is
    # not a word character, space or hyphen vanishes; spaces become
    # hyphens.
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    """All heading anchors defined in a markdown document."""
    slugs = []
    in_fence = False
    for line in markdown.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.append(github_slug(line.lstrip("#")))
    return slugs


def iter_links(markdown: str) -> Iterable[str]:
    """Every inline link target outside fenced code blocks."""
    in_fence = False
    for line in markdown.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield match.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path) -> List[Tuple[str, str]]:
    """Return ``(target, problem)`` pairs for one markdown file."""
    problems = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            # Same-file fragment.
            if github_slug(target[1:]) not in heading_slugs(
                path.read_text(encoding="utf-8")
            ):
                problems.append((target, "no such heading in this file"))
            continue
        name, _, fragment = target.partition("#")
        resolved = (path.parent / name).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            problems.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            problems.append((target, "no such file"))
            continue
        if fragment and resolved.suffix == ".md":
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if fragment not in slugs:
                problems.append((target, f"no heading #{fragment}"))
    return problems


def default_files(root: pathlib.Path) -> List[pathlib.Path]:
    """README.md plus every page under docs/."""
    return [root / "README.md"] + sorted((root / "docs").glob("*.md"))


def main(argv: List[str]) -> int:
    """CLI entry point; returns the exit status."""
    root = pathlib.Path(__file__).resolve().parent.parent
    files = (
        [pathlib.Path(arg) for arg in argv] if argv else default_files(root)
    )
    broken = 0
    for path in files:
        for target, problem in check_file(path, root):
            print(f"{path.relative_to(root)}: {target}: {problem}")
            broken += 1
    checked = len(files)
    if broken:
        print(f"{broken} broken link(s) across {checked} file(s)")
        return 1
    print(f"ok: {checked} file(s), no broken intra-repo links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
