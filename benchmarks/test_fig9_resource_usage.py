"""Fig. 9: compute-cluster CPU (a), memory (b) and inter-cluster network
(c) while running a ~99%-selectivity query (ShowGraphHCHP) on 3 TB, with
and without Scoop.

Paper anchors: plain ingest saturates the LB's 10 Gbps link; Scoop
reduces compute CPU cycles by 97.8%, lowers the memory peak and holds it
12-15x shorter; the LB sees only a small average flow for a short time.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9_resource_usage, render_table
from repro.experiments.report import render_series


def test_fig9_resource_usage_with_and_without_scoop(benchmark):
    usage = run_once(benchmark, fig9_resource_usage, "large", 0.99)
    summary = usage.summary()
    render_table(
        "Fig. 9 -- resource usage, ShowGraphHCHP-like query on 3TB",
        ["metric", "plain Spark/Swift", "Scoop pushdown"],
        [
            [
                "query time (s)",
                summary["plain_seconds"],
                summary["pushdown_seconds"],
            ],
            [
                "worker CPU mean",
                f"{summary['plain_worker_cpu_mean'] * 100:.2f}%",
                f"{summary['pushdown_worker_cpu_mean'] * 100:.2f}%",
            ],
            [
                "worker memory peak",
                f"{summary['plain_worker_mem_peak'] * 100:.1f}%",
                f"{summary['pushdown_worker_mem_peak'] * 100:.1f}%",
            ],
            [
                "LB link peak (Gbps)",
                summary["plain_lb_peak_bps"] * 8 / 1e9,
                usage.pushdown.peak_series("lb.throughput") * 8 / 1e9,
            ],
            [
                "LB mean while active (MB/s)",
                usage.plain.mean_series("lb.throughput") / 1e6,
                summary["pushdown_lb_mean_bps"] / 1e6,
            ],
            [
                "compute CPU cycles saved",
                "--",
                f"{usage.compute_cpu_cycles_saved() * 100:.1f}%",
            ],
        ],
    )

    render_series(
        "Fig. 9(c) -- LB link throughput over time (GB/s)",
        [
            ("plain Spark/Swift", _scaled(usage.plain.series["lb.throughput"])),
            ("Scoop", _scaled(usage.pushdown.series["lb.throughput"])),
        ],
    )

    # (a) CPU: paper reports 97.8% fewer compute cycles.
    assert usage.compute_cpu_cycles_saved() > 0.9
    # (b) memory: lower peak, and held for a much shorter time.
    assert (
        summary["pushdown_worker_mem_peak"]
        < summary["plain_worker_mem_peak"]
    )
    assert summary["plain_seconds"] > summary["pushdown_seconds"] * 12
    # (c) network: plain saturates 10 Gbps; Scoop moves a trickle.
    assert summary["plain_lb_peak_bps"] * 8 > 9.9e9
    assert summary["pushdown_lb_mean_bps"] * 8 < 4e9


def _scaled(series, factor=1e-9):
    """GB/s view of a bytes/s series (for the ASCII chart)."""
    from repro.cluster.metrics import ResourceSeries

    scaled = ResourceSeries(series.name)
    scaled.times = list(series.times)
    scaled.values = [value * factor for value in series.values]
    return scaled
