"""Fig. 9: compute-cluster CPU (a), memory (b) and inter-cluster network
(c) while running a ~99%-selectivity query (ShowGraphHCHP) on 3 TB, with
and without Scoop.

Paper anchors: plain ingest saturates the LB's 10 Gbps link; Scoop
reduces compute CPU cycles by 97.8%, lowers the memory peak and holds it
12-15x shorter; the LB sees only a small average flow for a short time.
"""

from benchmarks.conftest import run_bench
from repro.experiments import fig9_resource_usage
from repro.experiments.report import render_series


def test_fig9_resource_usage_with_and_without_scoop(benchmark):
    document = run_bench(benchmark, "fig9")
    summary = document["results"]["summary"]
    # (a) CPU: paper reports 97.8% fewer compute cycles.
    assert document["headline"]["cpu_cycles_saved"] > 0.9
    # (c) network: plain saturates 10 Gbps; Scoop moves a trickle.
    assert summary["plain_lb_peak_bps"] * 8 > 9.9e9
    assert summary["pushdown_lb_mean_bps"] * 8 < 4e9

    # The familiar ASCII chart (re-derived; the model is deterministic).
    usage = fig9_resource_usage("large", 0.99)
    render_series(
        "Fig. 9(c) -- LB link throughput over time (GB/s)",
        [
            ("plain Spark/Swift", _scaled(usage.plain.series["lb.throughput"])),
            ("Scoop", _scaled(usage.pushdown.series["lb.throughput"])),
        ],
    )


def _scaled(series, factor=1e-9):
    """GB/s view of a bytes/s series (for the ASCII chart)."""
    from repro.cluster.metrics import ResourceSeries

    scaled = ResourceSeries(series.name)
    scaled.times = list(series.times)
    scaled.values = [value * factor for value in series.values]
    return scaled
