"""Fig. 1: the motivating plot -- ingest-then-compute query time grows
linearly with dataset size.

Paper: "executing a given query on increasingly larger datasets involves
a linear growth in query completion times."
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1_ingest_scaling, render_table

SIZES_GB = (5, 10, 20, 30, 40, 50)


def test_fig1_ingest_then_compute_scaling(benchmark):
    points = run_once(benchmark, fig1_ingest_scaling, SIZES_GB)
    render_table(
        "Fig. 1 -- ingest-then-compute query time vs dataset size",
        ["dataset (GB)", "query time (s)", "s/GB"],
        [
            [p.dataset_gb, p.query_seconds, p.query_seconds / p.dataset_gb]
            for p in points
        ],
    )
    # The paper's observation: growth is linear (constant marginal cost).
    marginal = [
        (points[i + 1].query_seconds - points[i].query_seconds)
        / (points[i + 1].dataset_gb - points[i].dataset_gb)
        for i in range(len(points) - 1)
    ]
    spread = max(marginal) - min(marginal)
    assert spread < 0.25 * max(marginal)
