"""Fig. 1: the motivating plot -- ingest-then-compute query time grows
linearly with dataset size.

Paper: "executing a given query on increasingly larger datasets involves
a linear growth in query completion times."
"""

from benchmarks.conftest import run_bench


def test_fig1_ingest_then_compute_scaling(benchmark):
    document = run_bench(benchmark, "fig1")
    points = document["results"]["points"]
    # The paper's observation, restated on the captured data: more data
    # means proportionally more time (the linearity check itself is a
    # recorded check inside the document).
    assert len(points) == 6
    assert points[-1]["query_seconds"] > points[0]["query_seconds"]
