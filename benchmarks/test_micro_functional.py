"""Microbenchmarks of the functional substrates (repeated-round timing):
CSV storlet throughput, ring lookups, SQL parse/execute, flow network
reallocation, end-to-end pushdown query."""

import json

import pytest

from repro.cluster import FlowNetwork
from repro.gridpocket import DatasetSpec, METER_SCHEMA, MeterDataGenerator
from repro.simulation import Environment
from repro.sql import (
    EqualTo,
    StringStartsWith,
    execute_query,
    filters_to_json,
    parse_query,
)
from repro.storlets import (
    CsvStorlet,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.swift.ring import RingBuilder


@pytest.fixture(scope="module")
def meter_csv() -> bytes:
    generator = MeterDataGenerator(DatasetSpec(meters=50, intervals=100))
    return b"".join(generator.csv_lines())


@pytest.fixture(scope="module")
def meter_rows():
    generator = MeterDataGenerator(DatasetSpec(meters=50, intervals=100))
    return list(generator.rows())


def test_bench_csv_storlet_filter_throughput(benchmark, meter_csv):
    """Bytes/second through the pushdown filter (selection+projection)."""
    parameters = {
        "schema": METER_SCHEMA.to_header(),
        "columns": json.dumps(["vid", "date", "index"]),
        "filters": filters_to_json(
            [EqualTo("city", "Paris"), StringStartsWith("date", "2015-01")]
        ),
    }

    def run():
        out = StorletOutputStream()
        CsvStorlet().invoke(
            [StorletInputStream([meter_csv])],
            [out],
            dict(parameters),
            StorletLogger("bench"),
        )
        return out.bytes_written

    written = benchmark(run)
    assert written > 0
    benchmark.extra_info["input_bytes"] = len(meter_csv)


def test_bench_ring_lookup(benchmark):
    builder = RingBuilder(part_power=14, replica_count=3)
    for node in range(8):
        for disk in range(4):
            builder.add_device(zone=node % 4, weight=1.0, node=f"n{node}", disk=disk)
    ring = builder.get_ring()

    def lookups():
        for i in range(1000):
            ring.get_nodes("AUTH_bench", "container", f"object-{i}")
        return True

    assert benchmark(lookups)


def test_bench_ring_rebalance(benchmark):
    def rebalance():
        builder = RingBuilder(part_power=10, replica_count=3)
        for node in range(10):
            builder.add_device(zone=node % 5, weight=1.0, node=f"n{node}")
        return builder.rebalance()

    moved = benchmark(rebalance)
    assert moved == 0 or moved > 0


def test_bench_sql_parse(benchmark):
    sql = (
        "SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, "
        "max(sumHC) as maxHC, min(sumHP) as minHP, max(sumHP) as maxHP "
        "FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-%' "
        "GROUP BY SUBSTRING(date, 0, 10), vid "
        "ORDER BY SUBSTRING(date, 0, 10), vid"
    )
    query = benchmark(parse_query, sql)
    assert query.table == "largeMeter"


def test_bench_sql_aggregate_execution(benchmark, meter_rows):
    sql = (
        "SELECT vid, sum(index) as total, first_value(city) as city "
        "FROM t WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid"
    )

    def run():
        _schema, rows = execute_query(sql, METER_SCHEMA, meter_rows)
        return len(rows)

    count = benchmark(run)
    assert count == 50


def test_bench_flow_network_reallocation(benchmark):
    """Cost of max-min reallocation with many concurrent flows."""

    def run():
        env = Environment()
        network = FlowNetwork(env)
        resources = [network.add_resource(f"r{i}", 100.0) for i in range(20)]
        finished = []

        def launch(index):
            flow = network.start_flow(
                50.0,
                {
                    resources[index % 20]: 1.0,
                    resources[(index + 7) % 20]: 0.5,
                },
            )
            yield flow.done
            finished.append(index)

        for index in range(60):
            env.process(launch(index))
        env.run()
        return len(finished)

    assert benchmark(run) == 60


def test_bench_end_to_end_pushdown_query(benchmark):
    """Whole-stack latency: SQL in, filtered+aggregated rows out."""
    from repro.core import ScoopContext
    from repro.gridpocket import upload_dataset

    ctx = ScoopContext(chunk_size=128 * 1024)
    upload_dataset(
        ctx.client, "meters", DatasetSpec(meters=30, intervals=60, objects=2)
    )
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    sql = (
        "SELECT vid, sum(index) as total FROM largeMeter "
        "WHERE city LIKE 'Paris' GROUP BY vid ORDER BY vid"
    )

    def run():
        return len(ctx.sql(sql).collect())

    count = benchmark(run)
    assert count >= 0
