"""Table I: column/row/data selectivity of the real GridPocket queries.

Selectivities are measured by running each query's actual pushdown spec
(Catalyst-extracted columns + filters) over a generated multi-year
sample, exactly what the storlet would evaluate at the store.
"""

from benchmarks.conftest import run_bench


def test_table1_query_selectivities(benchmark):
    document = run_bench(benchmark, "table1")
    queries = document["results"]["queries"]
    assert len(queries) == 7
    for query in queries:
        # The paper's defining property: these queries are extremely
        # data-selective (>99% of bytes never need to leave the store).
        assert query["row_selectivity"] > 0.99, query["name"]
        assert query["data_selectivity"] > 0.99, query["name"]
