"""Table I: column/row/data selectivity of the real GridPocket queries.

Selectivities are measured by running each query's actual pushdown spec
(Catalyst-extracted columns + filters) over a generated multi-year
sample, exactly what the storlet would evaluate at the store.
"""

from benchmarks.conftest import run_once
from repro.experiments import render_table, table1_selectivities


def test_table1_query_selectivities(benchmark):
    rows = run_once(benchmark, table1_selectivities)
    render_table(
        "Table I -- GridPocket query selectivities (measured vs paper)",
        [
            "query",
            "column sel.",
            "row sel.",
            "data sel.",
            "paper data sel.",
        ],
        [row.as_row() for row in rows],
    )
    assert len(rows) == 7
    for row in rows:
        # The paper's defining property: these queries are extremely
        # data-selective (>99% of bytes never need to leave the store).
        assert row.measured.row_selectivity > 0.99, row.name
        assert row.measured.data_selectivity > 0.99, row.name
