"""Fig. 5: query speedup S_Q vs data selectivity, by selectivity type
(row / column / mixed), for the 50 GB and 3 TB datasets.

Expected shape (paper Section VI-A): S_Q ~ 1 at zero selectivity,
superlinear growth with selectivity (80% -> ~5x, 90% -> >10x on 3 TB),
row selectivity slightly ahead of column/mixed, larger dataset -> larger
speedups.
"""

import pytest

from benchmarks.conftest import run_bench


def test_fig5_speedup_grid(benchmark):
    document = run_bench(benchmark, "fig5")
    large_mixed = {
        p["selectivity"]: p["speedup"]
        for p in document["results"]["points"]
        if p["dataset"] == "large" and p["type"] == "mixed"
    }
    # S_Q ~ 1 at no selectivity (paper: worst-case -3.4%), ~5x at 80%.
    assert large_mixed[0.0] == pytest.approx(1.0, abs=0.1)
    assert large_mixed[0.8] == pytest.approx(5.0, rel=0.3)
