"""Fig. 5: query speedup S_Q vs data selectivity, by selectivity type
(row / column / mixed), for the 50 GB and 3 TB datasets.

Expected shape (paper Section VI-A): S_Q ~ 1 at zero selectivity,
superlinear growth with selectivity (80% -> ~5x, 90% -> >10x on 3 TB),
row selectivity slightly ahead of column/mixed, larger dataset -> larger
speedups.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig5_speedup_grid, render_table

SELECTIVITIES = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)


def test_fig5_speedup_grid(benchmark):
    points = run_once(
        benchmark,
        fig5_speedup_grid,
        SELECTIVITIES,
        ("row", "column", "mixed"),
        ("small", "large"),
    )
    for dataset in ("small", "large"):
        rows = []
        for selectivity in SELECTIVITIES:
            row = [f"{selectivity * 100:.0f}%"]
            for kind in ("row", "column", "mixed"):
                point = next(
                    p
                    for p in points
                    if p.dataset == dataset
                    and p.selectivity == selectivity
                    and p.selectivity_type == kind
                )
                row.append(round(point.speedup, 2))
            rows.append(row)
        render_table(
            f"Fig. 5 -- S_Q vs data selectivity ({dataset} dataset)",
            ["selectivity", "S_Q row", "S_Q column", "S_Q mixed"],
            rows,
        )

    large_mixed = {
        p.selectivity: p.speedup
        for p in points
        if p.dataset == "large" and p.selectivity_type == "mixed"
    }
    # S_Q ~ 1 at no selectivity (paper: worst-case -3.4%).
    assert large_mixed[0.0] == pytest.approx(1.0, abs=0.1)
    # Superlinear: 80% ~ 5x, 90% clearly above 1/(1-0.8).
    assert large_mixed[0.8] == pytest.approx(5.0, rel=0.3)
    assert large_mixed[0.9] > large_mixed[0.8] * 1.7
    # Larger dataset wins at equal selectivity.
    small_mixed = {
        p.selectivity: p.speedup
        for p in points
        if p.dataset == "small" and p.selectivity_type == "mixed"
    }
    assert large_mixed[0.9] > small_mixed[0.9]
