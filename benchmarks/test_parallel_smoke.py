"""Wall-clock smoke benchmark for the parallel scheduler.

The concurrent engine buys its speedup by *overlapping store latency*:
partition tasks spend most of their time waiting on GETs, so a pool of
8 should drain a 16-partition scan several times faster than the serial
loop even under the GIL.  This test injects a fixed per-GET latency at
the object tier (the store round-trip the paper's testbed pays over the
network) and asserts the parallel run beats serial by >= 2x -- a hard
regression gate for accidental serialization (a stray lock held across
I/O, a barrier in the merge).

Self-contained (plain pytest, no pytest-benchmark), so CI runs it as
part of the parallel job:

    PYTHONPATH=src python -m pytest benchmarks/test_parallel_smoke.py -q
"""

from __future__ import annotations

import time

from repro.core.scoop import ScoopContext
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset

#: Injected one-way latency per object-tier GET.  High enough that the
#: scan is latency-dominated (the real regime), low enough that the
#: serial baseline stays ~a second.
GET_LATENCY = 0.03

SPEC_16 = DatasetSpec(meters=24, intervals=32, objects=16)
SCAN_SQL = "SELECT vid, date, index FROM m WHERE city LIKE 'Paris'"

#: Required serial/parallel wall-clock ratio at pool size 8.  The
#: latency-only floor is ~8x (16 waves collapse to 2); 2x leaves head
#: room for scheduling overhead and slow CI machines.
MIN_SPEEDUP = 2.0


def latency_middleware(delay: float):
    class Latency:
        def __init__(self, app):
            self.app = app

        def __call__(self, request):
            if request.method == "GET":
                time.sleep(delay)
            return self.app(request)

    return Latency


def timed_scan(parallelism: int) -> tuple:
    ctx = ScoopContext(chunk_size=32 * 1024, parallelism=parallelism)
    upload_dataset(ctx.client, "meters", SPEC_16)
    ctx.register_csv_table("m", "meters", schema=METER_SCHEMA)
    # Installed after upload/registration so only the measured scan
    # pays the injected store round-trip.
    ctx.cluster.install_object_middleware(latency_middleware(GET_LATENCY))
    started = time.perf_counter()
    rows = ctx.sql(SCAN_SQL).collect()
    return time.perf_counter() - started, rows


def test_parallel_scan_speedup():
    serial_seconds, serial_rows = timed_scan(1)
    parallel_seconds, parallel_rows = timed_scan(8)
    assert parallel_rows == serial_rows
    speedup = serial_seconds / parallel_seconds
    print(
        f"\n16-partition scan, {GET_LATENCY * 1000:.0f} ms/GET: "
        f"serial {serial_seconds:.2f}s, parallel(8) {parallel_seconds:.2f}s "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel scan only {speedup:.2f}x faster than serial "
        f"({serial_seconds:.2f}s vs {parallel_seconds:.2f}s); "
        f"the pool is not overlapping store latency"
    )
