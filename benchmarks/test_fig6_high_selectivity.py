"""Fig. 6: S_Q in the very-high-selectivity regime, all three dataset
sizes.

Paper: "queries with high percentages of data selectivity may benefit
from execution times up to 31 times shorter", with the 3 TB dataset
ahead of 500 GB ahead of 50 GB, and the 500GB->3TB gap smaller than the
50GB->500GB gap (resource saturation).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig6_high_selectivity, render_table

SELECTIVITIES = (0.9, 0.95, 0.99, 0.999, 0.9999)


def test_fig6_high_selectivity_speedups(benchmark):
    points = run_once(
        benchmark,
        fig6_high_selectivity,
        SELECTIVITIES,
        ("small", "medium", "large"),
    )
    table = []
    for selectivity in SELECTIVITIES:
        row = [f"{selectivity * 100:.2f}%"]
        for dataset in ("small", "medium", "large"):
            point = next(
                p
                for p in points
                if p.dataset == dataset and p.selectivity == selectivity
            )
            row.append(round(point.speedup, 2))
        table.append(row)
    render_table(
        "Fig. 6 -- S_Q at high data selectivity",
        ["selectivity", "S_Q 50GB", "S_Q 500GB", "S_Q 3TB"],
        table,
    )

    best = {
        dataset: max(
            p.speedup for p in points if p.dataset == dataset
        )
        for dataset in ("small", "medium", "large")
    }
    # Headline: up to ~31x on the largest dataset.
    assert 20 < best["large"] < 45
    # Ordering by dataset size...
    assert best["small"] < best["medium"] < best["large"]
    # ...with diminishing returns between 500 GB and 3 TB (paper: "the
    # performance increase between 500GB and 3TB datasets is smaller").
    assert (best["large"] - best["medium"]) < (
        best["medium"] - best["small"]
    )
