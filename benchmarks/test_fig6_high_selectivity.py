"""Fig. 6: S_Q in the very-high-selectivity regime, all three dataset
sizes.

Paper: "queries with high percentages of data selectivity may benefit
from execution times up to 31 times shorter", with the 3 TB dataset
ahead of 500 GB ahead of 50 GB, and the 500GB->3TB gap smaller than the
50GB->500GB gap (resource saturation).
"""

from benchmarks.conftest import run_bench


def test_fig6_high_selectivity_speedups(benchmark):
    document = run_bench(benchmark, "fig6")
    best = document["results"]["best_speedup"]
    # Headline: up to ~31x on the largest dataset, ordered by size.
    assert 20 < best["large"] < 45
    assert best["small"] < best["medium"] < best["large"]
