"""Fig. 8: Scoop vs Apache Parquet for column selectivity (50 GB).

Expected shape (paper Section VI-C): Parquet's compression gives it a
flat, significant speedup that wins at low selectivity; Scoop's speedup
grows superlinearly and overtakes around 60%; at 90% Scoop is ~2x
faster than Parquet.
"""

import pytest

from benchmarks.conftest import run_bench


def test_fig8_scoop_vs_parquet(benchmark):
    document = run_bench(benchmark, "fig8")
    headline = document["headline"]
    # Crossover in the paper's band, ~2.16x ahead of Parquet at 90%.
    assert 0.4 <= headline["crossover_selectivity"] <= 0.8
    assert headline["scoop_vs_parquet_at_90"] == pytest.approx(
        2.16, rel=0.35
    )
