"""Fig. 8: Scoop vs Apache Parquet for column selectivity (50 GB).

Expected shape (paper Section VI-C): Parquet's compression gives it a
flat, significant speedup that wins at low selectivity; Scoop's speedup
grows superlinearly and overtakes around 60%; at 90% Scoop is ~2x
faster than Parquet.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig8_parquet_comparison, render_table
from repro.experiments.figures import fig8_crossover

SELECTIVITIES = (0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9)


def test_fig8_scoop_vs_parquet(benchmark):
    points = run_once(benchmark, fig8_parquet_comparison, SELECTIVITIES)
    render_table(
        "Fig. 8 -- Scoop vs Parquet speedup (column selectivity, 50GB)",
        ["selectivity", "S_Q Scoop", "S_Q Parquet", "winner"],
        [
            [
                f"{p.selectivity * 100:.0f}%",
                round(p.scoop_speedup, 2),
                round(p.parquet_speedup, 2),
                "Scoop" if p.scoop_speedup > p.parquet_speedup else "Parquet",
            ]
            for p in points
        ],
    )
    by_selectivity = {p.selectivity: p for p in points}
    # Parquet wins the no-selectivity regime (compression effect).
    assert (
        by_selectivity[0.0].parquet_speedup
        > by_selectivity[0.0].scoop_speedup
    )
    # Crossover in the paper's band (>= ~60%).
    crossover = fig8_crossover(points)
    assert crossover is not None and 0.4 <= crossover <= 0.8
    # Paper: 2.16x faster than Parquet at 90%.
    ratio = (
        by_selectivity[0.9].scoop_speedup
        / by_selectivity[0.9].parquet_speedup
    )
    assert ratio == pytest.approx(2.16, rel=0.35)
