"""Fig. 7: S_Q of the seven real GridPocket queries on the small (50 GB)
and medium (500 GB) datasets, with absolute plain/pushdown times.

Paper headline for the batch: importing a fresh 500 GB per query, the
whole query set takes 4,814.7 s plain vs 155.48 s with Scoop.
"""

from benchmarks.conftest import run_bench


def test_fig7_gridpocket_query_speedups(benchmark):
    document = run_bench(benchmark, "fig7")
    headline = document["headline"]
    # The batch headline: >10x end to end on the 500 GB dataset.
    assert headline["batch_plain_seconds"] > (
        headline["batch_pushdown_seconds"] * 10
    )
    for row in document["results"]["rows"]:
        assert row["plain_seconds"] > row["pushdown_seconds"] * 2, (
            row["query"]
        )
