"""Fig. 7: S_Q of the seven real GridPocket queries on the small (50 GB)
and medium (500 GB) datasets, with absolute plain/pushdown times.

Paper headline for the batch: importing a fresh 500 GB per query, the
whole query set takes 4,814.7 s plain vs 155.48 s with Scoop.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig7_gridpocket_speedups, render_table
from repro.experiments.gridpocket_runs import fig7_total_batch_seconds


def test_fig7_gridpocket_query_speedups(benchmark, table1_rows):
    rows = run_once(
        benchmark,
        fig7_gridpocket_speedups,
        ("small", "medium"),
        None,
        table1_rows,
    )
    for dataset in ("small", "medium"):
        subset = [r for r in rows if r.dataset == dataset]
        render_table(
            f"Fig. 7 -- GridPocket query speedups ({dataset} dataset)",
            [
                "query",
                "dataset",
                "data sel.",
                "plain (s)",
                "pushdown (s)",
                "S_Q",
            ],
            [r.as_row() for r in subset],
        )

    plain_total, pushdown_total = fig7_total_batch_seconds(rows, "medium")
    render_table(
        "Fig. 7 -- whole-batch totals on 500 GB (paper: 4814.7 vs 155.5 s)",
        ["plain total (s)", "pushdown total (s)", "batch speedup"],
        [[plain_total, pushdown_total, plain_total / pushdown_total]],
    )

    for row in rows:
        assert row.speedup > 2.0, row.query_name
    medium = [r.speedup for r in rows if r.dataset == "medium"]
    small = [r.speedup for r in rows if r.dataset == "small"]
    assert min(medium) > max(small) * 0.9  # larger dataset gains more
    assert plain_total > pushdown_total * 10
