"""Shared fixtures for the benchmark suite.

Each ``test_fig*`` / ``test_table*`` module regenerates one table or
figure of the paper's evaluation: it runs the experiment through
pytest-benchmark (so regeneration cost is tracked) and prints the same
rows/series the paper reports.
"""

from __future__ import annotations

import pytest

from repro.experiments.gridpocket_runs import table1_selectivities
from repro.perfmodel import IngestSimulation


@pytest.fixture(scope="session")
def simulation() -> IngestSimulation:
    return IngestSimulation()


@pytest.fixture(scope="session")
def table1_rows():
    """Functional Table-I selectivity measurements (cached: ~10 s)."""
    return table1_selectivities()


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark an experiment that is too slow for repeated rounds."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
