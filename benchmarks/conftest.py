"""Shared fixtures for the benchmark suite.

Each ``test_fig*`` / ``test_table*`` module regenerates one table or
figure of the paper's evaluation by running the named experiment
through the ``repro.bench`` orchestrator (the same code path as
``python -m repro bench``): pytest-benchmark tracks the regeneration
cost, the familiar ASCII tables are printed from the captured result
document, and every recorded check must pass.
"""

from __future__ import annotations

import pytest

from repro.experiments.gridpocket_runs import table1_selectivities
from repro.perfmodel import IngestSimulation


@pytest.fixture(scope="session")
def simulation() -> IngestSimulation:
    return IngestSimulation()


@pytest.fixture(scope="session")
def table1_rows():
    """Functional Table-I selectivity measurements (cached: ~10 s)."""
    return table1_selectivities()


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark an experiment that is too slow for repeated rounds."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def run_bench(benchmark, name: str, quick: bool = False):
    """Run one named experiment through the orchestrator, print its
    tables, and assert every recorded check passed; returns the
    result document."""
    from repro.bench import run_experiment
    from repro.bench.reportgen import render_document_tables

    document = run_once(benchmark, run_experiment, name, quick=quick)
    render_document_tables(document)
    failed = [
        f"{check['name']}: {check['detail']}"
        for check in document["checks"]
        if not check["passed"]
    ]
    assert not failed, f"{name} checks failed: {failed}"
    return document
