"""Fig. 10: CPU utilization of Swift storage nodes with and without
Scoop.

Paper: storage nodes are almost idle under plain Swift (average 1.25%)
but do real work under pushdown (average 23.5% over their collection
window); the overhead buys the compute-side savings of Fig. 9.
"""

from benchmarks.conftest import run_bench
from repro.experiments import fig10_storage_cpu
from repro.experiments.report import render_series


def test_fig10_storage_node_cpu(benchmark):
    document = run_bench(benchmark, "fig10")
    storage = document["results"]["storage_cpu"]
    # Plain Swift leaves storage CPUs nearly idle (paper: 1.25%);
    # pushdown does real work there.
    assert storage["plain_mean"] < 0.05
    assert storage["pushdown_busy_mean"] > 0.2
    assert storage["pushdown_windowed_mean"] > storage["plain_mean"] * 3

    # The familiar ASCII chart (re-derived; the model is deterministic).
    plain_series, pushdown_series = fig10_storage_cpu("large", 0.99)
    render_series(
        "Fig. 10 -- storage-node CPU utilization over time",
        [("plain Swift", plain_series), ("Scoop", pushdown_series)],
    )
