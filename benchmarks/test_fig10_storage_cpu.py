"""Fig. 10: CPU utilization of Swift storage nodes with and without
Scoop.

Paper: storage nodes are almost idle under plain Swift (average 1.25%)
but do real work under pushdown (average 23.5% over their collection
window); the overhead buys the compute-side savings of Fig. 9.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig10_storage_cpu, render_table
from repro.experiments.report import render_series


def test_fig10_storage_node_cpu(benchmark):
    plain_series, pushdown_series = run_once(
        benchmark, fig10_storage_cpu, "large", 0.99
    )
    # Average the pushdown series over the plain run's longer window too,
    # since the paper's collectd window spans the whole experiment.
    window = max(plain_series.times) if plain_series.times else 1.0
    pushdown_busy = pushdown_series.mean()
    pushdown_windowed = (
        pushdown_series.integral() / window if window else 0.0
    )
    render_table(
        "Fig. 10 -- storage-node CPU utilization",
        ["series", "mean", "peak"],
        [
            [
                "plain Swift",
                f"{plain_series.mean() * 100:.2f}%",
                f"{plain_series.peak() * 100:.2f}%",
            ],
            [
                "Scoop (while running)",
                f"{pushdown_busy * 100:.1f}%",
                f"{pushdown_series.peak() * 100:.1f}%",
            ],
            [
                "Scoop (over plain-run window)",
                f"{pushdown_windowed * 100:.1f}%",
                "--",
            ],
        ],
    )
    render_series(
        "Fig. 10 -- storage-node CPU utilization over time",
        [("plain Swift", plain_series), ("Scoop", pushdown_series)],
    )
    # Plain Swift leaves storage CPUs nearly idle (paper: 1.25%).
    assert plain_series.mean() < 0.05
    # Pushdown does real work there; the while-running mean is high, and
    # even amortized over the whole plain-run window it far exceeds idle.
    assert pushdown_busy > 0.2
    assert pushdown_windowed > plain_series.mean() * 3
