"""Ablation benches over the design choices DESIGN.md calls out:
storlet staging tier, partition (chunk) size, adaptive pushdown."""

from benchmarks.conftest import run_once
from repro.experiments import (
    ablation_adaptive_pushdown,
    ablation_chunk_size,
    ablation_staging,
    render_table,
)


def test_ablation_staging_object_vs_proxy(benchmark):
    """Section V-A: why the paper extended Storlets to run at object
    nodes -- proxy staging moves whole objects to a 6-node pool."""
    results = run_once(benchmark, ablation_staging, (0.5, 0.9, 0.99))
    render_table(
        "Ablation -- storlet staging tier (3TB, mixed selectivity)",
        [
            "selectivity",
            "object-node (s)",
            "proxy (s)",
            "object advantage",
        ],
        [
            [
                f"{r.selectivity * 100:.0f}%",
                r.object_node_seconds,
                r.proxy_seconds,
                round(r.object_advantage, 2),
            ]
            for r in results
        ],
    )
    # The advantage grows with selectivity: at high selectivity the
    # proxy tier's small CPU pool is the bottleneck.
    advantages = [r.object_advantage for r in results]
    assert advantages[-1] > 1.5
    assert advantages == sorted(advantages)


def test_ablation_chunk_size(benchmark):
    """Section VII: HDFS chunk sizes are not adapted to object stores.
    Small chunks multiply fixed latencies; huge chunks starve stream
    parallelism."""
    sizes = (32, 64, 128, 256, 1024, 4096, 16384)
    results = run_once(benchmark, ablation_chunk_size, sizes, "medium", 0.95)
    render_table(
        "Ablation -- partition (chunk) size (500GB, 95% selectivity)",
        ["chunk (MB)", "tasks", "pushdown time (s)"],
        [[r.chunk_mb, r.task_count, r.pushdown_seconds] for r in results],
    )
    times = [r.pushdown_seconds for r in results]
    best = min(times)
    assert times[0] > best  # small-chunk latency penalty
    assert times[-1] > best  # huge-chunk parallelism penalty


def test_ablation_adaptive_pushdown(benchmark):
    """Section VII: Crystal-style control -- who keeps the pushdown
    service as storage CPU pressure rises."""
    scenarios = run_once(
        benchmark, ablation_adaptive_pushdown, (0.2, 0.5, 0.7, 0.9)
    )
    render_table(
        "Ablation -- adaptive pushdown under storage CPU pressure",
        ["storage CPU", "gold", "silver", "bronze"],
        [
            [
                f"{s.storage_cpu * 100:.0f}%",
                "push" if s.gold_pushed else "ingest",
                "push" if s.silver_pushed else "ingest",
                "push" if s.bronze_pushed else "ingest",
            ]
            for s in scenarios
        ],
    )
    assert all(s.gold_pushed for s in scenarios)
    assert scenarios[0].bronze_pushed
    assert not scenarios[-1].bronze_pushed
    assert not scenarios[-1].silver_pushed


def test_ablation_filter_plus_compression(benchmark):
    """Section VI-C's closing conjecture: "intelligent combinations of
    data filtering and compression for low data selectivity queries"
    should beat Parquet across the board."""
    from repro.experiments import ablation_filter_plus_compression

    results = run_once(
        benchmark, ablation_filter_plus_compression, (0.0, 0.2, 0.5, 0.9)
    )
    render_table(
        "Ablation -- filter + transfer compression vs Parquet (50GB)",
        ["selectivity", "pushdown", "pushdown+zlib", "parquet"],
        [
            [
                f"{r.selectivity * 100:.0f}%",
                round(r.pushdown_speedup, 2),
                round(r.compressed_speedup, 2),
                round(r.parquet_speedup, 2),
            ]
            for r in results
        ],
    )
    for result in results:
        assert result.compressed_speedup > result.pushdown_speedup
        # The conjecture: the combination matches/beats Parquet even in
        # Parquet's best (low-selectivity) regime.
        assert result.compressed_speedup >= result.parquet_speedup * 0.95


def test_ablation_neighbour_impact(benchmark):
    """Section VI-D's closing point: "with Scoop both the datacenter
    network and Swift proxies have more resources to serve other jobs or
    services running in the system" -- measured by running a plain
    background ingest next to a foreground query executed both ways."""
    from repro.perfmodel.concurrent import neighbour_impact
    from repro.perfmodel.parameters import DATASETS

    medium = DATASETS["medium"].size_bytes
    results = run_once(benchmark, neighbour_impact, medium, medium, 0.99)
    render_table(
        "Ablation -- what a 500GB neighbour suffers (both on one cluster)",
        ["foreground strategy", "foreground (s)", "neighbour (s)"],
        [
            [r.foreground_mode, r.foreground_duration, r.background_duration]
            for r in results
        ],
    )
    by_mode = {r.foreground_mode: r for r in results}
    assert (
        by_mode["plain"].background_duration
        > by_mode["pushdown"].background_duration * 1.5
    )


def test_workday_queueing(benchmark, table1_rows):
    """The paper's business argument, operationalized: seven analyst
    queries arriving every 2 minutes on a shared 500GB cluster.  Plain
    ingest-then-compute queues up behind the saturated LB link; Scoop
    answers each before the next arrives."""
    from repro.experiments import workday_comparison

    plain, pushdown = run_once(
        benchmark, workday_comparison, 120.0, "medium", None, table1_rows
    )
    render_table(
        "GridPocket workday -- 7 queries, one every 120 s (500GB each)",
        ["strategy", "mean response (s)", "max response (s)", "makespan (s)"],
        [
            [
                result.mode,
                result.mean_response_time(),
                result.max_response_time(),
                result.makespan(),
            ]
            for result in (plain, pushdown)
        ],
    )
    assert pushdown.mean_response_time() < plain.mean_response_time() / 20
    assert pushdown.max_response_time() < 120
