"""Ablation benches over the design choices DESIGN.md calls out --
storlet staging tier, partition (chunk) size, adaptive pushdown,
filter+compression, neighbour impact -- plus the workday replay of the
paper's business argument.  All run through the ``repro.bench``
orchestrator, so the per-sweep expectations are recorded checks in the
captured result document.
"""

from benchmarks.conftest import run_bench


def test_ablations_design_choices(benchmark):
    """Sections V-A, VI-C, VI-D and VII, each isolated: where the
    storlet runs, how objects are partitioned, who keeps pushdown under
    CPU pressure, and what a co-tenant experiences."""
    document = run_bench(benchmark, "ablations")
    # Staging: at high selectivity the proxy tier's small CPU pool is
    # the bottleneck (the paper's reason for object-node execution).
    staging = document["results"]["staging"]
    advantages = [entry["advantage"] for entry in staging]
    assert advantages == sorted(advantages)
    assert advantages[-1] > 1.5
    # Chunk size: a sweet spot exists between the fixed-latency and
    # parallelism-starvation regimes.
    times = [entry["seconds"] for entry in document["results"]["chunk_size"]]
    assert times[0] > min(times) and times[-1] > min(times)
    # Neighbours: pushdown frees the shared cluster (Section VI-D).
    assert document["results"]["neighbour_ratio"] > 1.5


def test_workday_queueing(benchmark):
    """The paper's business argument, operationalized: seven analyst
    queries arriving on a schedule over a shared cluster.  Plain
    ingest-then-compute queues up behind the saturated LB link; Scoop
    answers each before the next arrives."""
    document = run_bench(benchmark, "workday")
    modes = document["results"]["modes"]
    assert modes["pushdown"]["mean_response_seconds"] < (
        modes["plain"]["mean_response_seconds"] / 20
    )
    assert modes["pushdown"]["max_response_seconds"] < 120
