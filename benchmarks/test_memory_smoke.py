"""Peak-memory smoke benchmark for the streaming data plane.

Verifies the O(chunk_size x pipeline depth) memory guarantee end to end
(docs/data_plane.md): draining a multi-megabyte object through a plain
GET, a pushdown GET and a two-storlet pipelined GET must never
materialize the object -- peak traced allocation stays a small multiple
of the transfer chunk size, independent of object size.

Self-contained (plain pytest + tracemalloc, no pytest-benchmark), so it
can run in CI as a hard regression gate:

    PYTHONPATH=src python -m pytest benchmarks/test_memory_smoke.py -q
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.pushdown import PushdownTask
from repro.core.scoop import ScoopContext
from repro.sql import GreaterThan, Schema
from repro.swift.http import DEFAULT_CHUNK_SIZE

SCHEMA = Schema.from_header("vid:string,index:int,city:string")

#: Object size well above the ceiling so a single materialization fails.
OBJECT_BYTES = 8 * 2**20

#: The guarantee under test: a generous multiple of the 64 KiB transfer
#: chunk covering every tier's bounded state (record buffers, coalesce
#: buffers and their per-object overhead, zlib windows, parse scratch),
#: yet 4x below the object size.  Measured peaks sit around 1.1-1.3 MiB
#: and, crucially, do not move when the object doubles.
PEAK_CEILING = min(32 * DEFAULT_CHUNK_SIZE, OBJECT_BYTES // 4)


@pytest.fixture(scope="module")
def scoop():
    # One split covers the whole object so each drain is a single
    # streaming GET of OBJECT_BYTES.
    context = ScoopContext(chunk_size=4 * OBJECT_BYTES)
    row = "vid-{0:07d},{0},Paris\n"
    rows = []
    size = 0
    index = 0
    while size < OBJECT_BYTES:
        line = row.format(index)
        rows.append(line)
        size += len(line)
        index += 1
    context.upload_csv("bench", "data.csv", "".join(rows))
    return context


def traced_peak(drain) -> int:
    tracemalloc.start()
    try:
        drain()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def consume(chunks) -> int:
    total = 0
    for chunk in chunks:
        total += len(chunk)
    return total


class TestStreamingPeakMemory:
    def test_plain_get_is_o_chunk_size(self, scoop):
        def drain():
            response = scoop.client.get_object_stream("bench", "data.csv")
            assert consume(response.iter_body()) >= OBJECT_BYTES

        assert traced_peak(drain) < PEAK_CEILING

    def test_pushdown_get_is_o_chunk_size(self, scoop):
        split = scoop.connector.discover_partitions("bench")[0]
        task = PushdownTask(
            schema=SCHEMA,
            columns=["vid"],
            filters=[GreaterThan("index", 10.0)],
        )

        def drain():
            _headers, chunks = scoop.connector.open_split_stream(split, task)
            assert consume(chunks) > 0

        assert traced_peak(drain) < PEAK_CEILING

    def test_two_storlet_pipeline_is_o_chunk_size(self, scoop):
        """csvstorlet,zlibcompress pipelined: compress-after-filter."""
        split = scoop.connector.discover_partitions("bench")[0]
        task = PushdownTask(
            schema=SCHEMA,
            columns=["vid"],
            filters=[GreaterThan("index", 10.0)],
            compress=True,
        )

        def drain():
            _headers, chunks = scoop.connector.open_split_stream(split, task)
            assert consume(chunks) > 0

        assert traced_peak(drain) < PEAK_CEILING
