"""Quote-aware split planning: boundaries never bisect a quoted field.

Covers the planner in isolation (grid identity for unquoted data,
sliding for quoted data, ``None`` for unterminated quotes), the
connector's record-aligned discovery (demotion counters and logging),
and the end-to-end invariant the planner exists for: a quoted CSV whose
records span chunk boundaries scans to exactly the same rows at any
chunk size, pushdown or plain.
"""

import logging

import pytest
from hypothesis import given, settings, strategies as st

from repro.connector.split_planner import plan_quote_safe_starts
from repro.core.scoop import ScoopContext
from repro.obs.metrics import MetricsRegistry
from repro.sql.types import Schema
from repro.storlets.csv_storlet import _parse_record


def _quoted_csv(rows):
    """Render rows with every field quoted (commas/newlines preserved)."""
    return "".join(
        ",".join('"' + field.replace('"', '""') + '"' for field in row)
        + "\r\n"
        for row in rows
    ).encode("utf-8")


class TestPlanner:
    def test_unquoted_data_keeps_the_exact_grid(self):
        data = b"a,b\n" * 100
        assert plan_quote_safe_starts(data, 64) == list(
            range(0, len(data), 64)
        )

    def test_boundary_inside_quoted_field_slides_to_record_start(self):
        rows = [(f"name{i}", "x,y\nz" * 10) for i in range(50)]
        data = _quoted_csv(rows)
        chunk = 97
        starts = plan_quote_safe_starts(data, chunk)
        assert starts is not None and starts[0] == 0
        assert starts == sorted(set(starts))
        # No planned start sits inside a quoted field: the quote parity
        # before each boundary is even (grid boundaries are only kept
        # when that already holds; slid ones land on record starts).
        for start in starts[1:]:
            assert data.count(b'"', 0, start) % 2 == 0
        # At least one grid point needed sliding for this data.
        grid = set(range(0, len(data), chunk))
        assert any(start not in grid for start in starts)

    def test_unterminated_quote_returns_none(self):
        data = b'a,b\nc,"never closed...\nmore\nmore'
        assert plan_quote_safe_starts(data, 8) is None

    def test_quote_closing_after_boundary_is_aligned(self):
        # One long quoted field spanning several grid points: all of
        # them collapse onto the single next record start.
        body = '"short","' + "x" * 300 + '"\n"a","b"\n'
        data = body.encode()
        starts = plan_quote_safe_starts(data, 64)
        assert starts is not None
        assert starts[0] == 0
        for start in starts[1:]:
            assert data[start - 1 : start] == b"\n"

    @settings(max_examples=80, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.sampled_from(list('ab,"\n\r')), max_size=8
                ),
                st.text(
                    alphabet=st.sampled_from(list("xy,\n")), max_size=8
                ),
            ),
            min_size=1,
            max_size=30,
        ),
        chunk=st.integers(4, 64),
    )
    def test_every_split_parses_cleanly(self, rows, chunk):
        """Property: scanning each planned split with the storlet's own
        record scanner recovers every record exactly once."""
        data = _quoted_csv(rows)
        starts = plan_quote_safe_starts(data, chunk)
        assert starts is not None  # _quoted_csv always closes its quotes
        from repro.storlets.api import StorletInputStream
        from repro.storlets.csv_storlet import _owned_lines

        bounds = starts + [len(data)]
        recovered = []
        for start, end in zip(bounds, bounds[1:]):
            # The real ranged GET streams from the split start to end of
            # object (the tail past range_len is the lookahead that
            # finishes a straddling record).
            stream = StorletInputStream([data[start:]])
            recovered.extend(_owned_lines(stream, start, end - start))
        parsed = [tuple(_parse_record(line, ",")) for line in recovered]
        assert parsed == [tuple(row) for row in rows]


class TestConnectorAlignment:
    def _rig(self, chunk_size=32):
        ctx = ScoopContext(chunk_size=chunk_size)
        connector = ctx.connector
        connector.metrics.registry = MetricsRegistry()
        return ctx, connector

    def test_aligned_discovery_splits_quoted_object(self):
        ctx, connector = self._rig()
        rows = [(f"id{i}", "multi\nline,value") for i in range(40)]
        ctx.client.put_container("c")
        ctx.client.put_object("c", "q.csv", _quoted_csv(rows))
        splits = connector.discover_partitions("c", record_aligned=True)
        assert len(splits) > 1
        assert connector.demoted_objects == []

    def test_unterminated_quote_demotes_with_counter(self, caplog):
        ctx, connector = self._rig()
        ctx.client.put_container("c")
        ctx.client.put_object(
            "c", "bad.csv", b'a,"never closed\n' + b"x" * 200
        )
        with caplog.at_level(logging.WARNING, logger="repro.connector"):
            splits = connector.discover_partitions("c", record_aligned=True)
        assert len(splits) == 1
        assert splits[0].start == 0
        assert connector.demoted_objects == [
            ("c", "bad.csv", "unterminated-quote")
        ]
        assert (
            connector.metrics.registry.counter_value(
                "connector.splits_demoted", reason="unterminated-quote"
            )
            == 1
        )
        assert "bad.csv" in caplog.text

    def test_small_objects_take_no_alignment_read(self):
        """Objects within one chunk never need the alignment GET."""
        ctx, connector = self._rig(chunk_size=1 << 20)
        ctx.client.put_container("c")
        ctx.client.put_object("c", "s.csv", _quoted_csv([("a", "b")]))
        splits = connector.discover_partitions("c", record_aligned=True)
        assert len(splits) == 1


class TestQuotedCsvEndToEnd:
    SCHEMA = Schema.of("name", "note", "code:int")

    def _rows(self):
        return [
            (f"n{i}", 'line one\nline "two", with comma', i)
            for i in range(60)
        ]

    def _csv(self):
        return "".join(
            f'"{name}","{note.replace(chr(34), chr(34) * 2)}",{code}\n'
            for name, note, code in self._rows()
        )

    @pytest.mark.parametrize("pushdown", [True, False])
    def test_rows_survive_any_chunking(self, pushdown):
        expected = None
        for chunk_size in (48, 111, 1 << 20):
            ctx = ScoopContext(chunk_size=chunk_size)
            ctx.upload_csv("c", "q.csv", self._csv())
            ctx.register_csv_table(
                "t", "c", schema=self.SCHEMA, pushdown=pushdown,
                format="csv",
            )
            rows = ctx.sql(
                "SELECT name, note, code FROM t ORDER BY code"
            ).collect()
            if expected is None:
                expected = rows
                assert len(rows) == 60
                assert rows[0][1] == 'line one\nline "two", with comma'
            else:
                assert rows == expected
