"""Tests for the GridPocket generator, queries and synthetic workload."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gridpocket import (
    DatasetSpec,
    GRIDPOCKET_QUERIES,
    METER_SCHEMA,
    MeterDataGenerator,
    columns_for_byte_fraction,
    measure_query_selectivity,
    synthetic_query,
)
from repro.gridpocket.queries import query_by_name
from repro.gridpocket.workload import column_byte_weights


class TestGenerator:
    SPEC = DatasetSpec(meters=10, intervals=20)

    def test_row_count(self):
        rows = list(MeterDataGenerator(self.SPEC).rows())
        assert len(rows) == 200

    def test_deterministic_given_seed(self):
        first = list(MeterDataGenerator(self.SPEC).rows())
        second = list(MeterDataGenerator(self.SPEC).rows())
        assert first == second

    def test_different_seed_differs(self):
        other_spec = DatasetSpec(meters=10, intervals=20, seed=99)
        first = list(MeterDataGenerator(self.SPEC).rows())
        second = list(MeterDataGenerator(other_spec).rows())
        assert first != second

    def test_rows_conform_to_schema(self):
        for row in MeterDataGenerator(self.SPEC).rows():
            assert len(row) == len(METER_SCHEMA)
            rendered = METER_SCHEMA.render_row(row)
            assert METER_SCHEMA.parse_row(rendered) == row

    def test_index_is_cumulative_per_meter(self):
        rows = list(MeterDataGenerator(self.SPEC).rows())
        per_meter = {}
        for row in rows:
            vid, index = row[0], row[2]
            if vid in per_meter:
                assert index > per_meter[vid]
            per_meter[vid] = index

    def test_hc_plus_hp_equals_index(self):
        for row in MeterDataGenerator(self.SPEC).rows():
            _vid, _date, index, hc, hp = row[:5]
            assert hc + hp == pytest.approx(index, abs=0.01)

    def test_timestamps_advance_by_interval(self):
        spec = DatasetSpec(meters=1, intervals=3, interval_minutes=10)
        dates = [row[1] for row in MeterDataGenerator(spec).rows()]
        assert dates == [
            "2015-01-01 00:00:00",
            "2015-01-01 00:10:00",
            "2015-01-01 00:20:00",
        ]

    def test_interval_minutes_respected(self):
        spec = DatasetSpec(meters=1, intervals=2, interval_minutes=1440)
        dates = [row[1] for row in MeterDataGenerator(spec).rows()]
        assert dates[1].startswith("2015-01-02")

    def test_code_column_roughly_uniform(self):
        spec = DatasetSpec(meters=50, intervals=100)
        codes = [row[5] for row in MeterDataGenerator(spec).rows()]
        assert all(0 <= code < 10000 for code in codes)
        below_half = sum(1 for code in codes if code < 5000)
        assert 0.45 < below_half / len(codes) < 0.55

    def test_meter_attributes_stable(self):
        rows = list(MeterDataGenerator(self.SPEC).rows())
        cities = {}
        for row in rows:
            vid, city = row[0], row[6]
            assert cities.setdefault(vid, city) == city

    def test_objects_partition_all_rows(self):
        spec = DatasetSpec(meters=10, intervals=20, objects=3)
        objects = list(MeterDataGenerator(spec).csv_objects())
        assert len(objects) == 3
        total_lines = sum(data.count(b"\n") for _name, data in objects)
        assert total_lines == spec.total_rows()

    def test_csv_lines_parse_back(self):
        generator = MeterDataGenerator(self.SPEC)
        for line, row in zip(generator.csv_lines(), generator.rows()):
            fields = line.decode().rstrip("\n").split(",")
            assert METER_SCHEMA.parse_row(fields) == row


class TestQueries:
    def test_seven_queries(self):
        assert len(GRIDPOCKET_QUERIES) == 7

    def test_query_by_name(self):
        assert query_by_name("showday").name == "Showday"
        with pytest.raises(KeyError):
            query_by_name("nope")

    def test_table_substitution(self):
        sql = query_by_name("ShowMapCons").sql("myTable")
        assert "FROM myTable" in sql
        assert "{table}" not in sql

    def test_paper_selectivities_recorded(self):
        for query in GRIDPOCKET_QUERIES:
            assert query.paper_data_selectivity > 99.0


class TestSyntheticWorkload:
    def test_synthetic_query_no_selection(self):
        assert synthetic_query(0.0) == "SELECT * FROM largeMeter"

    def test_synthetic_query_threshold(self):
        sql = synthetic_query(0.25)
        assert "code < 7500" in sql

    def test_invalid_selectivity_raises(self):
        with pytest.raises(ValueError):
            synthetic_query(1.5)

    def test_columns_rendered(self):
        sql = synthetic_query(0.5, columns=["vid", "city"])
        assert sql.startswith("SELECT vid, city FROM")

    @pytest.mark.parametrize("target", [0.1, 0.5, 0.95])
    def test_measured_row_selectivity_tracks_target(self, target):
        measurement = measure_query_selectivity(
            synthetic_query(target),
            spec=DatasetSpec(meters=40, intervals=80),
        )
        assert measurement.row_selectivity == pytest.approx(target, abs=0.05)

    def test_byte_weights_sum_to_one(self):
        weights = column_byte_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert set(weights) == set(METER_SCHEMA.names)

    def test_columns_for_byte_fraction_hits_target(self):
        weights = column_byte_weights()
        for target in (0.2, 0.5, 0.8):
            chosen = columns_for_byte_fraction(target, weights)
            kept = sum(weights[name] for name in chosen)
            assert kept == pytest.approx(target, abs=0.15)

    def test_columns_for_byte_fraction_schema_order(self):
        chosen = columns_for_byte_fraction(0.6)
        positions = [METER_SCHEMA.index_of(name) for name in chosen]
        assert positions == sorted(positions)

    def test_measurement_components_consistent(self):
        measurement = measure_query_selectivity(
            synthetic_query(0.5, columns=["vid", "code"]),
            spec=DatasetSpec(meters=20, intervals=40),
        )
        # data selectivity combines row and column effects:
        # kept = (1 - row_sel) * (1 - col_sel)
        expected = 1.0 - (1.0 - measurement.row_selectivity) * (
            1.0 - measurement.column_selectivity
        )
        assert measurement.data_selectivity == pytest.approx(
            expected, abs=0.01
        )

    @settings(max_examples=20, deadline=None)
    @given(target=st.floats(min_value=0.0, max_value=0.99))
    def test_row_selectivity_property(self, target):
        measurement = measure_query_selectivity(
            synthetic_query(target),
            spec=DatasetSpec(meters=30, intervals=50),
        )
        assert abs(measurement.row_selectivity - target) < 0.1
