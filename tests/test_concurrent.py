"""Tests for the concurrent multi-tenant simulation (Section VI-D)."""

import pytest

from repro.perfmodel import DATASETS, SelectivityProfile
from repro.perfmodel.concurrent import (
    ConcurrentIngestSimulation,
    JobSpec,
    neighbour_impact,
)


@pytest.fixture(scope="module")
def sim():
    return ConcurrentIngestSimulation()


MEDIUM = DATASETS["medium"].size_bytes


class TestBasics:
    def test_empty_specs_raise(self, sim):
        with pytest.raises(ValueError):
            sim.run_concurrent([])

    def test_unknown_mode_raises(self, sim):
        with pytest.raises(ValueError):
            sim.run_concurrent([JobSpec("x", "warp", 1e9)])

    def test_single_job_matches_solo_run(self, sim):
        solo = sim.run("plain", MEDIUM).duration
        concurrent = sim.run_concurrent(
            [JobSpec("only", "plain", MEDIUM)]
        )
        assert concurrent.job("only").duration == pytest.approx(
            solo, rel=0.05
        )

    def test_job_lookup(self, sim):
        outcome = sim.run_concurrent([JobSpec("a", "plain", 10e9)])
        assert outcome.job("a").mode == "plain"
        with pytest.raises(KeyError):
            outcome.job("ghost")

    def test_staggered_start_respected(self, sim):
        outcome = sim.run_concurrent(
            [
                JobSpec("early", "plain", 10e9),
                JobSpec("late", "plain", 10e9, start_time=100.0),
            ]
        )
        late = outcome.job("late")
        assert late.start_time == 100.0
        assert late.finish_time > 100.0


class TestContention:
    def test_two_plain_jobs_halve_the_link(self, sim):
        solo = sim.run("plain", MEDIUM).duration
        outcome = sim.run_concurrent(
            [
                JobSpec("a", "plain", MEDIUM),
                JobSpec("b", "plain", MEDIUM),
            ]
        )
        # Both saturate the LB together: each takes about twice as long.
        assert outcome.job("a").duration == pytest.approx(
            2 * solo, rel=0.1
        )

    def test_pushdown_neighbour_barely_hurts(self, sim):
        """Section VI-D: with Scoop the network has 'more resources to
        serve other jobs'."""
        solo = sim.run("plain", MEDIUM).duration
        outcome = sim.run_concurrent(
            [
                JobSpec(
                    "scoop",
                    "pushdown",
                    MEDIUM,
                    SelectivityProfile.mixed(0.99),
                ),
                JobSpec("victim", "plain", MEDIUM),
            ]
        )
        victim = outcome.job("victim").duration
        assert victim < solo * 1.15  # barely slower than running alone
        assert outcome.job("scoop").duration < victim / 5

    def test_neighbour_impact_helper(self):
        results = neighbour_impact(MEDIUM, MEDIUM, 0.99)
        by_mode = {r.foreground_mode: r for r in results}
        # A plain foreground roughly doubles the victim's time...
        assert (
            by_mode["plain"].background_duration
            > by_mode["pushdown"].background_duration * 1.6
        )
        # ...while the pushdown foreground is also far faster itself.
        assert (
            by_mode["pushdown"].foreground_duration
            < by_mode["plain"].foreground_duration / 5
        )

    def test_many_pushdown_tenants_scale(self, sim):
        """Five concurrent 95%-selectivity tenants finish faster than a
        single plain tenant of the same size."""
        solo_plain = sim.run("plain", 100e9).duration
        outcome = sim.run_concurrent(
            [
                JobSpec(
                    f"t{i}",
                    "pushdown",
                    100e9,
                    SelectivityProfile.mixed(0.95),
                )
                for i in range(5)
            ]
        )
        assert outcome.makespan() < solo_plain

    def test_lb_utilization_sampled(self, sim):
        outcome = sim.run_concurrent(
            [JobSpec("a", "plain", 50e9)]
        )
        assert outcome.lb_utilization.peak() > 0.5
