"""Tests for nodes, the testbed topology and the metrics collector."""

import pytest

from repro.cluster import (
    FlowNetwork,
    MetricsCollector,
    Node,
    NodeSpec,
    OSIC_SPEC,
    ResourceSeries,
    Testbed,
    TestbedSpec,
)
from repro.simulation import Environment


class TestNode:
    def make_node(self, env):
        network = FlowNetwork(env)
        return Node(network, "n0", NodeSpec(cores=4, disk_count=2))

    def test_resources_registered(self, env):
        node = self.make_node(env)
        assert node.cpu.capacity == 4
        assert len(node.disks) == 2
        assert node.network.resource("n0.cpu") is node.cpu

    def test_disk_wraps_around(self, env):
        node = self.make_node(env)
        assert node.disk(0) is node.disk(2)

    def test_memory_allocation_and_free(self, env):
        node = self.make_node(env)
        node.allocate_memory(1024)
        assert node.memory_used == 1024
        node.free_memory(500)
        assert node.memory_used == 524

    def test_memory_over_allocation_raises(self, env):
        node = self.make_node(env)
        with pytest.raises(MemoryError):
            node.allocate_memory(node.spec.memory_bytes + 1)

    def test_negative_allocation_raises(self, env):
        node = self.make_node(env)
        with pytest.raises(ValueError):
            node.allocate_memory(-1)

    def test_baseline_memory_floor(self, env):
        node = self.make_node(env)
        node.set_baseline_memory(2048)
        node.free_memory(10_000)
        assert node.memory_used == 2048

    def test_memory_fraction(self, env):
        node = self.make_node(env)
        node.allocate_memory(node.spec.memory_bytes / 2)
        assert node.memory_fraction == pytest.approx(0.5)

    def test_cpu_utilization_tracks_flows(self, env):
        network = FlowNetwork(env)
        node = Node(network, "n0", NodeSpec(cores=2))
        network.start_flow(1000, {node.cpu: 1.0})
        assert node.cpu_utilization() == pytest.approx(1.0)


class TestTestbed:
    def test_osic_defaults_match_paper(self):
        assert OSIC_SPEC.proxy_count == 6
        assert OSIC_SPEC.storage_count == 29
        assert OSIC_SPEC.worker_count == 25
        assert OSIC_SPEC.lb_bandwidth == pytest.approx(10e9 / 8)
        assert OSIC_SPEC.node_spec.cores == 24

    def test_testbed_instantiates_all_nodes(self, env):
        testbed = Testbed(env, TestbedSpec(2, 3, 4))
        assert len(testbed.proxies) == 2
        assert len(testbed.storage_nodes) == 3
        assert len(testbed.workers) == 4
        assert len(testbed.all_nodes()) == 9

    def test_placement_helpers_wrap(self, env):
        testbed = Testbed(env, TestbedSpec(2, 3, 4))
        assert testbed.proxy_for(0) is testbed.proxy_for(2)
        assert testbed.storage_for(1) is testbed.storage_for(4)
        assert testbed.worker_for(3) is testbed.worker_for(7)

    def test_scaled_spec(self):
        half = OSIC_SPEC.scaled(0.5)
        assert half.storage_count == 14 or half.storage_count == 15
        assert half.lb_bandwidth == pytest.approx(OSIC_SPEC.lb_bandwidth / 2)
        tiny = OSIC_SPEC.scaled(0.01)
        assert tiny.proxy_count >= 1


class TestResourceSeries:
    def test_statistics(self):
        series = ResourceSeries("x")
        for time, value in [(0, 1.0), (1, 3.0), (2, 5.0)]:
            series.record(time, value)
        assert series.mean() == pytest.approx(3.0)
        assert series.peak() == 5.0
        assert series.mean_over(1, 2) == pytest.approx(4.0)
        assert len(series) == 3

    def test_integral_trapezoidal(self):
        series = ResourceSeries("x")
        series.record(0, 0.0)
        series.record(2, 2.0)
        assert series.integral() == pytest.approx(2.0)

    def test_empty_series(self):
        series = ResourceSeries("x")
        assert series.mean() == 0.0
        assert series.peak() == 0.0
        assert series.integral() == 0.0


class TestMetricsCollector:
    def test_sampling_during_flows(self, env):
        network = FlowNetwork(env)
        node = Node(network, "n0", NodeSpec(cores=2, nic_bandwidth=100))
        collector = MetricsCollector(env, interval=1.0)
        collector.watch_nodes("workers", [node])
        collector.watch_resource("nic", node.nic_out)
        collector.start()

        def job():
            flow = network.start_flow(
                500, {node.nic_out: 1.0, node.cpu: 0.01}
            )
            yield flow.done

        env.process(job())
        env.run(until=10)
        collector.stop()
        nic_series = collector.get("nic.throughput")
        assert nic_series.peak() == pytest.approx(100.0)
        cpu_series = collector.get("workers.cpu")
        assert cpu_series.peak() > 0

    def test_invalid_interval_raises(self, env):
        with pytest.raises(ValueError):
            MetricsCollector(env, interval=0)

    def test_double_start_raises(self, env):
        collector = MetricsCollector(env)
        collector.start()
        with pytest.raises(RuntimeError):
            collector.start()

    def test_summary_shape(self, env):
        network = FlowNetwork(env)
        node = Node(network, "n0", NodeSpec())
        collector = MetricsCollector(env)
        collector.watch_nodes("g", [node])
        collector.sample_once()
        summary = collector.summary()
        assert "g.cpu" in summary
        mean, peak = summary["g.cpu"]
        assert mean == 0.0 and peak == 0.0

    def test_memory_sampled(self, env):
        network = FlowNetwork(env)
        node = Node(network, "n0", NodeSpec(memory_bytes=1000))
        node.allocate_memory(250)
        collector = MetricsCollector(env)
        collector.watch_nodes("g", [node])
        collector.sample_once()
        assert collector.get("g.memory").peak() == pytest.approx(0.25)
