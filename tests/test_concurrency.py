"""Concurrency: parallel execution must be byte-identical to serial.

The scheduler contract (see docs/concurrency.md) is that ``parallelism``
changes *wall-clock overlap only*: row order, transfer metrics for
full-drain queries, shuffle contents, error choice and fault-injection
decisions are all identical at any pool size.  These tests pin that
contract directly -- including under the named chaos plans, where the
per-request fault seeds are what keep injected failures deterministic
while tasks race.
"""

from __future__ import annotations

import threading

import pytest

from repro.connector.stocator import TransferMetrics
from repro.core import ScoopContext
from repro.faults import named_plan
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.spark.scheduler import SparkContext

# 16 objects -> a 16-partition scan, the shape the acceptance criteria
# names (small payloads keep the matrix of stacks fast to build).
SPEC_16 = DatasetSpec(meters=24, intervals=32, objects=16)
SCAN_SQL = "SELECT vid, date, index FROM m WHERE city LIKE 'Paris'"
CHAOS_SEED = 20170417


def build_stack(parallelism: int, plan_name: str = None) -> ScoopContext:
    plan = (
        named_plan(plan_name, seed=CHAOS_SEED) if plan_name else None
    )
    ctx = ScoopContext(
        chunk_size=32 * 1024, parallelism=parallelism, fault_plan=plan
    )
    upload_dataset(ctx.client, "meters", SPEC_16)
    ctx.register_csv_table("m", "meters", schema=METER_SCHEMA)
    return ctx


class TestSchedulerParallelism:
    def test_run_job_results_stay_in_partition_order(self):
        serial = SparkContext(parallelism=1)
        parallel = SparkContext(parallelism=8)
        data = list(range(200))
        expected = serial.run_job(serial.parallelize(data, 16), list)
        got = parallel.run_job(parallel.parallelize(data, 16), list)
        assert got == expected
        assert [row for part in got for row in part] == data

    def test_tasks_really_run_concurrently(self):
        # All 8 tasks must be in flight at once to pass the barrier; a
        # secretly serial scheduler breaks it and the job raises.  The
        # barrier rendezvous needs real threads, so the threaded mode
        # is pinned (under REPRO_ASYNC the default would be coroutines,
        # which interleave at await points instead of rendezvousing).
        sc = SparkContext(parallelism=8, max_task_attempts=1,
                          execution_mode="threads")
        barrier = threading.Barrier(8)

        def rendezvous(iterator):
            barrier.wait(timeout=10.0)
            return list(iterator)

        results = sc.run_job(sc.parallelize(list(range(8)), 8), rendezvous)
        assert len(results) == 8

    def test_failure_raises_lowest_partition_error(self):
        # Partition 9 may *finish failing* first on the wall clock, but
        # the error surfaced must be partition 4's -- the same one a
        # serial run would hit.
        sc = SparkContext(parallelism=8, max_task_attempts=1)
        rdd = sc.parallelize(list(range(16)), 16)

        def explode(iterator):
            value = next(iterator)
            if value >= 4:
                raise ValueError(f"partition {value}")
            return value

        with pytest.raises(ValueError, match="partition 4"):
            sc.run_job(rdd, explode)

    def test_shuffle_contents_identical_at_any_parallelism(self):
        data = [(i % 7, i) for i in range(300)]

        def run(parallelism):
            sc = SparkContext(parallelism=parallelism)
            return (
                sc.parallelize(data, 16)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )

        assert run(8) == run(1)

    def test_iter_batches_merges_in_partition_order(self):
        data = list(range(500))
        sc = SparkContext(parallelism=8)
        rows = []
        for batch in sc.iter_batches(sc.parallelize(data, 16), batch_rows=7):
            rows.extend(batch.rows)
        assert rows == data

    def test_early_exit_cancels_inflight_producers(self):
        # A consumer abandoning the stream (satisfied LIMIT) must not
        # hang on producers blocked against their bounded queues.
        sc = SparkContext(parallelism=8)
        before = threading.active_count()
        stream = sc.iter_batches(
            sc.parallelize(list(range(2000)), 16), batch_rows=5
        )
        first = next(stream)
        stream.close()
        assert list(first.rows) == list(range(5))
        # close() joins the pool, so no stage threads may survive it.
        assert threading.active_count() == before

    def test_task_log_records_every_partition(self):
        sc = SparkContext(parallelism=8)
        sc.run_job(sc.parallelize(list(range(64)), 16), list)
        by_partition = sorted(
            metrics.partition
            for metrics in sc.task_log
            if metrics.status == "success"
        )
        assert by_partition == list(range(16))


class TestSharedTierThreadSafety:
    def test_transfer_metrics_survive_a_hammering(self):
        metrics = TransferMetrics()

        def work():
            for _ in range(1000):
                metrics.record_request(7, pushdown=True)
                metrics.record_bytes(3)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.totals() == (8000, 24000, 56000, 8000, 0)

    def test_cluster_counters_survive_a_hammering(self):
        cluster = build_stack(1).cluster

        def work():
            for _ in range(1000):
                cluster.bump_counter("get_failovers")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cluster.counters["get_failovers"] == 8000


class TestScanEquivalence:
    """The acceptance bar: a 16-partition pushdown scan at parallelism 8
    returns byte-identical rows and identical transfer metrics to the
    serial run -- with and without each named fault plan injecting."""

    @pytest.mark.parametrize(
        "plan_name", [None, "flaky-object", "storlet-crash", "device-loss"]
    )
    def test_parallel_scan_matches_serial(self, plan_name):
        serial = build_stack(1, plan_name)
        serial_rows = serial.sql(SCAN_SQL).collect()
        serial_totals = serial.connector.metrics.totals()

        parallel = build_stack(8, plan_name)
        parallel_rows = parallel.sql(SCAN_SQL).collect()
        parallel_totals = parallel.connector.metrics.totals()

        assert serial_rows  # the comparison must not be vacuous
        assert parallel_rows == serial_rows
        assert parallel_totals == serial_totals
        if plan_name is not None:
            assert serial.fault_plan.fired() > 0
            assert (
                parallel.fault_plan.fingerprint()
                == serial.fault_plan.fingerprint()
            )

    @pytest.mark.parametrize("plan_name", ["flaky-object", "storlet-crash"])
    def test_resilience_summary_matches_serial(self, plan_name):
        # Retries, failovers and fallbacks are part of the determinism
        # contract for these plans (device-loss is excluded: *which*
        # requests precede the loss threshold is interleaving-dependent,
        # even though the lost device and the result rows are not).
        serial = build_stack(1, plan_name)
        serial.sql(SCAN_SQL).collect()
        parallel = build_stack(8, plan_name)
        parallel.sql(SCAN_SQL).collect()
        assert (
            parallel.resilience_summary() == serial.resilience_summary()
        )
        assert parallel.resilience_summary()["client_exhausted"] == 0

    def test_limit_query_rows_match_serial(self):
        # LIMIT drains partitions only until satisfied, so transfer
        # metrics legitimately differ -- but the rows may not.
        serial = build_stack(1)
        parallel = build_stack(8)
        sql = "SELECT vid, city FROM m LIMIT 23"
        assert parallel.sql(sql).collect() == serial.sql(sql).collect()

    def test_concurrency_summary_reports_pool_size(self):
        parallel = build_stack(8)
        parallel.sql(SCAN_SQL).collect()
        summary = parallel.concurrency_summary()
        assert summary["parallelism"] == 8
        assert summary["proxy_peak_inflight"] >= 1
