"""Tests for the binary-object metadata path (Section VII)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.spark.binary_source import BinaryMetadataRelation
from repro.sql import Schema
from repro.storlets import (
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.storlets.metadata_storlet import (
    MetadataExtractorStorlet,
    decode_tags,
    encode_image,
)

TAGS = {"camera": "NikonD500", "iso": "400", "width": "4000", "height": "3000"}


class TestImageFormat:
    def test_round_trip(self):
        data = encode_image(TAGS, payload=b"\xff" * 1000)
        tags, offset = decode_tags(data)
        assert tags == TAGS
        assert data[offset:] == b"\xff" * 1000

    def test_payload_size_constructor(self):
        data = encode_image({"a": "1"}, payload_size=5000)
        _tags, offset = decode_tags(data)
        assert len(data) - offset == 5000

    def test_empty_tags(self):
        tags, _offset = decode_tags(encode_image({}))
        assert tags == {}

    def test_bad_magic_raises(self):
        with pytest.raises(StorletException):
            decode_tags(b"JPEG" + b"\x00" * 10)

    def test_truncated_raises(self):
        data = encode_image(TAGS)
        with pytest.raises(StorletException):
            decode_tags(data[:8])

    def test_oversized_key_rejected(self):
        with pytest.raises(ValueError):
            encode_image({"k" * 300: "v"})

    @settings(max_examples=40, deadline=None)
    @given(
        tags=st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=10,
            ),
            st.text(max_size=30),
            max_size=10,
        ),
        payload=st.binary(max_size=500),
    )
    def test_round_trip_property(self, tags, payload):
        data = encode_image(tags, payload)
        decoded, offset = decode_tags(data)
        assert decoded == tags
        assert data[offset:] == payload


class TestExtractorStorlet:
    def run(self, data, parameters):
        out = StorletOutputStream()
        MetadataExtractorStorlet().invoke(
            [StorletInputStream([data])],
            [out],
            parameters,
            StorletLogger("t"),
        )
        return out.getvalue()

    def test_extracts_requested_tags(self):
        data = encode_image(TAGS, payload_size=10_000)
        result = self.run(data, {"tags": json.dumps(["camera", "iso"])})
        assert result == b"NikonD500,400\n"

    def test_missing_tags_empty(self):
        data = encode_image({"camera": "X"})
        result = self.run(data, {"tags": json.dumps(["camera", "gps"])})
        assert result == b"X,\n"

    def test_include_size(self):
        data = encode_image(TAGS, payload_size=12345)
        result = self.run(
            data,
            {"tags": json.dumps(["camera"]), "include_size": "true"},
        )
        assert result == b"NikonD500,12345\n"

    def test_requires_tags_parameter(self):
        with pytest.raises(StorletException):
            self.run(encode_image(TAGS), {})

    def test_output_is_tiny_compared_to_object(self):
        data = encode_image(TAGS, payload_size=500_000)
        result = self.run(data, {"tags": json.dumps(["camera"])})
        assert len(result) < 40
        assert len(data) > 500_000


@pytest.fixture
def photo_rig(fresh_scoop):
    from repro.storlets.metadata_storlet import MetadataExtractorStorlet

    fresh_scoop.engine.deploy(MetadataExtractorStorlet(), fresh_scoop.client)
    fresh_scoop.client.put_container("photos")
    cameras = ["NikonD500", "CanonR5", "NikonD500", "SonyA7"]
    for index, camera in enumerate(cameras):
        fresh_scoop.client.put_object(
            "photos",
            f"img-{index:03d}.img",
            encode_image(
                {
                    "camera": camera,
                    "iso": str(100 * (index + 1)),
                    "width": "4000",
                    "height": "3000",
                },
                payload_size=50_000 + index * 1000,
            ),
        )
    return fresh_scoop


class TestBinaryMetadataRelation:
    TAG_SCHEMA = Schema.of("camera", "iso:int", "width:int", "height:int")

    def register(self, rig):
        relation = BinaryMetadataRelation(
            rig.spark_context,
            rig.connector,
            "photos",
            self.TAG_SCHEMA,
        )
        rig.session.register_table("photos", relation)
        return relation

    def test_sql_over_binary_metadata(self, photo_rig):
        self.register(photo_rig)
        rows = photo_rig.session.sql(
            "SELECT object_name, iso FROM photos "
            "WHERE camera = 'NikonD500' ORDER BY object_name"
        ).collect()
        assert rows == [("img-000.img", 100), ("img-002.img", 300)]

    def test_aggregation_over_metadata(self, photo_rig):
        self.register(photo_rig)
        rows = photo_rig.session.sql(
            "SELECT camera, count(*) AS shots FROM photos "
            "GROUP BY camera ORDER BY camera"
        ).collect()
        assert rows == [("CanonR5", 1), ("NikonD500", 2), ("SonyA7", 1)]

    def test_payload_size_column(self, photo_rig):
        self.register(photo_rig)
        rows = photo_rig.session.sql(
            "SELECT payload_bytes FROM photos ORDER BY payload_bytes"
        ).collect()
        assert [size for (size,) in rows] == [50_000, 51_000, 52_000, 53_000]

    def test_payload_never_crosses_the_wire(self, photo_rig):
        self.register(photo_rig)
        photo_rig.connector.metrics.reset()
        photo_rig.session.sql("SELECT camera FROM photos").collect()
        metrics = photo_rig.connector.metrics
        dataset_bytes = photo_rig.connector.dataset_size("photos")
        assert metrics.bytes_transferred < dataset_bytes / 100
        assert metrics.pushdown_requests == len(
            photo_rig.client.list_objects("photos")
        )
