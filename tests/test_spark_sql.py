"""Tests for the SparkSession planner, DataFrames and data sources."""

import pytest

from repro.connector import StocatorConnector
from repro.spark import SparkContext, SparkSession
from repro.spark.csv_source import CsvRelation, infer_csv_schema
from repro.spark.datasources import (
    BaseRelation,
    TableScan,
    lookup_provider,
    register_provider,
    registered_formats,
)
from repro.sql import Schema
from repro.sql.errors import SqlAnalysisError
from repro.sql.types import DataType
from repro.swift import SwiftClient, SwiftCluster


@pytest.fixture
def rig():
    cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
    client = SwiftClient(cluster, "AUTH_sql")
    connector = StocatorConnector(client, chunk_size=64 * 1024)
    client.put_container("data")
    client.put_object(
        "data",
        "t.csv",
        b"m1,2015-01-01,10.5,Rotterdam\n"
        b"m2,2015-01-02,3.0,Paris\n"
        b"m3,2015-02-01,7.5,Rotterdam\n",
    )
    session = SparkSession(SparkContext("t", 2))
    schema = Schema.of("vid", "date", "index:float", "city")
    relation = CsvRelation(
        session.context, connector, "data", schema=schema, pushdown=False
    )
    session.register_table("t", relation)
    return session, connector, schema


class TestSessionSql:
    def test_simple_query(self, rig):
        session, _connector, _schema = rig
        rows = session.sql("SELECT vid FROM t ORDER BY vid").collect()
        assert rows == [("m1",), ("m2",), ("m3",)]

    def test_aggregation_query(self, rig):
        session, _connector, _schema = rig
        rows = session.sql(
            "SELECT city, sum(index) FROM t GROUP BY city ORDER BY city"
        ).collect()
        assert rows == [("Paris", 3.0), ("Rotterdam", 18.0)]

    def test_unknown_table_raises(self, rig):
        session, _connector, _schema = rig
        with pytest.raises(SqlAnalysisError):
            session.sql("SELECT a FROM ghost").collect()

    def test_last_pushdown_spec_recorded(self, rig):
        session, _connector, _schema = rig
        session.sql("SELECT vid FROM t WHERE city = 'Paris'").collect()
        spec = session.last_pushdown
        assert spec is not None
        assert spec.required_columns == ["vid", "city"]
        assert len(spec.filters) == 1

    def test_table_method_validates(self, rig):
        session, _connector, _schema = rig
        assert session.table("t").count() == 3
        with pytest.raises(SqlAnalysisError):
            session.table("ghost")


class TestDataFrame:
    def test_fluent_select_where(self, rig):
        session, _connector, _schema = rig
        frame = (
            session.table("t")
            .select("vid", "index")
            .where("index > 5")
            .order_by("index desc")
        )
        assert frame.collect() == [("m1", 10.5), ("m3", 7.5)]

    def test_where_merges_conjunctively(self, rig):
        session, _connector, _schema = rig
        frame = (
            session.table("t")
            .where("city = 'Rotterdam'")
            .where("index > 8")
            .select("vid")
        )
        assert frame.collect() == [("m1",)]

    def test_limit(self, rig):
        session, _connector, _schema = rig
        assert session.table("t").limit(2).count() == 2

    def test_to_dicts(self, rig):
        session, _connector, _schema = rig
        dicts = session.table("t").select("vid", "city").limit(1).to_dicts()
        assert dicts == [{"vid": "m1", "city": "Rotterdam"}]

    def test_show_renders_table(self, rig):
        session, _connector, _schema = rig
        rendered = session.table("t").select("vid").show()
        assert "vid" in rendered and "m1" in rendered

    def test_show_truncates(self, rig):
        session, _connector, _schema = rig
        rendered = session.table("t").show(limit=1)
        assert "showing 1 of 3 rows" in rendered

    def test_iteration_and_len(self, rig):
        session, _connector, _schema = rig
        frame = session.table("t").select("vid")
        assert len(frame) == 3
        assert list(frame) == [("m1",), ("m2",), ("m3",)]

    def test_explain_mentions_pushdown(self, rig):
        session, _connector, _schema = rig
        text = session.sql(
            "SELECT vid FROM t WHERE city = 'Paris'"
        ).explain()
        assert "Pushdown" in text
        assert "city" in text

    def test_result_cached_per_frame(self, rig):
        session, connector, _schema = rig
        frame = session.table("t").select("vid")
        frame.collect()
        requests_after_first = connector.metrics.requests
        frame.collect()
        assert connector.metrics.requests == requests_after_first


class TestProviders:
    def test_builtin_formats_registered(self):
        assert "csv" in registered_formats()
        assert "parquet" in registered_formats()

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            lookup_provider("avro")

    def test_reader_loads_csv(self, rig):
        _session, connector, schema = rig
        session = SparkSession(SparkContext("t2", 2))
        frame = (
            session.read.format("csv")
            .option("connector", connector)
            .option("schema", schema)
            .load("/data")
        )
        assert frame.count() == 3

    def test_reader_requires_connector(self):
        session = SparkSession(SparkContext("t3", 2))
        with pytest.raises(SqlAnalysisError):
            session.read.format("csv").load("/data")

    def test_custom_provider(self):
        class OneRowRelation(TableScan):
            def __init__(self, context):
                self.context = context

            def schema(self):
                return Schema.of("x:int")

            def build_scan(self):
                return self.context.parallelize([(42,)], 1)

        register_provider(
            "onerow", lambda session, path, options: OneRowRelation(
                session.context
            )
        )
        session = SparkSession(SparkContext("t4", 1))
        frame = session.read.format("onerow").load("/whatever")
        assert frame.collect() == [(42,)]


class TestSchemaInference:
    def test_infers_names_from_header(self, rig):
        _session, connector, _schema = rig
        connector.client.put_container("inferred")
        connector.client.put_object(
            "inferred",
            "h.csv",
            b"id,score,label\n1,2.5,yes\n2,3.5,no\n",
        )
        schema = infer_csv_schema(connector, "inferred", has_header=True)
        assert schema.names == ["id", "score", "label"]
        assert schema.field("id").dtype is DataType.INT
        assert schema.field("score").dtype is DataType.FLOAT
        assert schema.field("label").dtype is DataType.STRING

    def test_generates_names_without_header(self, rig):
        _session, connector, _schema = rig
        schema = infer_csv_schema(connector, "data")
        assert schema.names == ["_c0", "_c1", "_c2", "_c3"]
        assert schema.field("_c2").dtype is DataType.FLOAT

    def test_empty_container_raises(self, rig):
        _session, connector, _schema = rig
        connector.client.put_container("void")
        with pytest.raises(ValueError):
            infer_csv_schema(connector, "void")


class TestFluentGroupBy:
    def test_group_by_agg(self, rig):
        session, _connector, _schema = rig
        frame = (
            session.table("t")
            .group_by("city")
            .agg("sum(index) AS total", "count(*) AS n")
            .order_by("city")
        )
        assert frame.schema.names == ["city", "total", "n"]
        assert frame.collect() == [("Paris", 3.0, 1), ("Rotterdam", 18.0, 2)]

    def test_group_by_expression_key(self, rig):
        session, _connector, _schema = rig
        frame = (
            session.table("t")
            .group_by("SUBSTRING(date, 0, 7)")
            .agg("count(*) AS n")
        )
        assert sorted(frame.collect()) == [("2015-01", 2), ("2015-02", 1)]

    def test_group_by_respects_where(self, rig):
        session, _connector, _schema = rig
        frame = (
            session.table("t")
            .where("city = 'Rotterdam'")
            .group_by("city")
            .agg("max(index) AS peak")
        )
        assert frame.collect() == [("Rotterdam", 10.5)]

    def test_agg_requires_single_item_per_string(self, rig):
        session, _connector, _schema = rig
        with pytest.raises(ValueError):
            session.table("t").group_by("city").agg("sum(index), count(*)")
