"""Kernel compiler tests: batch execution must equal row execution.

The compile-once kernels (:mod:`repro.sql.kernels`) and the batch plan
compiler (:func:`repro.sql.executor.execute_plan_batches`) form the
columnar fast path.  Its contract is *byte identity* with the row
interpreter: for any query the fast path either returns exactly the
rows the row path returns, or declines to compile (``None``) and the
caller falls back.  Hypothesis checks that contract against the same
query/row generators the SQL fuzz suite uses.
"""

from hypothesis import given, settings, strategies as st

from repro.columnar.batch import ColumnBatch
from repro.sql.catalyst import Optimizer, build_logical_plan
from repro.sql.errors import SqlError
from repro.sql.executor import (
    execute_plan,
    execute_plan_batches,
    execute_query,
)
from repro.sql.filters import filters_from_json, filters_to_json
from repro.sql.kernels import compile_filters, compile_predicate
from repro.sql.parser import parse_query

from tests.test_sql_fuzz import (
    SCHEMA,
    predicate,
    queries,
    rows_strategy,
)


def _batches(rows, batch_rows):
    """Chunk rows into ColumnBatches of at most ``batch_rows`` rows."""
    return [
        ColumnBatch.from_rows(SCHEMA, tuple(rows[i : i + batch_rows]))
        for i in range(0, len(rows), batch_rows)
    ]


class TestPlanEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        sql=queries(),
        rows=rows_strategy,
        batch_rows=st.sampled_from([1, 3, 7, 1024]),
    )
    def test_batch_plan_matches_row_plan(self, sql, rows, batch_rows):
        plan = Optimizer().optimize(
            build_logical_plan(parse_query(sql), SCHEMA)
        )
        try:
            expected = execute_plan(plan, lambda: iter(rows), SCHEMA)
        except SqlError:
            # The row path raised a defined engine error; the batch
            # compiler must have declined such a plan (kernels are only
            # emitted for provably total expressions).
            batches = _batches(rows, batch_rows)
            try:
                result = execute_plan_batches(
                    plan, lambda: iter(batches), SCHEMA
                )
            except SqlError:
                return
            assert result is None
            return
        batches = _batches(rows, batch_rows)
        result = execute_plan_batches(plan, lambda: iter(batches), SCHEMA)
        if result is None:
            return  # declined to compile: the row fallback covers it
        assert result[0].names == expected[0].names
        assert result[1] == expected[1]

    @settings(max_examples=100, deadline=None)
    @given(sql=queries(), rows=rows_strategy)
    def test_batch_path_agrees_with_execute_query(self, sql, rows):
        try:
            schema, expected = execute_query(sql, SCHEMA, rows)
        except SqlError:
            return
        plan = Optimizer().optimize(
            build_logical_plan(parse_query(sql), SCHEMA)
        )
        result = execute_plan_batches(
            plan, lambda: iter(_batches(rows, 8)), SCHEMA
        )
        if result is not None:
            assert result[1] == expected


class TestPredicateKernels:
    @settings(max_examples=150, deadline=None)
    @given(where=predicate, rows=rows_strategy)
    def test_selection_matches_row_filter(self, where, rows):
        """A compiled WHERE kernel picks exactly the rows the row-path
        filter keeps (when the row path itself does not raise)."""
        sql = f"SELECT vid FROM t WHERE {where}"
        try:
            _schema, expected = execute_query(sql, SCHEMA, rows)
        except SqlError:
            return
        query = parse_query(sql)
        selection = compile_predicate(query.where, SCHEMA)
        if selection is None:
            return
        batch = ColumnBatch.from_rows(SCHEMA, tuple(rows))
        picked = selection(batch.columns, len(batch))
        vid_index = SCHEMA.index_of("vid")
        assert [(rows[i][vid_index],) for i in picked] == expected

    @settings(max_examples=100, deadline=None)
    @given(rows=rows_strategy, value=st.integers(-100, 9999))
    def test_filter_kernels_match_pushdown_semantics(self, rows, value):
        """compile_filters mirrors the storlet-side Filter conjunction
        (NULL never matches), round-tripped through the wire format."""
        from repro.sql.filters import GreaterThan

        filters = filters_from_json(
            filters_to_json([GreaterThan("code", value)])
        )
        kernel = compile_filters(filters, SCHEMA)
        batch = ColumnBatch.from_rows(SCHEMA, tuple(rows))
        picked = kernel(batch.columns, len(batch))
        code = SCHEMA.index_of("code")
        expected = [
            i
            for i, row in enumerate(rows)
            if row[code] is not None and row[code] > value
        ]
        assert picked == expected
