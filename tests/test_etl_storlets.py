"""Tests for the PUT-path ETL storlets (cleansing, column split)."""

import json

import pytest

from repro.sql import Schema
from repro.storlets import (
    CleansingStorlet,
    ColumnSplitStorlet,
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)

SCHEMA = Schema.of("vid", "date", "index:float")


def run_storlet(storlet, data: bytes, parameters: dict) -> tuple:
    out = StorletOutputStream()
    storlet.invoke(
        [StorletInputStream([data])], [out], parameters, StorletLogger("t")
    )
    return out.getvalue(), out.metadata


class TestCleansing:
    PARAMS = {"schema": SCHEMA.to_header()}

    def test_valid_rows_pass(self):
        data = b"m1,2015-01-01,1.5\nm2,2015-01-02,2.0\n"
        result, _meta = run_storlet(CleansingStorlet(), data, self.PARAMS)
        assert result == data

    def test_malformed_rows_dropped(self):
        data = b"m1,2015-01-01,1.5\nonly,two\nm2,2015-01-02,2.0\n"
        result, meta = run_storlet(CleansingStorlet(), data, self.PARAMS)
        assert b"only,two" not in result
        assert meta["x-object-meta-etl-dropped"] == "1"
        assert meta["x-object-meta-etl-kept"] == "2"

    def test_untypable_rows_dropped(self):
        data = b"m1,2015-01-01,notanumber\nm2,2015-01-02,2.0\n"
        result, _meta = run_storlet(CleansingStorlet(), data, self.PARAMS)
        assert result == b"m2,2015-01-02,2.0\n"

    def test_fields_trimmed(self):
        data = b"  m1 , 2015-01-01 , 1.5 \n"
        result, _meta = run_storlet(CleansingStorlet(), data, self.PARAMS)
        assert result == b"m1,2015-01-01,1.5\n"

    def test_trim_disabled(self):
        data = b"m1 ,2015-01-01,1.5\n"
        result, _meta = run_storlet(
            CleansingStorlet(), data, {**self.PARAMS, "trim": "false"}
        )
        assert result == b"m1 ,2015-01-01,1.5\n"

    def test_empty_rows_dropped(self):
        data = b"m1,2015-01-01,1.5\n,,\n"
        result, _meta = run_storlet(CleansingStorlet(), data, self.PARAMS)
        assert result == b"m1,2015-01-01,1.5\n"

    def test_header_preserved(self):
        data = b"vid,date,index\nm1,2015-01-01,1.5\n"
        result, _meta = run_storlet(
            CleansingStorlet(), data, {**self.PARAMS, "has_header": "true"}
        )
        assert result.startswith(b"vid,date,index\n")

    def test_missing_schema_raises(self):
        with pytest.raises(StorletException):
            run_storlet(CleansingStorlet(), b"x\n", {})


class TestColumnSplit:
    def test_split_timestamp_into_date_and_time(self):
        data = b"m1,2015-01-01 10:20:00,1.5\n"
        result, _meta = run_storlet(
            ColumnSplitStorlet(), data, {"column": "1", "parts": "2"}
        )
        assert result == b"m1,2015-01-01,10:20:00,1.5\n"

    def test_missing_separator_pads_empty(self):
        data = b"m1,2015-01-01,1.5\n"
        result, _meta = run_storlet(
            ColumnSplitStorlet(), data, {"column": "1", "parts": "2"}
        )
        assert result == b"m1,2015-01-01,,1.5\n"

    def test_excess_parts_joined_into_last(self):
        data = b"m1,a b c d,1.5\n"
        result, _meta = run_storlet(
            ColumnSplitStorlet(), data, {"column": "1", "parts": "2"}
        )
        assert result == b"m1,a,b c d,1.5\n"

    def test_custom_separator(self):
        data = b"m1,2015-01-01T10:20,1.5\n"
        result, _meta = run_storlet(
            ColumnSplitStorlet(),
            data,
            {"column": "1", "parts": "2", "separator": "T"},
        )
        assert result == b"m1,2015-01-01,10:20,1.5\n"

    def test_header_renamed(self):
        data = b"vid,stamp,index\nm1,2015-01-01 10:00:00,1.5\n"
        result, _meta = run_storlet(
            ColumnSplitStorlet(),
            data,
            {
                "column": "1",
                "parts": "2",
                "has_header": "true",
                "header_names": json.dumps(["date", "time"]),
            },
        )
        lines = result.splitlines()
        assert lines[0] == b"vid,date,time,index"
        assert lines[1] == b"m1,2015-01-01,10:00:00,1.5"

    def test_out_of_range_column_passthrough(self):
        data = b"m1,x\n"
        result, _meta = run_storlet(
            ColumnSplitStorlet(), data, {"column": "9", "parts": "2"}
        )
        assert result == data

    def test_missing_column_parameter_raises(self):
        with pytest.raises(StorletException):
            run_storlet(ColumnSplitStorlet(), b"x\n", {})


class TestEndToEndEtlPolicy:
    def test_cleansing_enforced_on_upload(self, fresh_scoop):
        from repro.gridpocket import METER_SCHEMA

        schema = Schema.of("vid", "date", "index:float")
        fresh_scoop.upload_csv(
            "raw",
            "data.csv",
            b"m1,2015-01-01,1.5\nbad,row\nm2,2015-01-02,2.0\n",
            etl_schema=schema,
        )
        _headers, body = fresh_scoop.client.get_object("raw", "data.csv")
        assert body == b"m1,2015-01-01,1.5\nm2,2015-01-02,2.0\n"

    def test_split_then_query_pipeline(self, fresh_scoop):
        """ETL reshapes on upload; queries then run on the new schema."""
        from repro.storlets.engine import StorletPolicy

        fresh_scoop.client.put_container("shaped")
        fresh_scoop.engine.set_policy(
            fresh_scoop.client.account,
            "shaped",
            StorletPolicy(
                storlet=ColumnSplitStorlet.name,
                method="PUT",
                parameters={"column": "1", "parts": "2"},
            ),
        )
        fresh_scoop.client.put_object(
            "shaped", "d.csv", b"m1,2015-01-01 10:00:00,5.0\n"
        )
        schema = Schema.of("vid", "day", "time", "index:float")
        fresh_scoop.register_csv_table("shaped", "shaped", schema=schema)
        frame, _report = fresh_scoop.run_query(
            "SELECT vid, day FROM shaped WHERE day LIKE '2015%'"
        )
        assert frame.collect() == [("m1", "2015-01-01")]
