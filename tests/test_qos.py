"""QoS tier tests: admission control, deadline budgets, circuit
breakers, brownout demotion (docs/admission.md).

The hypothesis properties pin the two contracts everything else leans
on: a token bucket never admits more than ``burst + rate * T`` work in
any interval regardless of interleaving (and is a pure function of the
injected clock), and a deadline budget only ever decreases as it is
charged down a pipeline.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.qos.admission import (
    AdmissionController,
    CircuitBreaker,
    CircuitBreakerBoard,
    QosConfig,
    TenantQuota,
    TokenBucket,
    VirtualClock,
)
from repro.qos.budget import (
    STREAM_BYTES_ENV_KEY,
    STREAM_COST_ENV_KEY,
    budgeted_chunks,
)
from repro.sql.types import Schema
from repro.storlets.csv_storlet import CsvStorlet
from repro.storlets.engine import StorletEngine, StorletRequestHeaders
from repro.swift import RetryPolicy, SwiftClient, SwiftCluster
from repro.swift.exceptions import RequestTimeout, TooManyRequests
from repro.swift.http import Request

MB = 1024 * 1024


# --------------------------------------------------------------------------
# Token bucket properties
# --------------------------------------------------------------------------


class TestTokenBucketProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        steps=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=60
        ),
        rate=st.floats(min_value=0.1, max_value=20.0),
        burst=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_never_exceeds_burst_plus_rate_times_t(self, steps, rate, burst):
        """Over any interval T the bucket admits at most
        ``burst + rate * T`` unit-cost requests, no matter how the
        take() calls interleave with clock advances."""
        clock = VirtualClock()
        bucket = TokenBucket(rate, burst, clock)
        admitted = 0
        for step in steps:
            clock.advance(step)
            ok, _wait = bucket.take(1.0)
            admitted += 1 if ok else 0
        elapsed = clock.now()
        assert admitted <= burst + rate * elapsed + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(
        steps=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=60
        ),
        rate=st.floats(min_value=0.1, max_value=20.0),
        burst=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_deterministic_under_seeded_clock(self, steps, rate, burst):
        """The decision sequence is a pure function of (rate, burst,
        clock schedule): two replays agree take-for-take."""

        def replay():
            clock = VirtualClock()
            bucket = TokenBucket(rate, burst, clock)
            decisions = []
            for step in steps:
                clock.advance(step)
                decisions.append(bucket.take(1.0))
            return decisions

        assert replay() == replay()

    @settings(max_examples=50, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=20.0),
        burst=st.floats(min_value=1.0, max_value=10.0),
        drains=st.integers(min_value=1, max_value=30),
    )
    def test_retry_after_hint_is_sufficient(self, rate, burst, drains):
        """After a shed, waiting exactly the advertised ``retry_after``
        (plus float dust) refills enough tokens for the request."""
        clock = VirtualClock()
        bucket = TokenBucket(rate, burst, clock)
        for _ in range(drains):
            ok, wait = bucket.take(1.0)
            if not ok:
                assert wait > 0
                clock.advance(wait + 1e-9)
                admitted, _ = bucket.take(1.0)
                assert admitted
                return
        # Bucket never emptied under this draw; that is fine too.

    def test_refund_never_overfills(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        bucket.take(1.0)
        bucket.refund(5.0)
        assert bucket.peek() == pytest.approx(2.0)


# --------------------------------------------------------------------------
# Deadline budget properties
# --------------------------------------------------------------------------


class TestDeadlineBudgetProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        budget=st.floats(min_value=0.5, max_value=100.0),
        charges=st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
            max_size=20,
        ),
    )
    def test_monotonic_decrease_across_tiers(self, budget, charges):
        """Charging tiers down a pipeline only ever shrinks the header
        value; exhaustion raises rather than going quietly negative."""
        request = Request(
            "GET", "/AUTH_t/c/o", headers={"x-request-timeout": str(budget)}
        )
        for index, charge in enumerate(charges):
            before = request.remaining_timeout()
            try:
                after = request.charge_timeout(charge, tier=f"tier{index}")
            except RequestTimeout:
                # The header records the exhausted (<= 0) budget.
                assert request.remaining_timeout() <= 0
                return
            assert after <= before
            assert after > 0
            # The rewritten header is what the next tier will read.
            assert request.remaining_timeout() == pytest.approx(
                after, abs=1e-5
            )

    def test_unbudgeted_request_is_never_charged(self):
        request = Request("GET", "/AUTH_t/c/o")
        assert request.charge_timeout(1e9, tier="proxy") is None
        assert "x-request-timeout" not in request.headers

    def test_negative_charge_rejected(self):
        request = Request(
            "GET", "/AUTH_t/c/o", headers={"x-request-timeout": "5"}
        )
        with pytest.raises(ValueError):
            request.charge_timeout(-0.1)


class TestStreamingBudget:
    def test_mid_stream_expiry_cancels_at_chunk_boundary(self):
        """A 3.5 s budget at 1 s/MiB delivers exactly three 1 MiB
        chunks; the fourth dies *before* it is yielded, and the
        per-tier byte tally records only delivered bytes."""
        request = Request(
            "GET",
            "/AUTH_t/c/o",
            headers={"x-request-timeout": "3.5"},
            environ={STREAM_COST_ENV_KEY: 1.0},
        )
        delivered = []
        with pytest.raises(RequestTimeout):
            for chunk in budgeted_chunks(
                iter([b"x" * MB] * 10), request, "object"
            ):
                delivered.append(chunk)
        assert len(delivered) == 3
        assert request.environ[STREAM_BYTES_ENV_KEY] == {"object": 3 * MB}

    def test_tally_is_per_tier(self):
        request = Request(
            "GET",
            "/AUTH_t/c/o",
            headers={"x-request-timeout": "100"},
            environ={STREAM_COST_ENV_KEY: 0.5},
        )
        list(budgeted_chunks(iter([b"a" * MB]), request, "object"))
        list(budgeted_chunks(iter([b"b" * MB]), request, "storlet"))
        assert request.environ[STREAM_BYTES_ENV_KEY] == {
            "object": MB,
            "storlet": MB,
        }

    def test_no_cost_streams_untouched(self):
        request = Request(
            "GET", "/AUTH_t/c/o", headers={"x-request-timeout": "0.001"}
        )
        chunks = list(budgeted_chunks(iter([b"x" * MB] * 4), request, "object"))
        assert len(chunks) == 4
        assert STREAM_BYTES_ENV_KEY not in request.environ


# --------------------------------------------------------------------------
# Circuit breaker state machine
# --------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_consults=4)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cooldown_then_single_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_consults=3)
        breaker.record_failure()
        # Open: exactly cooldown_consults rejections...
        assert [breaker.allow() for _ in range(3)] == [False] * 3
        # ...then one half-open probe passes while concurrent requests
        # stay rejected.
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_consults=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_retrips_for_another_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_consults=2)
        breaker.record_failure()
        breaker.allow(), breaker.allow()  # burn the cooldown
        assert breaker.allow()  # the probe
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_board_tracks_nodes_independently(self):
        board = CircuitBreakerBoard(failure_threshold=1, cooldown_consults=2)
        board.record_failure("storage1")
        assert not board.allow("storage1")
        assert board.allow("storage2")
        assert board.states() == {"storage1": "open", "storage2": "closed"}
        assert board.rejections() == 1


# --------------------------------------------------------------------------
# Admission controller
# --------------------------------------------------------------------------


class TestAdmissionController:
    def quotas(self):
        return (
            TenantQuota(name="alice", request_rate=1.0, request_burst=2.0),
        )

    def test_over_quota_decision_is_429_with_retry_after(self):
        clock = VirtualClock()
        controller = AdmissionController(quotas=self.quotas(), clock=clock)
        assert controller.admit("alice").admitted
        assert controller.admit("alice").admitted
        shed = controller.admit("alice")
        assert not shed.admitted
        assert shed.status == 429
        assert shed.reason == "over-quota"
        assert shed.retry_after == pytest.approx(1.0)
        clock.advance(shed.retry_after)
        assert controller.admit("alice").admitted

    def test_unknown_tenant_without_default_flows_freely(self):
        controller = AdmissionController(
            quotas=self.quotas(), clock=VirtualClock()
        )
        for _ in range(100):
            assert controller.admit("mallory").admitted

    def test_byte_quota_shed_refunds_the_request_token(self):
        clock = VirtualClock()
        controller = AdmissionController(
            quotas=(
                TenantQuota(
                    name="bob",
                    request_rate=1.0,
                    request_burst=10.0,
                    byte_rate=1024.0,
                    byte_burst=2048.0,
                ),
            ),
            clock=clock,
        )
        assert not controller.admit("bob", bytes_estimate=4096).admitted
        # The failed byte take refunded the request token: all ten
        # burst requests are still available for small payloads.
        for _ in range(10):
            assert controller.admit("bob", bytes_estimate=64).admitted

    def test_summary_ledger_counts(self):
        controller = AdmissionController(
            quotas=self.quotas(), clock=VirtualClock()
        )
        for _ in range(5):
            controller.admit("alice", bytes_estimate=10)
        summary = controller.summary()
        assert summary["alice"]["admitted"] == 2
        assert summary["alice"]["shed"] == 3
        assert summary["alice"]["admitted_bytes"] == 20


# --------------------------------------------------------------------------
# Proxy integration: typed sheds, Retry-After honoring, brownout
# --------------------------------------------------------------------------


def policed_cluster(clock, **qos_kwargs):
    qos = QosConfig(
        tenants=(
            TenantQuota(name="alice", request_rate=1.0, request_burst=2.0),
        ),
        **qos_kwargs,
    )
    return SwiftCluster(
        storage_node_count=3,
        disks_per_node=1,
        part_power=5,
        qos=qos,
        qos_clock=clock,
    )


class TestProxyShedding:
    def test_over_quota_get_sheds_typed_429(self):
        clock = VirtualClock()
        cluster = policed_cluster(clock)

        def attempt():
            return cluster.handle_request(
                Request(
                    "GET",
                    "/AUTH_a/c",
                    headers={"x-scoop-tenant": "alice"},
                )
            )

        assert attempt().status != 429
        assert attempt().status != 429
        shed = attempt()
        assert shed.status == 429
        assert shed.headers["x-shed-reason"] == "over-quota"
        assert float(shed.headers["retry-after"]) > 0
        summary = cluster.qos_summary()
        assert summary["shed_quota"] == 1
        assert summary["tenants"]["alice"]["shed"] == 1
        # Refill clears the shed condition deterministically.
        clock.advance(10.0)
        assert attempt().status != 429

    def test_anonymous_traffic_is_not_policed(self):
        cluster = policed_cluster(VirtualClock())
        for _ in range(10):
            response = cluster.handle_request(Request("GET", "/AUTH_a/c"))
            assert response.status != 429

    def test_client_surfaces_shed_as_too_many_requests(self):
        clock = VirtualClock()
        cluster = policed_cluster(clock)
        setup = SwiftClient(cluster, "AUTH_a")  # anonymous: unpoliced
        setup.put_container("c")
        policed = SwiftClient(
            cluster,
            "AUTH_a",
            retry_policy=RetryPolicy(max_attempts=3, seed=7),
            tenant="alice",
        )
        # The constructor's put_account consumed one token; refill to
        # the full burst before draining it.
        clock.advance(10.0)
        policed.head_container("c")
        policed.head_container("c")
        with pytest.raises(TooManyRequests):
            policed.head_container("c")


class TestClientHonorsRetryAfter:
    def test_server_pacing_wins_over_computed_backoff(self):
        """Every retry of a shed request sleeps the server's exact
        Retry-After (1.0 s for a drained rate-1 bucket), not the
        jittered exponential schedule."""
        clock = VirtualClock()
        cluster = policed_cluster(clock)
        SwiftClient(cluster, "AUTH_a").put_container("c")
        policed = SwiftClient(
            cluster,
            "AUTH_a",
            retry_policy=RetryPolicy(max_attempts=3, seed=7),
            tenant="alice",
        )
        # The constructor's put_account consumed one token; refill to
        # the full burst before draining it.
        clock.advance(10.0)
        policed.head_container("c")
        policed.head_container("c")  # bucket now empty, clock frozen
        with pytest.raises(TooManyRequests):
            policed.head_container("c")
        stats = policed.stats
        assert stats.retry_after_honored == 2
        assert stats.delays[-2:] == [1.0, 1.0]
        assert stats.exhausted == 1

    def test_malformed_retry_after_falls_back_to_backoff(self):
        policy = RetryPolicy(seed=11)
        assert policy.server_pacing("not-a-number") is None
        assert policy.server_pacing(None) is None
        assert policy.server_pacing("-2") is None
        assert policy.server_pacing("0.25") == 0.25
        # Hostile/huge values are clamped to the backoff cap.
        assert policy.server_pacing("1e9") == policy.backoff_cap


SCHEMA = Schema.of("vid", "date", "index:float", "city")
CSV_BODY = b"".join(
    f"v{row % 5},2015-01-{(row % 27) + 1:02d},{row * 1.5:.1f},Paris\n".encode()
    for row in range(50)
)


class TestBrownoutDemotion:
    def build(self, watermark=0.5):
        engine = StorletEngine()
        cluster = SwiftCluster(
            storage_node_count=3,
            disks_per_node=1,
            part_power=5,
            proxy_middleware=[engine.proxy_middleware()],
            object_middleware=[engine.object_middleware()],
            qos=QosConfig(brownout_cpu_watermark=watermark),
        )
        client = SwiftClient(cluster, "AUTH_b")
        engine.deploy(CsvStorlet())
        client.put_container("c")
        client.put_object("c", "data.csv", CSV_BODY)
        return cluster, client

    def storlet_headers(self):
        return {
            StorletRequestHeaders.RUN: "csvstorlet",
            "x-storlet-parameter-schema": SCHEMA.to_header(),
            "x-storlet-parameter-columns": json.dumps(["vid"]),
        }

    def test_gauge_over_watermark_demotes_pushdown_get(self):
        cluster, client = self.build(watermark=0.5)
        for node in cluster.object_servers:
            cluster.install_brownout_gauge(node, lambda: 0.9)
        response = client.request(
            "GET", "/AUTH_b/c/data.csv", headers=self.storlet_headers()
        )
        # The degradable-failure shape the connector already handles:
        # the client falls back to a plain GET + compute-side filter.
        assert response.status == 500
        assert response.headers["x-storlet-failure"] == "brownout"
        assert cluster.qos_summary()["brownout_demotions"] == 1

    def test_gauge_under_watermark_runs_the_storlet(self):
        cluster, client = self.build(watermark=0.5)
        for node in cluster.object_servers:
            cluster.install_brownout_gauge(node, lambda: 0.1)
        response = client.request(
            "GET", "/AUTH_b/c/data.csv", headers=self.storlet_headers()
        )
        assert response.status == 200
        assert cluster.qos_summary()["brownout_demotions"] == 0

    def test_plain_get_is_never_demoted(self):
        cluster, client = self.build(watermark=0.5)
        for node in cluster.object_servers:
            cluster.install_brownout_gauge(node, lambda: 0.9)
        _headers, body = client.get_object("c", "data.csv")
        assert body == CSV_BODY
        assert cluster.qos_summary()["brownout_demotions"] == 0
