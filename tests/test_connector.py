"""Tests for the Stocator-like connector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.connector import StocatorConnector
from repro.core import PushdownTask
from repro.sql import EqualTo, Schema
from repro.swift import SwiftClient, SwiftCluster


@pytest.fixture
def rig():
    from repro.storlets import CsvStorlet, StorletEngine

    engine = StorletEngine()
    cluster = SwiftCluster(
        storage_node_count=2,
        disks_per_node=1,
        proxy_middleware=[engine.proxy_middleware()],
        object_middleware=[engine.object_middleware()],
    )
    client = SwiftClient(cluster, "AUTH_conn")
    engine.deploy(CsvStorlet())
    connector = StocatorConnector(client, chunk_size=100)
    client.put_container("c")
    return connector, client


class TestPartitionDiscovery:
    def test_splits_cover_object_exactly(self, rig):
        connector, client = rig
        client.put_object("c", "o", b"x" * 250)
        splits = connector.discover_partitions("c")
        assert [s.length for s in splits] == [100, 100, 50]
        assert [s.start for s in splits] == [0, 100, 200]
        assert all(s.object_size == 250 for s in splits)

    def test_multiple_objects_indexed_sequentially(self, rig):
        connector, client = rig
        client.put_object("c", "a", b"x" * 150)
        client.put_object("c", "b", b"x" * 90)
        splits = connector.discover_partitions("c")
        assert [s.index for s in splits] == [0, 1, 2]
        assert [s.name for s in splits] == ["a", "a", "b"]

    def test_prefix_filters_objects(self, rig):
        connector, client = rig
        client.put_object("c", "keep/o", b"x" * 10)
        client.put_object("c", "skip/o", b"x" * 10)
        splits = connector.discover_partitions("c", prefix="keep/")
        assert [s.name for s in splits] == ["keep/o"]

    def test_empty_objects_skipped(self, rig):
        connector, client = rig
        client.put_object("c", "empty", b"")
        assert connector.discover_partitions("c") == []

    def test_split_properties(self, rig):
        connector, client = rig
        client.put_object("c", "o", b"x" * 250)
        first, middle, last = connector.discover_partitions("c")
        assert first.is_first and not first.is_last
        assert not middle.is_first and not middle.is_last
        assert last.is_last and last.end == 249

    def test_invalid_chunk_size_raises(self, rig):
        _connector, client = rig
        with pytest.raises(ValueError):
            StocatorConnector(client, chunk_size=0)

    def test_dataset_size(self, rig):
        connector, client = rig
        client.put_object("c", "a", b"x" * 70)
        client.put_object("c", "b", b"y" * 30)
        assert connector.dataset_size("c") == 100


class TestSplitReads:
    DATA = b"".join(f"row-{i:04d},value-{i}\n".encode() for i in range(40))

    def test_records_cover_exactly_once(self, rig):
        connector, client = rig
        client.put_object("c", "o", self.DATA)
        all_lines = []
        for split in connector.discover_partitions("c"):
            all_lines.extend(connector.read_split_records(split))
        expected = self.DATA.rstrip(b"\n").split(b"\n")
        assert all_lines == expected

    def test_metrics_track_plain_transfers(self, rig):
        connector, client = rig
        client.put_object("c", "o", self.DATA)
        for split in connector.discover_partitions("c"):
            connector.read_split_raw(split)
        assert connector.metrics.requests == len(
            connector.discover_partitions("c")
        )
        assert connector.metrics.bytes_requested == len(self.DATA)
        assert connector.metrics.pushdown_requests == 0
        # Plain reads transfer at least the whole dataset (plus lookahead).
        assert connector.metrics.bytes_transferred >= len(self.DATA)

    def test_pushdown_read_transfers_less(self, rig):
        connector, client = rig
        schema = Schema.of("name", "value")
        client.put_object("c", "o", self.DATA)
        task = PushdownTask(
            schema=schema,
            columns=["name"],
            filters=[EqualTo("name", "row-0003")],
        )
        total = b""
        for split in connector.discover_partitions("c"):
            total += connector.read_split_raw(split, task)
        assert total == b"row-0003\n"
        assert connector.metrics.pushdown_requests > 0
        assert (
            connector.metrics.bytes_transferred
            < connector.metrics.bytes_requested
        )

    def test_noop_task_falls_back_to_plain_read(self, rig):
        connector, client = rig
        schema = Schema.of("name", "value")
        client.put_object("c", "o", self.DATA)
        task = PushdownTask(schema=schema)  # nothing to discard
        for split in connector.discover_partitions("c"):
            connector.read_split_raw(split, task)
        assert connector.metrics.pushdown_requests == 0

    def test_savings_ratio(self, rig):
        connector, _client = rig
        connector.metrics.record(25, 100, pushdown=True)
        assert connector.metrics.savings_ratio() == pytest.approx(0.75)
        connector.metrics.reset()
        assert connector.metrics.savings_ratio() == 0.0


class TestUpload:
    def test_upload_creates_container(self, rig):
        connector, client = rig
        connector.upload("newc", "o", b"data")
        assert client.list_objects("newc") == ["o"]


class TestCoverageProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        row_count=st.integers(min_value=0, max_value=60),
        chunk_size=st.integers(min_value=7, max_value=300),
    )
    def test_any_chunk_size_covers_all_records(self, row_count, chunk_size):
        cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
        client = SwiftClient(cluster, "AUTH_prop")
        connector = StocatorConnector(client, chunk_size=chunk_size)
        client.put_container("c")
        data = b"".join(
            f"record-{i},{i * 3}\n".encode() for i in range(row_count)
        )
        if not data:
            return
        client.put_object("c", "o", data)
        collected = []
        for split in connector.discover_partitions("c"):
            collected.extend(connector.read_split_records(split))
        assert collected == data.rstrip(b"\n").split(b"\n")


class TestMissingEngineFailure:
    def test_pushdown_without_engine_fails_loudly(self):
        """A pushdown GET against a store with no storlet middleware must
        raise, not silently return unfiltered data."""
        from repro.swift.exceptions import SwiftError

        cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
        client = SwiftClient(cluster, "AUTH_bare")
        connector = StocatorConnector(client, chunk_size=100)
        client.put_container("c")
        client.put_object("c", "o", b"a,b\nc,d\n")
        task = PushdownTask(schema=Schema.of("x", "y"), columns=["x"])
        split = connector.discover_partitions("c")[0]
        with pytest.raises(SwiftError):
            connector.read_split_raw(split, task)


class TestSkippedObjects:
    """Partition discovery must surface objects it cannot split --
    counted, logged, and mirrored into the metrics registry -- instead
    of silently dropping them."""

    def test_zero_length_object_counted_and_logged(self, rig, caplog):
        import logging

        from repro.obs.metrics import MetricsRegistry

        connector, client = rig
        connector.metrics.registry = MetricsRegistry()
        client.put_object("c", "empty", b"")
        client.put_object("c", "data", b"x" * 10)
        with caplog.at_level(logging.WARNING, logger="repro.connector"):
            splits = connector.discover_partitions("c")
        assert [s.name for s in splits] == ["data"]
        assert connector.skipped_objects == [("c", "empty", "zero-length")]
        assert (
            connector.metrics.registry.counter_value(
                "connector.objects_skipped", reason="zero-length"
            )
            == 1
        )
        assert "empty" in caplog.text and "zero-length" in caplog.text

    def test_missing_content_length_counted(self, rig, monkeypatch):
        from repro.obs.metrics import MetricsRegistry

        connector, client = rig
        connector.metrics.registry = MetricsRegistry()
        client.put_object("c", "weird", b"x" * 5)
        client.put_object("c", "data", b"x" * 10)
        real_head = client.head_object

        def headless(container, name):
            headers = real_head(container, name)
            if name == "weird":
                del headers["content-length"]
            return headers

        monkeypatch.setattr(client, "head_object", headless)
        splits = connector.discover_partitions("c")
        assert [s.name for s in splits] == ["data"]
        assert connector.skipped_objects == [
            ("c", "weird", "missing-content-length")
        ]
        assert (
            connector.metrics.registry.counter_value(
                "connector.objects_skipped", reason="missing-content-length"
            )
            == 1
        )

    def test_skips_accumulate_across_discoveries(self, rig):
        connector, client = rig
        client.put_object("c", "empty", b"")
        connector.discover_partitions("c")
        connector.discover_partitions("c")
        assert len(connector.skipped_objects) == 2
