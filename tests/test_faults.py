"""Tests for the fault-injection framework and per-layer resilience."""

import pytest

from repro.faults import (
    DeviceLoss,
    FaultPlan,
    FlakyObjectServer,
    FlakyProxy,
    SlowObjectServer,
    StorletCrash,
    fault_timeline,
    install_fault_plan,
    named_plan,
    schedule_faults,
)
from repro.simulation.core import Environment
from repro.swift import RetryPolicy, SwiftClient, SwiftCluster
from repro.swift.exceptions import SwiftError


def make_cluster(**kwargs):
    kwargs.setdefault("storage_node_count", 3)
    kwargs.setdefault("disks_per_node", 2)
    kwargs.setdefault("replica_count", 3)
    kwargs.setdefault("part_power", 5)
    return SwiftCluster(**kwargs)


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        rules = (
            FlakyObjectServer(method="GET", times=None, probability=0.4),
            StorletCrash(times=None, probability=0.6),
        )
        outcomes = []
        for _run in range(2):
            plan = FaultPlan(seed=7, faults=rules)
            run = [
                (
                    plan.object_fault("storage0", "GET"),
                    plan.storlet_fault("csvstorlet", "storage1"),
                )
                for _ in range(50)
            ]
            outcomes.append((run, plan.fingerprint()))
        assert outcomes[0] == outcomes[1]

    def test_different_seed_different_decisions(self):
        rules = (FlakyObjectServer(times=None, probability=0.5),)
        runs = {}
        for seed in (1, 2):
            plan = FaultPlan(seed=seed, faults=rules)
            runs[seed] = [
                plan.object_fault("storage0", "GET") is not None
                for _ in range(100)
            ]
        assert runs[1] != runs[2]

    def test_reset_rewinds_rngs_and_log(self):
        plan = FaultPlan(
            seed=3, faults=(FlakyProxy(times=None, probability=0.5),)
        )
        first = [plan.proxy_fault("GET") for _ in range(30)]
        fingerprint = plan.fingerprint()
        plan.reset()
        assert plan.log == []
        second = [plan.proxy_fault("GET") for _ in range(30)]
        assert first == second
        assert plan.fingerprint() == fingerprint


class TestFaultPlanRules:
    def test_one_shot_rule_disarms(self):
        plan = FaultPlan(faults=(FlakyObjectServer(times=1),))
        assert plan.object_fault("storage0", "GET") == ("status", 503.0)
        assert plan.object_fault("storage0", "GET") is None
        assert plan.fired("object-error") == 1

    def test_persistent_rule_keeps_firing(self):
        plan = FaultPlan(faults=(FlakyObjectServer(times=None),))
        for _ in range(10):
            assert plan.object_fault("storage0", "GET") is not None

    def test_node_and_method_matching(self):
        plan = FaultPlan(
            faults=(FlakyObjectServer(node="storage1", method="GET"),)
        )
        assert plan.object_fault("storage0", "GET") is None
        assert plan.object_fault("storage1", "PUT") is None
        assert plan.object_fault("storage1", "GET") is not None

    def test_storlet_matching(self):
        plan = FaultPlan(
            faults=(StorletCrash(storlet="csvstorlet", times=None),)
        )
        assert plan.storlet_fault("other", "storage0") is None
        assert plan.storlet_fault("csvstorlet", "storage0") == "crash"

    def test_device_loss_due_at_request_count(self):
        plan = FaultPlan(faults=(DeviceLoss(device_index=1, at_request=3),))
        assert plan.on_request() == []
        assert plan.on_request() == []
        due = plan.on_request()
        assert len(due) == 1 and due[0].device_index == 1
        # Fires exactly once.
        assert plan.on_request() == []

    def test_stall_rule(self):
        plan = FaultPlan(
            faults=(SlowObjectServer(stall_seconds=99.0, times=1),)
        )
        assert plan.object_fault("storage0", "GET") == ("stall", 99.0)


class TestInjectedObjectFaults:
    def test_one_shot_503_is_absorbed_by_failover(self):
        cluster = make_cluster()
        client = SwiftClient(cluster, "AUTH_f")
        client.put_container("c")
        client.put_object("c", "o", b"payload")
        # ``times`` budgets are per scope (per replica of a logical
        # request), so pin the one-shot rule to the primary replica's
        # node to model exactly one failing replica.
        _part, devices = cluster.object_ring.get_nodes("AUTH_f", "c", "o")
        plan = FaultPlan(
            faults=(
                FlakyObjectServer(
                    node=devices[0].node, method="GET", times=1
                ),
            )
        )
        install_fault_plan(cluster, plan)

        _headers, body = client.get_object("c", "o")
        assert body == b"payload"
        assert cluster.counters["get_failovers"] >= 1
        assert plan.fired("object-error") == 1

    def test_stall_past_deadline_times_out_and_fails_over(self):
        cluster = make_cluster()
        policy = RetryPolicy(request_timeout=30.0)
        client = SwiftClient(cluster, "AUTH_f", retry_policy=policy)
        client.put_container("c")
        client.put_object("c", "o", b"payload")
        plan = FaultPlan(
            faults=(SlowObjectServer(stall_seconds=120.0, times=1),)
        )
        install_fault_plan(cluster, plan)

        _headers, body = client.get_object("c", "o")
        assert body == b"payload"
        assert cluster.counters["get_failovers"] >= 1

    def test_stall_under_deadline_is_recorded_not_fatal(self):
        cluster = make_cluster()
        policy = RetryPolicy(request_timeout=30.0)
        client = SwiftClient(cluster, "AUTH_f", retry_policy=policy)
        client.put_container("c")
        client.put_object("c", "o", b"payload")
        plan = FaultPlan(
            faults=(SlowObjectServer(stall_seconds=1.0, times=1),)
        )
        install_fault_plan(cluster, plan)

        _headers, body = client.get_object("c", "o")
        assert body == b"payload"
        assert cluster.counters["get_failovers"] == 0

    def test_all_replicas_down_surfaces_error_after_bounded_retries(self):
        cluster = make_cluster()
        policy = RetryPolicy(max_attempts=3)
        client = SwiftClient(cluster, "AUTH_f", retry_policy=policy)
        client.put_container("c")
        client.put_object("c", "o", b"payload")
        plan = FaultPlan(
            faults=(FlakyObjectServer(method="GET", times=None),)
        )
        install_fault_plan(cluster, plan)

        before = client.stats.requests
        with pytest.raises(SwiftError):
            client.get_object("c", "o")
        # Exactly max_attempts requests, no unbounded retry.
        assert client.stats.requests - before == policy.max_attempts
        assert client.stats.exhausted == 1


class TestInjectedProxyFaults:
    def test_transient_proxy_503_is_retried(self):
        cluster = make_cluster()
        client = SwiftClient(cluster, "AUTH_f")
        client.put_container("c")
        client.put_object("c", "o", b"payload")
        plan = FaultPlan(faults=(FlakyProxy(times=1),))
        install_fault_plan(cluster, plan)

        _headers, body = client.get_object("c", "o")
        assert body == b"payload"
        assert client.stats.retries == 1
        assert client.stats.backoff_seconds > 0

    def test_device_loss_fires_and_data_survives(self):
        cluster = make_cluster()
        client = SwiftClient(cluster, "AUTH_f")
        client.put_container("c")
        for index in range(10):
            client.put_object("c", f"o{index}", f"data-{index}".encode())
        plan = FaultPlan(faults=(DeviceLoss(device_index=0, at_request=1),))
        injector = install_fault_plan(cluster, plan)

        for index in range(10):
            _headers, body = client.get_object("c", f"o{index}")
            assert body == f"data-{index}".encode()
        assert injector.lost_devices
        assert cluster.failed_devices


class TestStorletFaults:
    def test_injected_crash_degrades_pushdown(self, fresh_scoop):
        from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset

        ctx = fresh_scoop
        spec = DatasetSpec(meters=10, intervals=48, objects=2)
        upload_dataset(ctx.client, "meters", spec)
        ctx.register_csv_table("m", "meters", schema=METER_SCHEMA)
        # A predicate that matches data: a no-row predicate would let
        # columnar stripe pruning skip every GET, leaving no storlet
        # invocation to crash.
        sql = "SELECT vid FROM m WHERE city LIKE 'R%'"
        baseline = ctx.sql(sql).collect()

        plan = FaultPlan(
            faults=(
                StorletCrash(storlet="csvstorlet", times=None),
                StorletCrash(storlet="columnarstorlet", times=None),
            )
        )
        install_fault_plan(ctx.cluster, plan, engine=ctx.engine)
        degraded = ctx.sql(sql).collect()
        assert degraded == baseline
        assert ctx.connector.metrics.pushdown_fallbacks > 0
        assert plan.fired("storlet-fault") > 0


class TestNamedPlans:
    def test_known_names(self):
        for name in ("none", "device-loss", "flaky-object", "storlet-crash"):
            plan = named_plan(name, seed=5)
            assert plan.seed == 5

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            named_plan("meteor-strike")


class TestDesAdapter:
    def test_timeline_is_deterministic(self):
        plan = named_plan("flaky-object", seed=11)
        first = fault_timeline(plan, horizon=100.0)
        second = fault_timeline(named_plan("flaky-object", seed=11), 100.0)
        assert first == second
        assert all(event.time < 100.0 for event in first)

    def test_timeline_respects_rule_budgets(self):
        plan = FaultPlan(
            seed=2, faults=(FlakyObjectServer(times=2, probability=1.0),)
        )
        events = fault_timeline(plan, horizon=10_000.0, mean_interval=1.0)
        assert len(events) == 2

    def test_schedule_faults_delivers_in_order(self):
        plan = named_plan("flaky-object", seed=13)
        timeline = fault_timeline(plan, horizon=200.0)
        env = Environment()
        seen = []
        schedule_faults(
            env, plan, horizon=200.0, on_fault=lambda e: seen.append(e)
        )
        env.run()
        assert seen == timeline

    def test_device_loss_maps_threshold_to_clock(self):
        plan = FaultPlan(faults=(DeviceLoss(device_index=2, at_request=7),))
        events = fault_timeline(plan, horizon=50.0)
        assert len(events) == 1
        assert events[0].time == 7.0
        assert events[0].kind == "device-loss"
