"""Tests for PushdownTask, the delegator and the adaptive controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptivePushdownController,
    AnalyticsDelegator,
    PushdownTask,
)
from repro.core.policies import SelectivityModel, TenantClass, TenantPolicy
from repro.sql import EqualTo, Schema, StringStartsWith
from repro.storlets.engine import StorletRequestHeaders

SCHEMA = Schema.of("vid", "date", "index:float", "city")


class TestPushdownTask:
    def test_noop_detection(self):
        assert PushdownTask(schema=SCHEMA).is_noop()
        assert PushdownTask(schema=SCHEMA, columns=SCHEMA.names).is_noop()
        assert not PushdownTask(schema=SCHEMA, columns=["vid"]).is_noop()
        assert not PushdownTask(
            schema=SCHEMA, filters=[EqualTo("city", "Paris")]
        ).is_noop()

    def test_pruned_schema(self):
        task = PushdownTask(schema=SCHEMA, columns=["vid", "index"])
        pruned = task.pruned_schema()
        assert pruned.names == ["vid", "index"]
        assert pruned.field("index").dtype.value == "float"

    def test_parameters_round_trip(self):
        task = PushdownTask(
            schema=SCHEMA,
            columns=["vid", "city"],
            filters=[StringStartsWith("date", "2015"), EqualTo("city", "x")],
            has_header=True,
            delimiter=";",
        )
        restored = PushdownTask.from_parameters(task.to_parameters())
        assert restored.schema == task.schema
        assert restored.columns == task.columns
        assert restored.filters == task.filters
        assert restored.has_header is True
        assert restored.delimiter == ";"

    def test_apply_to_headers_sets_invocation(self):
        task = PushdownTask(schema=SCHEMA, columns=["vid"])
        headers = {}
        task.apply_to_headers(headers)
        assert headers[StorletRequestHeaders.RUN] == "csvstorlet"
        assert headers[StorletRequestHeaders.RUN_ON] == "object"
        params = StorletRequestHeaders.parameters_from(headers)
        assert params["schema"] == SCHEMA.to_header()

    def test_describe(self):
        task = PushdownTask(schema=SCHEMA, columns=["vid"])
        assert "csvstorlet" in task.describe()

    def test_from_parameters_keeps_run_on_and_compress(self):
        task = PushdownTask(
            schema=SCHEMA,
            columns=["vid"],
            run_on="proxy",
            compress=True,
        )
        restored = PushdownTask.from_parameters(
            task.to_parameters(),
            storlet=task.storlet,
            run_on=task.run_on,
            compress=task.compress,
        )
        assert restored.run_on == "proxy"
        assert restored.compress is True

    @settings(max_examples=60, deadline=None)
    @given(
        columns=st.one_of(
            st.none(),
            st.lists(
                st.sampled_from(SCHEMA.names), min_size=1, unique=True
            ),
        ),
        filters=st.lists(
            st.one_of(
                st.builds(
                    EqualTo,
                    st.sampled_from(SCHEMA.names),
                    st.text(
                        alphabet=st.characters(
                            blacklist_characters=",\n\r",
                            blacklist_categories=("Cs",),
                        ),
                        max_size=8,
                    ),
                ),
                st.builds(
                    StringStartsWith,
                    st.sampled_from(SCHEMA.names),
                    st.text(
                        alphabet=st.characters(
                            blacklist_characters=",\n\r",
                            blacklist_categories=("Cs",),
                        ),
                        max_size=8,
                    ),
                ),
            ),
            max_size=3,
        ),
        has_header=st.booleans(),
        delimiter=st.sampled_from([",", ";", "|", "\t"]),
        run_on=st.sampled_from(["object", "proxy"]),
        compress=st.booleans(),
    )
    def test_header_round_trip_property(
        self, columns, filters, has_header, delimiter, run_on, compress
    ):
        """apply_to_headers -> from_headers is lossless, including the
        run_on/compress flags that live outside the parameter headers."""
        task = PushdownTask(
            schema=SCHEMA,
            columns=columns,
            filters=filters,
            has_header=has_header,
            delimiter=delimiter,
            run_on=run_on,
            compress=compress,
        )
        headers = {}
        task.apply_to_headers(headers)
        restored = PushdownTask.from_headers(headers)
        assert restored.schema == task.schema
        # A projection naming every column is deliberately dropped from
        # the wire format (it is a no-op at the storlet).
        expected_columns = (
            None
            if columns is not None and len(columns) == len(SCHEMA)
            else columns
        )
        assert restored.columns == expected_columns
        assert restored.filters == task.filters
        assert restored.has_header is has_header
        assert restored.delimiter == delimiter
        assert restored.storlet == task.storlet
        assert restored.run_on == run_on
        assert restored.compress is compress


class TestDelegator:
    QUERY = "SELECT vid FROM t WHERE city LIKE 'Rotterdam'"

    def test_builds_task_from_query(self):
        delegator = AnalyticsDelegator()
        task = delegator.make_task(self.QUERY, SCHEMA)
        assert task is not None
        assert task.columns == ["vid", "city"]
        assert task.filters == [EqualTo("city", "Rotterdam")]

    def test_noop_query_yields_none(self):
        delegator = AnalyticsDelegator()
        task = delegator.make_task("SELECT * FROM t", SCHEMA)
        assert task is None
        assert delegator.log[-1].reason == "no-op task"

    def test_controller_veto_respected(self):
        controller = AdaptivePushdownController(
            storage_cpu_probe=lambda: 0.99
        )
        controller.set_policy(TenantPolicy("t1", TenantClass.BRONZE))
        delegator = AnalyticsDelegator(controller)
        task = delegator.make_task(self.QUERY, SCHEMA, tenant="t1")
        assert task is None
        assert delegator.pushdown_rate() == 0.0

    def test_gold_tenant_keeps_service_under_pressure(self):
        controller = AdaptivePushdownController(
            storage_cpu_probe=lambda: 0.99
        )
        controller.set_policy(TenantPolicy("vip", TenantClass.GOLD))
        delegator = AnalyticsDelegator(controller)
        task = delegator.make_task(self.QUERY, SCHEMA, tenant="vip")
        assert task is not None
        assert delegator.pushdown_rate() == 1.0

    def test_log_records_details(self):
        delegator = AnalyticsDelegator()
        delegator.make_task(self.QUERY, SCHEMA, tenant="acme")
        record = delegator.log[0]
        assert record.tenant == "acme"
        assert record.pushed_down
        assert record.filter_count == 1
        assert record.column_count == 2


class TestAdaptiveController:
    def make_task(self):
        return PushdownTask(
            schema=SCHEMA,
            columns=["vid"],
            filters=[StringStartsWith("date", "2015")],
        )

    def test_idle_storage_everyone_pushes(self):
        controller = AdaptivePushdownController(storage_cpu_probe=lambda: 0.1)
        for tenant_class in TenantClass:
            controller.set_policy(TenantPolicy("t", tenant_class))
            assert controller.decide("t", self.make_task()).push_down

    def test_soft_ceiling_sheds_bronze_first(self):
        controller = AdaptivePushdownController(storage_cpu_probe=lambda: 0.7)
        controller.set_policy(TenantPolicy("b", TenantClass.BRONZE))
        controller.set_policy(TenantPolicy("s", TenantClass.SILVER))
        assert not controller.decide("b", self.make_task()).push_down
        assert controller.decide("s", self.make_task()).push_down

    def test_hard_ceiling_spares_only_gold(self):
        controller = AdaptivePushdownController(storage_cpu_probe=lambda: 0.9)
        controller.set_policy(TenantPolicy("g", TenantClass.GOLD))
        controller.set_policy(TenantPolicy("s", TenantClass.SILVER))
        assert controller.decide("g", self.make_task()).push_down
        assert not controller.decide("s", self.make_task()).push_down

    def test_disabled_tenant_never_pushes(self):
        controller = AdaptivePushdownController(storage_cpu_probe=lambda: 0.0)
        controller.set_policy(
            TenantPolicy("off", pushdown_enabled=False)
        )
        assert not controller.decide("off", self.make_task()).push_down

    def test_low_selectivity_not_worth_pushing(self):
        model = SelectivityModel(prior=0.01)
        controller = AdaptivePushdownController(
            storage_cpu_probe=lambda: 0.0, selectivity_model=model
        )
        decision = controller.decide("t", self.make_task())
        assert not decision.push_down
        assert "selectivity" in decision.reason

    def test_selectivity_model_learns_from_observations(self):
        model = SelectivityModel(prior=0.01, smoothing=1.0)
        controller = AdaptivePushdownController(
            storage_cpu_probe=lambda: 0.0, selectivity_model=model
        )
        task = self.make_task()
        assert not controller.decide("t", task).push_down
        # Observe a highly selective invocation: 95% discarded.
        controller.observe_invocation("t", task, bytes_in=1000, bytes_out=50)
        assert controller.decide("t", task).push_down

    def test_shed_rate(self):
        controller = AdaptivePushdownController(storage_cpu_probe=lambda: 0.9)
        controller.set_policy(TenantPolicy("b", TenantClass.BRONZE))
        controller.decide("b", self.make_task())
        controller.set_policy(TenantPolicy("g", TenantClass.GOLD))
        controller.decide("g", self.make_task())
        assert controller.shed_rate() == pytest.approx(0.5)

    def test_invalid_ceilings_raise(self):
        with pytest.raises(ValueError):
            AdaptivePushdownController(
                cpu_soft_ceiling=0.9, cpu_ceiling=0.5
            )

    def test_signature_distinguishes_tasks(self):
        task_a = self.make_task()
        task_b = PushdownTask(schema=SCHEMA, columns=["city"])
        assert SelectivityModel.signature(
            "t", task_a
        ) != SelectivityModel.signature("t", task_b)


class TestAdaptiveRelationIntegration:
    """Section VII end to end: the relation consults the controller and
    transparently falls back to plain ingest when vetoed."""

    def _rig(self, cpu_level):
        from repro.core import ScoopContext
        from repro.core.policies import TenantPolicy
        from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset

        controller = AdaptivePushdownController(
            storage_cpu_probe=lambda: cpu_level
        )
        controller.set_policy(
            TenantPolicy("acme", TenantClass.BRONZE)
        )
        ctx = ScoopContext(chunk_size=64 * 1024, controller=controller)
        upload_dataset(
            ctx.client, "m", DatasetSpec(meters=10, intervals=50, objects=2)
        )
        ctx.register_csv_table(
            "t", "m", schema=METER_SCHEMA, tenant="acme", adaptive=True
        )
        return ctx

    SQL = "SELECT vid FROM t WHERE city LIKE 'Paris' ORDER BY vid"

    def test_idle_storage_pushes_down(self):
        ctx = self._rig(cpu_level=0.1)
        _frame, report = ctx.run_query(self.SQL)
        assert report.pushdown_requests == report.requests > 0

    def test_overloaded_storage_falls_back_to_plain(self):
        ctx = self._rig(cpu_level=0.95)
        _frame, report = ctx.run_query(self.SQL)
        assert report.pushdown_requests == 0
        assert report.requests > 0

    def test_results_identical_either_way(self):
        fast = self._rig(cpu_level=0.1)
        slow = self._rig(cpu_level=0.95)
        assert (
            fast.sql(self.SQL).collect() == slow.sql(self.SQL).collect()
        )


class TestLiveControllerProbe:
    def test_probe_reads_sandbox_activity(self):
        from repro.core import ScoopContext
        from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset

        ctx = ScoopContext(chunk_size=64 * 1024)
        controller = ctx.make_adaptive_controller()
        assert ctx.controller is controller
        assert controller.storage_cpu_probe() == 0.0  # nothing ran yet
        upload_dataset(
            ctx.client, "m", DatasetSpec(meters=10, intervals=40, objects=1)
        )
        ctx.register_csv_table("t", "m", schema=METER_SCHEMA)
        ctx.sql("SELECT vid FROM t WHERE city = 'Paris'").collect()
        assert controller.storage_cpu_probe() > 0.0
