"""Property tests for the shared conservative refutation logic.

One soundness contract backs both pruning tiers (stripe pruning inside
an RCF1 object and the object-level data-skipping catalog): a stripe or
object containing at least one row that satisfies the filter conjunction
is NEVER refuted.  The row-level truth oracle is
:func:`repro.sql.filters.conjunction_predicate` -- exactly what the
executor re-applies over surviving splits -- so these properties are the
end-to-end byte-identity argument in miniature: anything the stats
analysis drops, the oracle would have dropped anyway.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.catalog import CatalogBuilder, decode_catalog
from repro.columnar.layout import decode_footer, encode_columnar
from repro.columnar.pruning import stripe_may_match
from repro.sql.filters import (
    And,
    EqualTo,
    GreaterThan,
    GreaterThanOrEqual,
    In,
    IsNotNull,
    IsNull,
    LessThan,
    LessThanOrEqual,
    LikePattern,
    Not,
    Or,
    StringStartsWith,
    conjunction_predicate,
)
from repro.sql.types import Schema

SCHEMA = Schema.of("a:float", "b:int", "c")

# Small pools so generated constants actually collide with generated
# data -- otherwise every filter is vacuously selective and the "stripe
# has a matching row" branch never exercises.
FLOATS = st.one_of(
    st.sampled_from([0.0, 1.5, -2.5, 3.0, float("nan"), float("inf"), float("-inf")]),
    st.floats(min_value=-10, max_value=10),
)
INTS = st.integers(min_value=-5, max_value=5)
TEXTS = st.text(alphabet="abz%_", max_size=4)

ROWS = st.lists(
    st.tuples(
        st.one_of(st.none(), FLOATS),
        st.one_of(st.none(), INTS),
        st.one_of(st.none(), TEXTS),
    ),
    min_size=0,
    max_size=30,
)

_ATTR = st.sampled_from(["a", "b", "c"])
_SCALAR = st.one_of(FLOATS, INTS, TEXTS)


def _leaf(attribute, kind, value, members):
    if kind == "null":
        return IsNull(attribute)
    if kind == "notnull":
        return IsNotNull(attribute)
    if kind == "in":
        return In(attribute, members)
    if kind == "starts":
        return StringStartsWith(attribute, str(value))
    if kind == "like":
        return LikePattern(attribute, str(value))
    cls = {
        "eq": EqualTo,
        "gt": GreaterThan,
        "gte": GreaterThanOrEqual,
        "lt": LessThan,
        "lte": LessThanOrEqual,
    }[kind]
    return cls(attribute, value)


LEAVES = st.builds(
    _leaf,
    _ATTR,
    st.sampled_from(
        ["eq", "gt", "gte", "lt", "lte", "in", "null", "notnull", "starts", "like"]
    ),
    _SCALAR,
    st.lists(_SCALAR, min_size=1, max_size=3),
)

FILTERS = st.recursive(
    LEAVES,
    lambda children: st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Not, children),
    ),
    max_leaves=6,
)

CONJUNCTION = st.lists(FILTERS, min_size=1, max_size=3)


def _matching_rows(rows, filters):
    predicate = conjunction_predicate(filters, SCHEMA)
    return [row for row in rows if predicate(row)]


@settings(max_examples=120, deadline=None)
@given(rows=ROWS, filters=CONJUNCTION, stripe_rows=st.integers(1, 12))
def test_stripe_with_matching_row_is_never_refuted(rows, filters, stripe_rows):
    """Random data x random stripe boundaries x random filter trees."""
    if not rows:
        return
    footer = decode_footer(encode_columnar(SCHEMA, rows, stripe_rows=stripe_rows))
    for number, stripe in enumerate(footer.stripes):
        start = number * stripe_rows
        chunk = rows[start : start + stripe.rows]
        if _matching_rows(chunk, filters):
            assert stripe_may_match(stripe, filters, SCHEMA), (chunk, filters)


@settings(max_examples=120, deadline=None)
@given(rows=ROWS, filters=CONJUNCTION)
def test_catalog_with_matching_row_is_never_refuted(rows, filters):
    """Build -> metadata -> decode -> may_match round trip is sound."""
    builder = CatalogBuilder(SCHEMA)
    for row in rows:
        builder.observe(row)
    catalog = decode_catalog(builder.to_metadata())
    assert catalog is not None, "self-built catalog must decode"
    assert catalog.rows == len(rows)
    if _matching_rows(rows, filters):
        assert catalog.may_match(filters), filters


@settings(max_examples=60, deadline=None)
@given(rows=ROWS)
def test_catalog_metadata_is_strict_json(rows):
    """The persisted header never carries NaN/Infinity literals."""
    import json

    builder = CatalogBuilder(SCHEMA)
    for row in rows:
        builder.observe(row)
    for value in builder.to_metadata().values():
        decoded = json.loads(
            value,
            parse_constant=lambda name: (_ for _ in ()).throw(
                AssertionError(f"non-standard literal {name}")
            ),
        )
        assert decoded["rows"] == len(rows)


@settings(max_examples=60, deadline=None)
@given(rows=ROWS, filters=CONJUNCTION, stripe_rows=st.integers(1, 12))
def test_footer_stats_match_stripe_slices(rows, filters, stripe_rows):
    """Footer bounds are finite and consistent with the rows they cover."""
    if not rows:
        return
    footer = decode_footer(encode_columnar(SCHEMA, rows, stripe_rows=stripe_rows))
    total = 0
    for stripe in footer.stripes:
        total += stripe.rows
        for segment in stripe.columns:
            for bound in (segment.min_value, segment.max_value):
                if isinstance(bound, float):
                    assert math.isfinite(bound)
    assert total == len(rows)
