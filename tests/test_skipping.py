"""End-to-end tests for the object-level data-skipping catalog.

The catalog rides the discovery HEADs the connector already issues, so
arming it costs zero extra requests; at selective predicates it drops
whole objects with zero GETs.  The governing contract is the same as
stripe pruning: byte-identical results with the catalog on or off, at
any parallelism, under every named fault plan, and under stale, missing
or corrupt metadata (which must degrade to "may match", never skip).
"""

import json

import pytest

from repro.catalog import CATALOG_HEADER
from repro.core.scoop import ScoopContext
from repro.faults import NAMED_PLANS, named_plan
from repro.sql.types import Schema
from repro.swift.retry import RetryPolicy

SCHEMA = Schema.of("vid", "date", "index:float", "code:int", "city")

#: part-000 holds code 0..399 / city0..4; part-001 holds code
#: 1000..1399 / town0..4 -- disjoint ranges so single-object predicates
#: exist alongside impossible ones.
QUERIES = (
    "SELECT * FROM t",
    "SELECT vid, code FROM t WHERE code > 1100",
    "SELECT vid FROM t WHERE city = 'town3'",
    "SELECT vid, index FROM t WHERE code > 5000",
    "SELECT city, COUNT(*), SUM(code) FROM t "
    "WHERE code < 300 GROUP BY city ORDER BY city",
)


def _csv_body(tag="city", offset=0):
    return "\n".join(
        f"v{offset + i},2024-01-{(i % 28) + 1:02d},"
        f"{i / 10.0},{offset + i},{tag}{i % 5}"
        for i in range(400)
    ) + "\n"


def _context(fmt, plan=None, parallelism=1, async_mode=False, **kwargs):
    ctx = ScoopContext(
        chunk_size=16 * 1024,
        parallelism=parallelism,
        async_mode=async_mode,
        retry_policy=RetryPolicy(seed=7),
        fault_plan=named_plan(plan, seed=7) if plan else None,
        **kwargs,
    )
    # The catalog is computed by the PUT-path storlets, so ingest
    # through the cleansing ETL policy (as production data would be).
    ctx.upload_csv("data", "part-000.csv", _csv_body(), etl_schema=SCHEMA)
    ctx.upload_csv(
        "data", "part-001.csv", _csv_body("town", offset=1000),
        etl_schema=SCHEMA,
    )
    ctx.register_csv_table("t", "data", schema=SCHEMA, format=fmt)
    return ctx


@pytest.fixture(scope="module")
def baseline():
    """Catalog-disabled row-path truth for every query (pinned off so
    the fixture stays a valid oracle under REPRO_SKIPPING=1 runs)."""
    ctx = _context("csv", skipping=False)
    assert ctx.connector.skipping is False
    return {sql: ctx.sql(sql).collect() for sql in QUERIES}


class TestSkipCounts:
    @pytest.mark.parametrize("fmt", ["csv", "columnar"])
    def test_impossible_predicate_skips_every_object(self, baseline, fmt):
        ctx = _context(fmt, skipping=True)
        _frame, report = ctx.run_query(
            "SELECT vid, index FROM t WHERE code > 5000"
        )
        assert report.rows == 0
        assert report.objects_skipped == 2
        assert report.requests == 0  # zero GETs: refuted from the catalog

    def test_selective_predicate_skips_the_other_object(self, baseline):
        ctx = _context("csv", skipping=True)
        _frame, report = ctx.run_query("SELECT vid FROM t WHERE city = 'town3'")
        assert report.objects_skipped == 1
        assert ("data", "part-000.csv") in ctx.connector.catalog_skipped

    def test_catalog_rides_existing_heads(self, baseline):
        """Arming the catalog must not add requests, only remove them."""
        off = _context("csv", skipping=False)
        armed = _context("csv", skipping=True)
        sql = "SELECT vid, code FROM t WHERE code > 1100"
        _f, report_off = off.run_query(sql)
        _f, report_armed = armed.run_query(sql)
        assert report_armed.rows == report_off.rows
        assert report_armed.requests < report_off.requests
        assert report_armed.objects_skipped == 1

    def test_disabled_by_default_and_counts_zero(self, monkeypatch, baseline):
        monkeypatch.delenv("REPRO_SKIPPING", raising=False)
        ctx = _context("csv")
        _frame, report = ctx.run_query(
            "SELECT vid, index FROM t WHERE code > 5000"
        )
        assert report.objects_skipped == 0
        assert ctx.connector.catalog_skipped == []

    def test_env_var_arms_the_catalog(self, monkeypatch, baseline):
        monkeypatch.setenv("REPRO_SKIPPING", "1")
        ctx = _context("csv")
        assert ctx.connector.skipping is True
        _frame, report = ctx.run_query(
            "SELECT vid, index FROM t WHERE code > 5000"
        )
        assert report.objects_skipped == 2

    def test_env_var_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SKIPPING", "0")
        ctx = ScoopContext(chunk_size=16 * 1024)
        assert ctx.connector.skipping is False

    def test_explain_profile_reports_catalog(self, baseline):
        ctx = _context("csv", skipping=True)
        ctx.sql("SELECT vid FROM t WHERE code > 5000").collect()
        profile = ctx.explain_profile()
        assert profile["catalog"]["enabled"] is True
        assert profile["catalog"]["objects_skipped"] == 2
        assert sorted(profile["catalog"]["skipped"]) == [
            ("data", "part-000.csv"),
            ("data", "part-001.csv"),
        ]


class TestByteIdentity:
    @pytest.mark.parametrize("plan", NAMED_PLANS)
    @pytest.mark.parametrize("fmt", ["csv", "columnar"])
    def test_armed_matches_disabled(self, baseline, fmt, plan):
        ctx = _context(fmt, plan=plan, skipping=True)
        for sql, expected in baseline.items():
            assert ctx.sql(sql).collect() == expected, (sql, fmt, plan)

    @pytest.mark.parametrize(
        "parallelism,async_mode",
        [(16, False), (16, True)],
        ids=["threads-16", "async-16"],
    )
    def test_armed_matches_disabled_parallel(
        self, baseline, parallelism, async_mode
    ):
        ctx = _context(
            "columnar",
            parallelism=parallelism,
            async_mode=async_mode,
            skipping=True,
        )
        for sql, expected in baseline.items():
            assert ctx.sql(sql).collect() == expected, sql


class TestStaleness:
    """Absent or unparseable catalog entries refute nothing."""

    def _armed_context(self, mutate):
        ctx = ScoopContext(
            chunk_size=16 * 1024,
            retry_policy=RetryPolicy(seed=7),
            skipping=True,
        )
        ctx.upload_csv("data", "part-000.csv", _csv_body(), etl_schema=SCHEMA)
        ctx.upload_csv(
            "data", "part-001.csv", _csv_body("town", offset=1000),
            etl_schema=SCHEMA,
        )
        # Corrupt BEFORE registration: the connector snapshots catalogs
        # from the discovery HEADs, which happen at register time.
        mutate(ctx.client)
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="csv")
        return ctx

    @pytest.mark.parametrize(
        "label,metadata",
        [
            ("missing", {}),
            ("corrupt", {"scoop-catalog": "}{ not json"}),
            ("wrong-version", {"scoop-catalog": json.dumps({"v": 99})}),
            ("wrong-shape", {"scoop-catalog": json.dumps([1, 2, 3])}),
            (
                "truncated",
                {"scoop-catalog": json.dumps({"v": 1, "rows": "many"})},
            ),
        ],
    )
    def test_degraded_catalog_never_skips(self, baseline, label, metadata):
        def mutate(client):
            for name in ("part-000.csv", "part-001.csv"):
                client.post_object("data", name, metadata)
                headers = client.head_object("data", name)
                present = CATALOG_HEADER in headers
                assert present == bool(metadata), label

        ctx = self._armed_context(mutate)
        _frame, report = ctx.run_query(
            "SELECT vid, index FROM t WHERE code > 5000"
        )
        assert report.objects_skipped == 0, label
        for sql, expected in baseline.items():
            assert ctx.sql(sql).collect() == expected, (sql, label)

    def test_half_stale_still_skips_the_healthy_object(self, baseline):
        """One corrupt entry disables skipping for that object only."""

        def mutate(client):
            client.post_object("data", "part-000.csv", {"scoop-catalog": "x"})

        ctx = self._armed_context(mutate)
        _frame, report = ctx.run_query(
            "SELECT vid, index FROM t WHERE code > 5000"
        )
        assert report.rows == 0
        assert report.objects_skipped == 1
        assert ctx.connector.catalog_skipped == [("data", "part-001.csv")]

    @pytest.mark.parametrize("plan", NAMED_PLANS)
    def test_degradation_is_identical_under_faults(self, baseline, plan):
        ctx = ScoopContext(
            chunk_size=16 * 1024,
            retry_policy=RetryPolicy(seed=7),
            fault_plan=named_plan(plan, seed=7) if plan != "none" else None,
            skipping=True,
        )
        # Garbage catalogs attached at PUT time (a metadata POST is not
        # replica-tolerant under device loss, a PUT is).
        ctx.client.put_container("data")
        for name, body in (
            ("part-000.csv", _csv_body()),
            ("part-001.csv", _csv_body("town", offset=1000)),
        ):
            ctx.client.put_object(
                "data", name, body, headers={CATALOG_HEADER: "garbage"}
            )
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="csv")
        for sql, expected in baseline.items():
            assert ctx.sql(sql).collect() == expected, (sql, plan)


class TestStorletEmission:
    def test_cleansing_storlet_emits_catalog(self):
        ctx = ScoopContext(chunk_size=16 * 1024)
        ctx.upload_csv(
            "raw", "part-000.csv", _csv_body(), etl_schema=SCHEMA
        )
        headers = ctx.client.head_object("raw", "part-000.csv")
        payload = json.loads(headers[CATALOG_HEADER])
        assert payload["rows"] == 400
        assert payload["cols"]["code"]["min"] == 0
        assert payload["cols"]["code"]["max"] == 399

    def test_columnar_storlet_emits_catalog(self):
        ctx = _context("columnar")
        names = ctx.client.list_objects("data--columnar")
        assert names
        for name in names:
            headers = ctx.client.head_object("data--columnar", name)
            payload = json.loads(headers[CATALOG_HEADER])
            assert payload["v"] == 1
            assert payload["rows"] == 400
            assert set(payload["cols"]) == {
                "vid", "date", "index", "code", "city",
            }
