"""Failure-injection tests: queries under partial store damage.

End-to-end scenarios: replica loss mid-dataset, missing pushdown filter,
corrupted objects, device failure + recovery -- the query layer must
either transparently survive or fail loudly (never silently corrupt).
"""

import pytest

from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.swift.exceptions import SwiftError
from repro.swift.replicator import Replicator

SPEC = DatasetSpec(meters=15, intervals=80, objects=3)
SQL = (
    "SELECT vid, sum(index) AS total FROM t "
    "WHERE city LIKE 'P%' GROUP BY vid ORDER BY vid"
)


@pytest.fixture
def rig(fresh_scoop):
    upload_dataset(fresh_scoop.client, "meters", SPEC)
    fresh_scoop.register_csv_table("t", "meters", schema=METER_SCHEMA)
    return fresh_scoop


class TestReplicaLoss:
    def test_query_survives_loss_of_one_node(self, rig):
        baseline = rig.sql(SQL).collect()
        victim = next(iter(rig.cluster.object_servers.values()))
        for store in victim.devices.values():
            store.clear()
        assert rig.sql(SQL).collect() == baseline

    def test_query_survives_loss_of_two_nodes(self, rig):
        baseline = rig.sql(SQL).collect()
        victims = list(rig.cluster.object_servers.values())[:2]
        for victim in victims:
            for store in victim.devices.values():
                store.clear()
        assert rig.sql(SQL).collect() == baseline

    def test_total_data_loss_is_loud(self, rig):
        for server in rig.cluster.object_servers.values():
            for store in server.devices.values():
                store.clear()
        with pytest.raises(SwiftError):
            rig.sql(SQL).collect()

    def test_repair_then_query(self, rig):
        baseline = rig.sql(SQL).collect()
        victim = next(iter(rig.cluster.object_servers.values()))
        for store in victim.devices.values():
            store.clear()
        Replicator(rig.cluster).run_until_stable()
        assert Replicator(rig.cluster).audit() == {}
        assert rig.sql(SQL).collect() == baseline


class TestMissingFilter:
    # Both scan storlets: whichever format REPRO_FORMAT selects, the
    # active data plane loses its pushdown filter.
    SCAN_STORLETS = ("csvstorlet", "columnarstorlet")

    def _undeploy_scan_storlets(self, rig):
        for name in self.SCAN_STORLETS:
            rig.engine.undeploy(name)

    def test_undeployed_storlet_fails_loudly(self, rig):
        self._undeploy_scan_storlets(rig)
        with pytest.raises(SwiftError):
            rig.sql(SQL).collect()

    def test_redeploy_restores_service(self, rig):
        from repro.storlets import CsvStorlet
        from repro.storlets.columnar_storlet import ColumnarStorlet

        baseline = rig.sql(SQL).collect()
        self._undeploy_scan_storlets(rig)
        with pytest.raises(SwiftError):
            rig.sql(SQL).collect()
        rig.engine.deploy(CsvStorlet(), rig.client)
        rig.engine.deploy(ColumnarStorlet(), rig.client)
        assert rig.sql(SQL).collect() == baseline


class TestCorruption:
    def test_garbage_object_rows_dropped_not_crashing(self, rig):
        rig.client.put_object(
            "meters",
            "zz-corrupt.csv",
            b"\xff\xfe totally not csv \x00\x01\n" * 20,
        )
        # Re-register so partition discovery sees the new object.
        rig.register_csv_table("t2", "meters", schema=METER_SCHEMA)
        rows = rig.sql(SQL.replace("FROM t", "FROM t2")).collect()
        baseline = rig.sql(SQL).collect()
        assert rows == baseline

    def test_partially_corrupt_object_keeps_valid_rows(self, rig):
        good = b"M99999,2015-01-01 00:00:00,5.0,1.0,4.0,123,Paris,FRA,48.8,2.3\n"
        rig.client.put_container("mixed")
        rig.client.put_object(
            "mixed", "d.csv", b"garbage line\n" + good + b"another,bad\n"
        )
        rig.register_csv_table("mixed", "mixed", schema=METER_SCHEMA)
        rows = rig.sql("SELECT vid FROM mixed").collect()
        assert rows == [("M99999",)]


class TestDeviceFailureRecovery:
    def test_fail_rebalance_replicate_query(self, rig):
        baseline = rig.sql(SQL).collect()
        victim_device = next(iter(rig.cluster.object_ring.devices))
        rig.cluster.fail_device(victim_device)
        rig.cluster.ring_builder.rebalance()
        rig.cluster.refresh_ring()
        Replicator(rig.cluster).run_until_stable()
        # New relation (ring changed; discovery is fine either way).
        rig.register_csv_table("t3", "meters", schema=METER_SCHEMA)
        assert (
            rig.sql(SQL.replace("FROM t", "FROM t3")).collect() == baseline
        )


class TestCrashingFilterPipeline:
    def test_pipeline_crash_is_loud_and_object_unharmed(self, rig):
        from repro.storlets import IStorlet

        class Bomb(IStorlet):
            name = "bomb"

            def invoke(self, ins, outs, parameters, logger):
                raise RuntimeError("mid-stream failure")

        rig.engine.deploy(Bomb())
        with pytest.raises(SwiftError):
            rig.client.get_object(
                "meters",
                rig.client.list_objects("meters")[0],
                headers={"x-run-storlet": "bomb"},
            )
        # The object itself is untouched.
        _headers, body = rig.client.get_object(
            "meters", rig.client.list_objects("meters")[0]
        )
        assert len(body) > 0
