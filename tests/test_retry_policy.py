"""Property tests for the deterministic retry policy.

The resilience loop's correctness rests on three contracts:

* the schedule has exactly ``max_attempts - 1`` entries (one delay per
  retry, never one per attempt);
* every jittered delay stays within ``[(1 - jitter) * capped, capped]``
  where ``capped = min(cap, base * multiplier**attempt)``;
* attempt indices are 0-based, so the *first* retry waits on the order
  of ``backoff_base`` -- an off-by-one would start the schedule at
  ``base * multiplier``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.swift import SwiftClient, SwiftCluster
from repro.swift.retry import RetryPolicy

POLICIES = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=10),
    backoff_base=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    backoff_cap=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    backoff_multiplier=st.floats(
        min_value=1.0, max_value=4.0, allow_nan=False
    ),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)


class TestScheduleShape:
    @settings(max_examples=100, deadline=None)
    @given(policy=POLICIES)
    def test_schedule_has_one_delay_per_retry(self, policy):
        assert len(policy.schedule()) == policy.max_attempts - 1

    @settings(max_examples=100, deadline=None)
    @given(policy=POLICIES, attempts=st.integers(min_value=0, max_value=12))
    def test_explicit_length_and_determinism(self, policy, attempts):
        schedule = policy.schedule(attempts)
        assert len(schedule) == attempts
        # A pure function of (policy, attempt): recomputing any entry in
        # isolation gives the same value.
        assert schedule == [policy.delay(i) for i in range(attempts)]
        assert schedule == policy.schedule(attempts)


class TestDelayBounds:
    @settings(max_examples=150, deadline=None)
    @given(policy=POLICIES, attempt=st.integers(min_value=0, max_value=20))
    def test_delay_within_jitter_band(self, policy, attempt):
        capped = min(
            policy.backoff_cap,
            policy.backoff_base * policy.backoff_multiplier**attempt,
        )
        delay = policy.delay(attempt)
        assert delay <= capped * (1 + 1e-12)
        assert delay >= capped * (1.0 - policy.jitter) * (1 - 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(policy=POLICIES)
    def test_delays_never_exceed_cap(self, policy):
        for delay in policy.schedule(12):
            assert delay <= policy.backoff_cap * (1 + 1e-12)


class TestZeroBasedAttempts:
    def test_first_retry_waits_about_backoff_base(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, jitter=0.5
        )
        first = policy.delay(0)
        # attempt 0 -> base * multiplier**0 = base, jittered down only:
        # a 1-based loop would compute base * multiplier instead.
        assert 0.05 <= first <= 0.1

    def test_unjittered_schedule_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_base=0.1,
            backoff_cap=100.0,
            backoff_multiplier=2.0,
            jitter=0.0,
        )
        assert policy.schedule() == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_client_consumes_zero_based_indices(self):
        """The resilience loop's recorded delays must equal the policy's
        own schedule from index 0 -- proving the loop passes the retry
        number, not the attempt number."""
        from repro.faults import FaultPlan, FlakyProxy, install_fault_plan

        policy = RetryPolicy(max_attempts=3, backoff_base=0.1)
        cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
        client = SwiftClient(cluster, "AUTH_retry", retry_policy=policy)
        install_fault_plan(cluster, FaultPlan(faults=(FlakyProxy(times=None),)))

        before = client.stats.requests
        response = client.request("GET", "/AUTH_retry/c/o")
        assert response.status == 503
        assert client.stats.requests - before == policy.max_attempts
        assert client.stats.delays == policy.schedule()
        assert client.stats.delays[0] == policy.delay(0)
        assert client.stats.backoff_seconds == pytest.approx(
            sum(policy.schedule())
        )
