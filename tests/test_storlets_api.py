"""Tests for storlet streams, logger and sandbox accounting details."""

import pytest

from repro.storlets import (
    IStorlet,
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.storlets.sandbox import CostModel, Sandbox


class TestInputStream:
    def test_read_all(self):
        stream = StorletInputStream([b"ab", b"cd", b"ef"])
        assert stream.read() == b"abcdef"

    def test_read_exact_sizes(self):
        stream = StorletInputStream([b"abc", b"def", b"gh"])
        assert stream.read(2) == b"ab"
        assert stream.read(3) == b"cde"
        assert stream.read(10) == b"fgh"
        assert stream.read(5) == b""

    def test_read_then_iterate(self):
        stream = StorletInputStream([b"abc", b"def"])
        assert stream.read(1) == b"a"
        assert b"".join(stream.iter_chunks()) == b"bcdef"

    def test_empty_chunks_skipped(self):
        stream = StorletInputStream([b"", b"x", b"", b"y"])
        assert list(stream.iter_chunks()) == [b"x", b"y"]

    def test_metadata_carried(self):
        stream = StorletInputStream([b""], {"x-object-meta-a": "1"})
        assert stream.metadata == {"x-object-meta-a": "1"}


class TestOutputStream:
    def test_write_collects_chunks(self):
        out = StorletOutputStream()
        out.write(b"a")
        out.write(b"")
        out.write(b"bc")
        assert out.chunks() == [b"a", b"bc"]
        assert out.getvalue() == b"abc"
        assert out.bytes_written == 3

    def test_write_after_close_raises(self):
        out = StorletOutputStream()
        out.close()
        with pytest.raises(StorletException):
            out.write(b"late")

    def test_non_bytes_rejected(self):
        out = StorletOutputStream()
        with pytest.raises(StorletException):
            out.write("text")  # type: ignore[arg-type]

    def test_metadata_set(self):
        out = StorletOutputStream()
        out.set_metadata({"x-object-meta-k": "v"})
        assert out.metadata["x-object-meta-k"] == "v"


class TestLogger:
    def test_collects_lines(self):
        logger = StorletLogger("x")
        logger.emit("one")
        logger.emitLog("two")  # Java SDK alias
        assert list(logger) == ["one", "two"]


class _Doubler(IStorlet):
    name = "doubler"

    def invoke(self, in_streams, out_streams, parameters, logger):
        data = in_streams[0].read()
        out_streams[0].write(data * 2)


class _Exploder(IStorlet):
    name = "exploder"

    def invoke(self, in_streams, out_streams, parameters, logger):
        in_streams[0].read()
        raise ValueError("kaboom")


class TestSandbox:
    def test_accounting(self):
        sandbox = Sandbox("n")
        out = sandbox.run(_Doubler(), StorletInputStream([b"xyz"]), {})
        assert out.getvalue() == b"xyzxyz"
        assert sandbox.stats.invocations == 1
        assert sandbox.stats.bytes_in == 3
        assert sandbox.stats.bytes_out == 6
        assert sandbox.stats.cpu_seconds > 0

    def test_records_carry_parameters(self):
        sandbox = Sandbox("n")
        sandbox.run(
            _Doubler(), StorletInputStream([b"x"]), {"filters": "[]"}
        )
        record = sandbox.records[0]
        assert record.storlet == "doubler"
        assert record.parameters == {"filters": "[]"}

    def test_memory_charged_once(self):
        sandbox = Sandbox("n", memory_overhead=1000)
        sandbox.run(_Doubler(), StorletInputStream([b"x"]), {})
        sandbox.run(_Doubler(), StorletInputStream([b"y"]), {})
        assert sandbox.stats.memory_bytes == 1000

    def test_crash_wrapped_and_counted(self):
        sandbox = Sandbox("n")
        with pytest.raises(StorletException):
            sandbox.run(_Exploder(), StorletInputStream([b"x"]), {})
        assert sandbox.stats.errors == 1

    def test_discard_ratio(self):
        sandbox = Sandbox("n")

        class Halver(IStorlet):
            name = "halver"

            def invoke(self, ins, outs, parameters, logger):
                data = ins[0].read()
                outs[0].write(data[: len(data) // 2])

        sandbox.run(Halver(), StorletInputStream([b"12345678"]), {})
        assert sandbox.stats.discard_ratio() == pytest.approx(0.5)

    def test_cost_model_asymmetry(self):
        """Column projection costs more than row filtering (the paper's
        Section VI-A observation, encoded in the cost model)."""
        model = CostModel()
        row_cost = model.invocation_cost(
            1000, 500, filtered_rows=True, projected_columns=False
        )
        column_cost = model.invocation_cost(
            1000, 500, filtered_rows=False, projected_columns=True
        )
        assert column_cost > row_cost


class TestSandboxLimits:
    def test_output_limit_enforced(self):
        sandbox = Sandbox("n", max_output_bytes=4)
        with pytest.raises(StorletException) as excinfo:
            sandbox.run(_Doubler(), StorletInputStream([b"abc"]), {})
        assert "output limit" in str(excinfo.value)
        assert sandbox.stats.errors == 1

    def test_output_within_limit_passes(self):
        sandbox = Sandbox("n", max_output_bytes=6)
        out = sandbox.run(_Doubler(), StorletInputStream([b"abc"]), {})
        assert out.getvalue() == b"abcabc"

    def test_cpu_budget_enforced(self):
        sandbox = Sandbox("n", max_cpu_seconds=1e-12)
        with pytest.raises(StorletException) as excinfo:
            sandbox.run(
                _Doubler(), StorletInputStream([b"x" * 10_000]), {}
            )
        assert "CPU budget" in str(excinfo.value)

    def test_engine_passes_limits_to_sandboxes(self):
        from repro.storlets import StorletEngine

        engine = StorletEngine(max_output_bytes=123)
        sandbox = engine.sandbox_for("storage0")
        assert sandbox.max_output_bytes == 123
