"""Tests for the storlet engine: deployment, interception, pipelining,
staging, policies and sandbox accounting."""

import json

import pytest

from repro.storlets import (
    CsvStorlet,
    IStorlet,
    StorletEngine,
    StorletException,
    StorletRequestHeaders,
)
from repro.storlets.engine import StorletPolicy
from repro.swift import SwiftClient, SwiftCluster


class UpperStorlet(IStorlet):
    """Test helper: uppercases the stream."""

    name = "upper"

    def invoke(self, in_streams, out_streams, parameters, logger):
        for chunk in in_streams[0].iter_chunks():
            out_streams[0].write(chunk.upper())
        out_streams[0].close()


class ReverseLineStorlet(IStorlet):
    """Test helper: reverses the bytes of each line."""

    name = "revline"

    def invoke(self, in_streams, out_streams, parameters, logger):
        data = in_streams[0].read()
        lines = data.split(b"\n")
        out_streams[0].write(b"\n".join(line[::-1] for line in lines))
        out_streams[0].close()


class BoomStorlet(IStorlet):
    name = "boom"

    def invoke(self, in_streams, out_streams, parameters, logger):
        raise RuntimeError("storlet crashed")


@pytest.fixture
def stack():
    engine = StorletEngine()
    cluster = SwiftCluster(
        storage_node_count=3,
        disks_per_node=2,
        proxy_count=2,
        proxy_middleware=[engine.proxy_middleware()],
        object_middleware=[engine.object_middleware()],
    )
    client = SwiftClient(cluster, "AUTH_t")
    engine.deploy(UpperStorlet(), client)
    engine.deploy(ReverseLineStorlet(), client)
    engine.deploy(BoomStorlet())
    client.put_container("c")
    return engine, cluster, client


class TestDeployment:
    def test_deploy_registers_and_stores_descriptor(self, stack):
        engine, _cluster, client = stack
        assert "upper" in engine.deployed()
        _headers, body = client.get_object(
            StorletEngine.STORLET_CONTAINER, "upper"
        )
        descriptor = json.loads(body)
        assert descriptor["name"] == "upper"

    def test_get_unknown_storlet_raises(self, stack):
        engine, _cluster, _client = stack
        with pytest.raises(StorletException):
            engine.get("ghost")

    def test_undeploy(self, stack):
        engine, _cluster, _client = stack
        engine.undeploy("upper")
        assert "upper" not in engine.deployed()


class TestGetInterception:
    def test_storlet_transforms_get(self, stack):
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"hello")
        _headers, body = client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
        )
        assert body == b"HELLO"

    def test_get_without_header_untouched(self, stack):
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"hello")
        _headers, body = client.get_object("c", "o")
        assert body == b"hello"

    def test_stored_object_unaltered_by_storlet_get(self, stack):
        """Multiple jobs get their own filtered view; the object stays."""
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"hello")
        client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
        )
        _headers, body = client.get_object("c", "o")
        assert body == b"hello"

    def test_pipelining_applies_in_order(self, stack):
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"abc\ndef")
        _headers, body = client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper,revline"}
        )
        assert body == b"CBA\nFED"
        _headers, body = client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "revline,upper"}
        )
        assert body == b"CBA\nFED"  # same here; order visible in header
        assert _headers[StorletRequestHeaders.INVOKED] == "revline,upper"

    def test_invoked_header_reports_pipeline(self, stack):
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"x")
        headers, _body = client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
        )
        assert headers[StorletRequestHeaders.INVOKED] == "upper"

    def test_bypass_header_skips_execution(self, stack):
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"hello")
        _headers, body = client.get_object(
            "c",
            "o",
            headers={
                StorletRequestHeaders.RUN: "upper",
                StorletRequestHeaders.BYPASS: "1",
            },
        )
        assert body == b"hello"

    def test_crashing_storlet_propagates_as_error(self, stack):
        _engine, _cluster, client = stack
        client.put_object("c", "o", b"x")
        from repro.swift.exceptions import SwiftError

        with pytest.raises(SwiftError):
            client.get_object(
                "c", "o", headers={StorletRequestHeaders.RUN: "boom"}
            )


class TestStaging:
    def test_object_tier_execution_charged_to_storage_node(self, stack):
        engine, _cluster, client = stack
        client.put_object("c", "o", b"hello")
        client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
        )
        nodes = [
            node
            for node, sandbox in engine.all_sandboxes().items()
            if sandbox.stats.invocations
        ]
        assert nodes and all(node.startswith("storage") for node in nodes)

    def test_proxy_tier_execution_charged_to_proxy(self, stack):
        engine, _cluster, client = stack
        client.put_object("c", "o", b"hello")
        _headers, body = client.get_object(
            "c",
            "o",
            headers={
                StorletRequestHeaders.RUN: "upper",
                StorletRequestHeaders.RUN_ON: "proxy",
            },
        )
        assert body == b"HELLO"
        nodes = [
            node
            for node, sandbox in engine.all_sandboxes().items()
            if sandbox.stats.invocations
        ]
        assert nodes and all(node.startswith("proxy") for node in nodes)


class TestPutPath:
    def test_put_storlet_transforms_before_storage(self, stack):
        _engine, _cluster, client = stack
        client.put_object(
            "c", "o", b"hello", headers={StorletRequestHeaders.RUN: "upper"}
        )
        _headers, body = client.get_object("c", "o")
        assert body == b"HELLO"

    def test_put_storlet_runs_once_despite_replication(self, stack):
        engine, cluster, client = stack
        replicas_before = cluster.total_object_count()
        client.put_object(
            "c", "o", b"hello", headers={StorletRequestHeaders.RUN: "upper"}
        )
        total_invocations = sum(
            sandbox.stats.invocations
            for sandbox in engine.all_sandboxes().values()
        )
        assert total_invocations == 1
        new_replicas = cluster.total_object_count() - replicas_before
        assert new_replicas == cluster.object_ring.replica_count


class TestPolicies:
    def test_put_policy_enforced_without_header(self, stack):
        engine, _cluster, client = stack
        engine.set_policy(
            "AUTH_t", "c", StorletPolicy(storlet="upper", method="PUT")
        )
        client.put_object("c", "auto", b"quiet")
        _headers, body = client.get_object("c", "auto")
        assert body == b"QUIET"

    def test_policy_scoped_to_container(self, stack):
        engine, _cluster, client = stack
        engine.set_policy(
            "AUTH_t", "c", StorletPolicy(storlet="upper", method="PUT")
        )
        client.put_container("other")
        client.put_object("other", "o", b"quiet")
        _headers, body = client.get_object("other", "o")
        assert body == b"quiet"

    def test_disabled_policy_ignored(self, stack):
        engine, _cluster, client = stack
        engine.set_policy(
            "AUTH_t",
            "c",
            StorletPolicy(storlet="upper", method="PUT", enabled=False),
        )
        client.put_object("c", "o", b"quiet")
        _headers, body = client.get_object("c", "o")
        assert body == b"quiet"

    def test_clear_policies(self, stack):
        engine, _cluster, client = stack
        engine.set_policy(
            "AUTH_t", "c", StorletPolicy(storlet="upper", method="PUT")
        )
        engine.clear_policies("AUTH_t", "c")
        client.put_object("c", "o", b"quiet")
        _headers, body = client.get_object("c", "o")
        assert body == b"quiet"


class TestSandboxAccounting:
    def test_bytes_in_out_recorded(self, stack):
        engine, _cluster, client = stack
        client.put_object("c", "o", b"a" * 1000)
        client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
        )
        bytes_in, bytes_out = engine.total_bytes()
        assert bytes_in == 1000
        assert bytes_out == 1000

    def test_cpu_seconds_accumulate(self, stack):
        engine, _cluster, client = stack
        client.put_object("c", "o", b"a" * 10_000)
        client.get_object(
            "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
        )
        total_cpu = sum(
            sandbox.stats.cpu_seconds
            for sandbox in engine.all_sandboxes().values()
        )
        assert total_cpu > 0

    def test_sandbox_warmup_charges_memory_once(self, stack):
        engine, _cluster, client = stack
        client.put_object("c", "o", b"x")
        for _ in range(3):
            client.get_object(
                "c", "o", headers={StorletRequestHeaders.RUN: "upper"}
            )
        for sandbox in engine.all_sandboxes().values():
            if sandbox.stats.invocations:
                assert sandbox.stats.memory_bytes == sandbox.memory_overhead

    def test_error_counted(self, stack):
        engine, _cluster, client = stack
        client.put_object("c", "o", b"x")
        from repro.swift.exceptions import SwiftError

        with pytest.raises(SwiftError):
            client.get_object(
                "c", "o", headers={StorletRequestHeaders.RUN: "boom"}
            )
        errors = sum(
            sandbox.stats.errors
            for sandbox in engine.all_sandboxes().values()
        )
        # A runtime storlet failure triggers replica failover, so the
        # crash is retried once per replica before surfacing.
        assert errors == 3
