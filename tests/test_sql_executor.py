"""Tests for the volcano executor, including a brute-force differential
property test of GROUP BY aggregation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import Schema, execute_query
from repro.sql.errors import SqlAnalysisError
from repro.sql.types import DataType

SCHEMA = Schema.of("vid", "date", "index:float", "city")
ROWS = [
    ("m1", "2015-01-01", 10.0, "Rotterdam"),
    ("m1", "2015-01-02", 12.0, "Rotterdam"),
    ("m2", "2015-01-01", 5.0, "Paris"),
    ("m2", "2015-02-01", 7.0, "Paris"),
    ("m3", "2015-02-01", None, "Berlin"),
]


def run(sql, rows=None):
    return execute_query(sql, SCHEMA, rows if rows is not None else ROWS)


class TestProjection:
    def test_select_columns(self):
        schema, rows = run("SELECT vid, city FROM t")
        assert schema.names == ["vid", "city"]
        assert rows[0] == ("m1", "Rotterdam")

    def test_select_star(self):
        schema, rows = run("SELECT * FROM t")
        assert schema.names == SCHEMA.names
        assert rows == ROWS

    def test_computed_column_with_alias(self):
        schema, rows = run("SELECT index * 2 AS doubled FROM t")
        assert schema.names == ["doubled"]
        assert rows[0] == (20.0,)

    def test_null_propagates_in_projection(self):
        _schema, rows = run("SELECT index + 1 FROM t")
        assert rows[-1] == (None,)


class TestFilter:
    def test_where_filters_rows(self):
        _schema, rows = run("SELECT vid FROM t WHERE city = 'Paris'")
        assert rows == [("m2",), ("m2",)]

    def test_null_predicate_excludes_row(self):
        _schema, rows = run("SELECT vid FROM t WHERE index > 0")
        assert ("m3",) not in rows

    def test_like_filter(self):
        _schema, rows = run("SELECT vid FROM t WHERE date LIKE '2015-02%'")
        assert rows == [("m2",), ("m3",)]


class TestAggregation:
    def test_global_aggregate(self):
        _schema, rows = run("SELECT sum(index), count(*) FROM t")
        assert rows == [(34.0, 5)]

    def test_global_aggregate_on_empty_input(self):
        _schema, rows = run("SELECT count(*), sum(index) FROM t", rows=[])
        assert rows == [(0, None)]

    def test_group_by_column(self):
        _schema, rows = run(
            "SELECT city, sum(index) FROM t GROUP BY city ORDER BY city"
        )
        assert rows == [
            ("Berlin", None),
            ("Paris", 12.0),
            ("Rotterdam", 22.0),
        ]

    def test_group_by_expression(self):
        _schema, rows = run(
            "SELECT SUBSTRING(date, 0, 7) AS month, sum(index) FROM t "
            "GROUP BY SUBSTRING(date, 0, 7) ORDER BY SUBSTRING(date, 0, 7)"
        )
        assert rows == [("2015-01", 27.0), ("2015-02", 7.0)]

    def test_first_value(self):
        _schema, rows = run(
            "SELECT vid, first_value(city) FROM t GROUP BY vid ORDER BY vid"
        )
        assert rows == [
            ("m1", "Rotterdam"),
            ("m2", "Paris"),
            ("m3", "Berlin"),
        ]

    def test_min_max_in_one_query(self):
        _schema, rows = run(
            "SELECT min(index), max(index) FROM t WHERE city = 'Paris'"
        )
        assert rows == [(5.0, 7.0)]

    def test_count_distinct(self):
        _schema, rows = run("SELECT count(DISTINCT city) FROM t")
        assert rows == [(3,)]

    def test_avg(self):
        _schema, rows = run("SELECT avg(index) FROM t WHERE vid = 'm1'")
        assert rows == [(11.0,)]

    def test_expression_over_aggregates(self):
        _schema, rows = run("SELECT max(index) - min(index) FROM t")
        assert rows == [(7.0,)]

    def test_ungrouped_column_rejected(self):
        with pytest.raises(SqlAnalysisError):
            run("SELECT city, sum(index) FROM t GROUP BY vid")

    def test_aggregate_output_types(self):
        schema, _rows = run("SELECT count(*) AS n, avg(index) AS a FROM t")
        assert schema.field("n").dtype is DataType.INT
        assert schema.field("a").dtype is DataType.FLOAT


class TestSortLimitDistinct:
    def test_order_by_desc(self):
        _schema, rows = run(
            "SELECT vid, index FROM t WHERE index IS NOT NULL "
            "ORDER BY index DESC"
        )
        assert [r[1] for r in rows] == [12.0, 10.0, 7.0, 5.0]

    def test_order_by_multiple_keys(self):
        _schema, rows = run("SELECT city, date FROM t ORDER BY city, date DESC")
        assert rows[0][0] == "Berlin"
        paris = [r for r in rows if r[0] == "Paris"]
        assert paris[0][1] > paris[1][1]

    def test_nulls_sort_last(self):
        _schema, rows = run("SELECT vid, index FROM t ORDER BY index")
        assert rows[-1] == ("m3", None)

    def test_order_by_alias(self):
        _schema, rows = run(
            "SELECT vid, sum(index) AS total FROM t GROUP BY vid "
            "ORDER BY total DESC"
        )
        assert rows[0][0] == "m1"

    def test_order_by_group_expression_after_aggregate(self):
        _schema, rows = run(
            "SELECT sum(index) FROM t "
            "GROUP BY SUBSTRING(date, 0, 7) ORDER BY SUBSTRING(date, 0, 7) DESC"
        )
        assert rows == [(7.0,), (27.0,)]

    def test_unresolvable_order_key_raises(self):
        with pytest.raises(SqlAnalysisError):
            run("SELECT vid FROM t GROUP BY vid ORDER BY nonexistent")

    def test_limit(self):
        _schema, rows = run("SELECT vid FROM t LIMIT 2")
        assert len(rows) == 2

    def test_distinct(self):
        _schema, rows = run("SELECT DISTINCT city FROM t")
        assert sorted(rows) == [("Berlin",), ("Paris",), ("Rotterdam",)]

    def test_distinct_then_order(self):
        _schema, rows = run("SELECT DISTINCT city FROM t ORDER BY city")
        assert rows == [("Berlin",), ("Paris",), ("Rotterdam",)]


class TestDifferentialProperty:
    """Hash aggregation must agree with a brute-force reference."""

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.sampled_from(["x", "y"]),
                st.one_of(
                    st.none(), st.floats(min_value=-100, max_value=100)
                ),
                st.sampled_from(["P", "Q", "R"]),
            ),
            max_size=40,
        )
    )
    def test_group_by_sum_matches_reference(self, rows):
        _schema, result = execute_query(
            "SELECT vid, sum(index) FROM t GROUP BY vid ORDER BY vid",
            SCHEMA,
            rows,
        )
        groups = {row[0] for row in rows}
        sums = {}
        for vid, _date, index, _city in rows:
            if index is not None:
                sums[vid] = sums.get(vid, 0.0) + index
        assert len(result) == len(groups)
        for vid, total in result:
            assert vid in groups
            if vid in sums:
                assert total == pytest.approx(sums[vid])
            else:
                assert total is None  # all inputs were NULL

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.text(
                    alphabet=st.characters(
                        min_codepoint=48, max_codepoint=57
                    ),
                    min_size=1,
                    max_size=8,
                ),
                st.floats(min_value=0, max_value=10),
                st.sampled_from(["P", "Q"]),
            ),
            max_size=40,
        ),
        threshold=st.floats(min_value=0, max_value=10),
    )
    def test_filter_count_matches_reference(self, rows, threshold):
        _schema, result = execute_query(
            f"SELECT count(*) FROM t WHERE index > {threshold}",
            SCHEMA,
            rows,
        )
        expected = sum(1 for row in rows if row[2] > threshold)
        assert result == [(expected,)]


class TestHaving:
    def test_having_on_aggregate(self):
        _schema, rows = run(
            "SELECT city, sum(index) AS total FROM t GROUP BY city "
            "HAVING sum(index) > 10 ORDER BY city"
        )
        assert rows == [("Paris", 12.0), ("Rotterdam", 22.0)]

    def test_having_on_unselected_aggregate(self):
        _schema, rows = run(
            "SELECT city FROM t GROUP BY city HAVING count(*) >= 2 "
            "ORDER BY city"
        )
        assert rows == [("Paris",), ("Rotterdam",)]

    def test_having_on_group_key(self):
        _schema, rows = run(
            "SELECT city, count(*) FROM t GROUP BY city "
            "HAVING city LIKE 'R%'"
        )
        assert rows == [("Rotterdam", 2)]

    def test_having_combined_condition(self):
        _schema, rows = run(
            "SELECT vid, sum(index) FROM t GROUP BY vid "
            "HAVING sum(index) > 5 AND vid <> 'm1' ORDER BY vid"
        )
        assert rows == [("m2", 12.0)]

    def test_having_without_group_by_on_global_aggregate(self):
        _schema, rows = run(
            "SELECT sum(index) FROM t HAVING count(*) > 100"
        )
        assert rows == []

    def test_having_without_aggregates_rejected(self):
        with pytest.raises(SqlAnalysisError):
            run("SELECT vid FROM t HAVING vid = 'm1'")

    def test_having_on_ungrouped_column_rejected(self):
        with pytest.raises(SqlAnalysisError):
            run(
                "SELECT city, count(*) FROM t GROUP BY city "
                "HAVING date LIKE '2015%'"
            )

    def test_having_round_trips_through_to_sql(self):
        from repro.sql.parser import parse_query

        sql = "SELECT city, SUM(index) FROM t GROUP BY city HAVING (SUM(index) > 5)"
        query = parse_query(sql)
        assert parse_query(query.to_sql()).to_sql() == query.to_sql()
