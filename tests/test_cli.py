"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "/tmp/x"])
        assert args.meters == 100
        assert args.out_dir == pathlib.Path("/tmp/x")


class TestGenerate:
    def test_writes_csv_files(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                str(tmp_path / "data"),
                "--meters",
                "5",
                "--intervals",
                "8",
                "--objects",
                "2",
            ]
        )
        assert code == 0
        files = sorted((tmp_path / "data").glob("*.csv"))
        assert len(files) == 2
        total_rows = sum(
            file.read_bytes().count(b"\n") for file in files
        )
        assert total_rows == 40

    def test_header_flag(self, tmp_path):
        main(
            [
                "generate",
                str(tmp_path / "data"),
                "--meters",
                "2",
                "--intervals",
                "2",
                "--objects",
                "1",
                "--header",
            ]
        )
        first_line = (
            (tmp_path / "data" / "meter-0000.csv")
            .read_bytes()
            .split(b"\n")[0]
        )
        assert first_line.startswith(b"vid,date,index")

    def test_deterministic_given_seed(self, tmp_path):
        for directory in ("a", "b"):
            main(
                [
                    "generate",
                    str(tmp_path / directory),
                    "--meters",
                    "3",
                    "--intervals",
                    "3",
                    "--objects",
                    "1",
                    "--seed",
                    "42",
                ]
            )
        assert (tmp_path / "a" / "meter-0000.csv").read_bytes() == (
            tmp_path / "b" / "meter-0000.csv"
        ).read_bytes()


class TestQueries:
    def test_lists_all_seven(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        for name in (
            "ShowMapCons",
            "ShowPiemonth",
            "Showday",
            "ShowGraphHCHP",
        ):
            assert name in out


class TestExperiment:
    def test_fig1_prints_table(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "GB" in out

    def test_adaptive_prints_table(self, capsys):
        assert main(["experiment", "adaptive"]) == 0
        assert "adaptive" in capsys.readouterr().out.lower()


class TestDemo:
    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--meters", "10", "--intervals", "50"]) == 0
        out = capsys.readouterr().out
        assert "data selectivity" in out
        assert "pushdown moved" in out


class TestTrace:
    def test_trace_json_round_trips(self, capsys):
        import json

        assert (
            main(["trace", "--meters", "5", "--intervals", "20"]) == 0
        )
        out = capsys.readouterr().out
        exported = json.loads(out)
        assert exported["span_count"] == len(exported["spans"])
        assert exported["byte_totals"]["connector"]["spans"] > 0

    def test_trace_chrome_format_to_file(self, tmp_path):
        import json

        target = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--meters",
                    "5",
                    "--intervals",
                    "20",
                    "--format",
                    "chrome",
                    "--out",
                    str(target),
                ]
            )
            == 0
        )
        exported = json.loads(target.read_text())
        assert exported["traceEvents"]
        assert all(
            event["ph"] in ("X", "M") for event in exported["traceEvents"]
        )
