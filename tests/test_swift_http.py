"""Tests for the HTTP substrate: headers, paths, ranges, bodies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.swift.exceptions import BadRequest
from repro.swift.http import (
    HeaderDict,
    Request,
    Response,
    chunk_bytes,
    collect_body,
    parse_path,
    parse_range,
)


class TestHeaderDict:
    def test_case_insensitive_get(self):
        headers = HeaderDict({"Content-Type": "text/csv"})
        assert headers["content-type"] == "text/csv"
        assert headers["CONTENT-TYPE"] == "text/csv"

    def test_case_insensitive_contains(self):
        headers = HeaderDict({"X-Auth-Token": "t"})
        assert "x-auth-token" in headers
        assert "X-AUTH-TOKEN" in headers

    def test_values_coerced_to_strings(self):
        headers = HeaderDict()
        headers["content-length"] = 42
        assert headers["content-length"] == "42"

    def test_kwargs_constructor_maps_underscores(self):
        headers = HeaderDict(x_auth_token="t")
        assert headers["x-auth-token"] == "t"

    def test_items_and_kwargs_normalize_to_the_same_slot(self):
        # Regression: the items path and the kwargs path must fold
        # underscores identically -- one logical header, one slot,
        # last write wins.
        headers = HeaderDict(items={"x_foo": "a"}, x_foo="b")
        assert len(headers) == 1
        assert headers["x-foo"] == "b"
        assert headers["X_FOO"] == "b"

    def test_underscore_lookup_matches_dash_insert(self):
        headers = HeaderDict({"x-storlet-run": "1"})
        assert headers["x_storlet_run"] == "1"
        assert "X_Storlet_Run" in headers
        headers.update({"x_storlet_run": "2"})
        assert len(headers) == 1
        assert headers["x-storlet-run"] == "2"

    def test_setdefault_and_pop_fold_underscores(self):
        headers = HeaderDict()
        headers.setdefault("x_a", "1")
        assert headers.setdefault("x-a", "2") == "1"
        assert headers.pop("X_A") == "1"
        assert not headers

    def test_storlet_parameter_names_round_trip(self):
        # Underscore parameter names survive the wire's dash folding:
        # set_parameters writes them as headers, parameters_from
        # restores the canonical underscore spelling.
        from repro.storlets.engine import StorletRequestHeaders

        headers = HeaderDict()
        parameters = {"has_header": "true", "max_rows": "10"}
        StorletRequestHeaders.set_parameters(headers, parameters)
        assert StorletRequestHeaders.parameters_from(headers) == parameters

    def test_update_and_copy_are_independent(self):
        original = HeaderDict({"a": "1"})
        clone = original.copy()
        clone["a"] = "2"
        assert original["a"] == "1"

    def test_pop_with_default(self):
        headers = HeaderDict({"a": "1"})
        assert headers.pop("A") == "1"
        assert headers.pop("missing", "dflt") == "dflt"

    def test_delete(self):
        headers = HeaderDict({"A": "1"})
        del headers["a"]
        assert "a" not in headers


class TestParsePath:
    def test_full_path(self):
        assert parse_path("/acct/cont/obj") == ("acct", "cont", "obj")

    def test_object_names_may_contain_slashes(self):
        assert parse_path("/a/c/dir/sub/o.csv") == ("a", "c", "dir/sub/o.csv")

    def test_container_only(self):
        assert parse_path("/a/c") == ("a", "c", None)

    def test_account_only(self):
        assert parse_path("/a") == ("a", None, None)

    def test_missing_leading_slash_raises(self):
        with pytest.raises(BadRequest):
            parse_path("a/c/o")

    def test_empty_account_raises(self):
        with pytest.raises(BadRequest):
            parse_path("/")


class TestParseRange:
    def test_simple_range(self):
        assert parse_range("bytes=0-9", 100) == (0, 9)

    def test_open_ended_range(self):
        assert parse_range("bytes=90-", 100) == (90, 99)

    def test_end_clamped_to_size(self):
        assert parse_range("bytes=10-5000", 100) == (10, 99)

    def test_suffix_range(self):
        assert parse_range("bytes=-10", 100) == (90, 99)

    def test_suffix_larger_than_object(self):
        assert parse_range("bytes=-500", 100) == (0, 99)

    def test_suffix_zero_is_unsatisfiable(self):
        # RFC 7233: a zero-length suffix matches no bytes; the resolved
        # offsets place start past the object so the backend answers 416.
        start, end = parse_range("bytes=-0", 100)
        assert start >= 100
        assert start > end

    def test_end_before_start_is_ignored(self):
        # RFC 7233 2.1: last-byte-pos < first-byte-pos makes the
        # byte-range-spec syntactically invalid -> the header is ignored
        # (None), NOT a 416.
        assert parse_range("bytes=10-5", 100) is None

    def test_any_range_on_zero_byte_object_is_unsatisfiable(self):
        # There is no byte to serve, so every well-formed range must
        # resolve to offsets the backend maps to 416 (start >= size or
        # start > end), never to a zero-length "valid" slice.
        size = 0
        for header in ("bytes=0-0", "bytes=0-", "bytes=-1", "bytes=-0"):
            resolved = parse_range(header, size)
            assert resolved is not None, header
            start, end = resolved
            unsatisfiable = start >= size or start > end
            assert unsatisfiable, header

    def test_malformed_raises(self):
        for bad in ("bytes=", "0-9", "bytes=a-b", "bytes=5"):
            with pytest.raises(BadRequest):
                parse_range(bad, 100)

    @settings(max_examples=60, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=1000),
        end=st.integers(min_value=0, max_value=2000),
        size=st.integers(min_value=1, max_value=1500),
    )
    def test_valid_ranges_stay_within_object(self, start, end, size):
        resolved = parse_range(f"bytes={start}-{end}", size)
        if end < start:
            # Syntactically invalid spec: header ignored per RFC 7233.
            assert resolved is None
            return
        result_start, result_end = resolved
        assert result_start == start
        assert result_end <= size - 1


class TestBodies:
    def test_collect_none(self):
        assert collect_body(None) == b""

    def test_collect_bytes_identity(self):
        assert collect_body(b"abc") == b"abc"

    def test_collect_iterator(self):
        assert collect_body(iter([b"a", b"b", b"c"])) == b"abc"

    def test_chunk_bytes_roundtrip(self):
        data = bytes(range(256)) * 10
        assert b"".join(chunk_bytes(data, 100)) == data

    def test_chunk_sizes(self):
        chunks = list(chunk_bytes(b"x" * 250, 100))
        assert [len(c) for c in chunks] == [100, 100, 50]

    def test_response_read_caches(self):
        response = Response(200, body=iter([b"a", b"b"]))
        assert response.read() == b"ab"
        assert response.read() == b"ab"  # second read must not drain again

    def test_response_iter_body_streams_bytes(self):
        response = Response(200, body=b"x" * 130)
        chunks = list(response.iter_body(chunk_size=50))
        assert [len(c) for c in chunks] == [50, 50, 30]

    def test_request_body_bytes_materializes(self):
        request = Request("PUT", "/a/c/o", body=iter([b"1", b"2"]))
        assert request.body_bytes() == b"12"
        assert request.body == b"12"

    def test_request_copy_isolates_headers(self):
        request = Request("GET", "/a/c/o", {"x": "1"})
        clone = request.copy()
        clone.headers["x"] = "2"
        assert request.headers["x"] == "1"

    def test_response_ok_and_reason(self):
        assert Response(204).ok
        assert not Response(404).ok
        assert Response(404).reason == "Not Found"
