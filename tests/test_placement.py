"""Cost-based placement: model, engine, feedback loop and wiring."""

import pytest

from repro.core import ScoopContext
from repro.placement import (
    PlacementCostModel,
    PlacementEngine,
    engine_from_environment,
    task_signature,
)
from repro.placement.cost import TIERS
from repro.sql.types import Schema

SCHEMA = Schema.of("vid", "date", "index:int", "city")
CSV = "\n".join(
    f"v{i % 5},2017-04-01,{i % 9},city{i % 3}" for i in range(240)
) + "\n"


def build_context(**kwargs):
    ctx = ScoopContext(chunk_size=4096, **kwargs)
    ctx.upload_csv("meters", "a.csv", CSV[: len(CSV) // 2])
    ctx.upload_csv("meters", "b.csv", CSV[len(CSV) // 2 :])
    ctx.register_csv_table("m", "meters", schema=SCHEMA)
    return ctx


class TestCostModel:
    def test_estimates_every_tier(self):
        model = PlacementCostModel()
        estimates = model.estimate_all(1e10, 0.1, row_filtering=True)
        assert set(estimates) == set(TIERS)
        assert all(e.duration > 0 for e in estimates.values())

    def test_pushdown_wins_large_selective(self):
        model = PlacementCostModel()
        estimates = model.estimate_all(100e9, 0.05, row_filtering=True)
        assert estimates["object"].duration < estimates["compute"].duration

    def test_plain_wins_small_datasets(self):
        # Fixed storlet overheads dominate tiny jobs: classic ingest is
        # cheapest, which is why adaptive placement keeps functional
        # (megabyte-scale) runs compute-side.
        model = PlacementCostModel()
        estimates = model.estimate_all(64e6, 0.1, row_filtering=True)
        assert estimates["compute"].duration <= estimates["object"].duration

    def test_proxy_cpu_saturates_at_high_selectivity(self):
        # The staging ablation, as a cost-model fact: at very high
        # selectivity over a big dataset the proxy's small CPU pool is
        # the bottleneck the object tier does not have.
        model = PlacementCostModel()
        estimates = model.estimate_all(100e9, 0.05, row_filtering=True)
        assert estimates["object"].duration < estimates["proxy"].duration

    def test_aggregation_shrinks_transfer(self):
        model = PlacementCostModel()
        plain = model.estimate("object", 10e9, 0.5, row_filtering=True)
        agg = model.estimate(
            "object", 10e9, 0.5, row_filtering=True, aggregation=True
        )
        assert agg.bytes_over_interconnect < plain.bytes_over_interconnect

    def test_memoizes_repeat_estimates(self):
        model = PlacementCostModel()
        first = model.estimate("object", 1e9, 0.3, row_filtering=True)
        assert model.estimate("object", 1e9, 0.3, row_filtering=True) is first

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            PlacementCostModel().estimate("edge", 1e9, 0.5)


class TestEngine:
    def test_adaptive_picks_argmin(self):
        engine = PlacementEngine()
        decision = engine.decide("sig", 100e9, kept_hint=0.05,
                                 row_filtering=True)
        best = min(
            decision.estimates.values(), key=lambda e: e.duration
        )
        assert decision.tier == best.tier

    @pytest.mark.parametrize("mode", ["object", "proxy", "compute"])
    def test_fixed_modes_pin_the_tier(self, mode):
        engine = PlacementEngine(mode=mode)
        decision = engine.decide("sig", 100e9, kept_hint=0.05)
        assert decision.tier == mode
        assert "fixed" in decision.reason
        # Estimates still recorded: fixed runs keep explainability.
        assert set(decision.estimates) == set(TIERS)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            PlacementEngine(mode="everywhere")

    def test_feedback_refines_estimates(self):
        engine = PlacementEngine(smoothing=0.5)
        decision = engine.decide(
            "sig", 100e9, kept_hint=0.05, row_filtering=True
        )
        assert decision.tier != "compute"
        refined = engine.observe_report(1000.0, 100.0, decision=decision)
        assert refined == pytest.approx(0.1)
        # EWMA: 0.5 * 0.3 + 0.5 * 0.1 = 0.2
        assert engine.observe("sig", 0.3) == pytest.approx(0.2)
        decision = engine.decide("sig", 100e9, kept_hint=0.05)
        assert decision.kept_fraction == pytest.approx(0.2)

    def test_observe_report_without_decision_is_noop(self):
        assert PlacementEngine().observe_report(100.0, 10.0) is None

    def test_observe_report_ignores_compute_decisions(self):
        # A compute-side run transfers every byte, so its ~1.0 ratio
        # says nothing about the query's real selectivity and must not
        # enter the EWMA (it would lock adaptive mode onto compute).
        engine = PlacementEngine(mode="compute")
        decision = engine.decide("sig", 100e9, kept_hint=0.05)
        assert engine.observe_report(
            1000.0, 1000.0, decision=decision
        ) is None
        assert "sig" not in engine.kept_estimates

    def test_observe_report_attributes_to_the_passed_decision(self):
        # Attribution is explicit: reporting bytes for one decision
        # never touches another signature's estimate, even when a later
        # decision exists.
        engine = PlacementEngine()
        first = engine.decide(
            "sig-a", 100e9, kept_hint=0.05, row_filtering=True
        )
        engine.decide("sig-b", 100e9, kept_hint=0.05, row_filtering=True)
        engine.observe_report(1000.0, 100.0, decision=first)
        assert engine.kept_estimates.keys() == {"sig-a"}

    def test_explain_is_json_friendly(self):
        import json

        engine = PlacementEngine()
        decision = engine.decide(
            "sig", 100e9, kept_hint=0.05, row_filtering=True
        )
        engine.observe_report(100.0, 50.0, decision=decision)
        explained = engine.explain()
        json.dumps(explained)
        assert explained["mode"] == "adaptive"
        assert explained["decisions"][0]["tier"] in TIERS

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
        assert engine_from_environment() is None
        monkeypatch.setenv("REPRO_PLACEMENT", "object")
        assert engine_from_environment().mode == "object"
        assert engine_from_environment("adaptive").mode == "adaptive"


class TestContextWiring:
    def test_off_by_default(self):
        assert build_context().placement is None

    def test_env_var_arms_the_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACEMENT", "adaptive")
        ctx = build_context()
        assert ctx.placement is not None
        assert ctx.placement.mode == "adaptive"

    @pytest.mark.parametrize("mode", ["adaptive", "object", "proxy",
                                      "compute"])
    def test_modes_byte_identical(self, mode):
        sql = "SELECT vid, index FROM m WHERE index > 4 ORDER BY vid, index"
        baseline = build_context().run_query(sql)[0].collect()
        ctx = build_context(placement=mode)
        frame, _report = ctx.run_query(sql)
        assert frame.collect() == baseline
        assert ctx.placement.decisions

    def test_fixed_object_mode_keeps_pushdown_savings(self):
        sql = "SELECT vid FROM m WHERE index > 7"
        _frame, fixed = build_context(placement="object").run_query(sql)
        _frame, compute = build_context(placement="compute").run_query(sql)
        assert fixed.pushdown_requests > 0
        assert compute.pushdown_requests == 0
        assert fixed.bytes_transferred < compute.bytes_transferred

    def test_run_query_closes_the_feedback_loop(self):
        ctx = build_context(placement="object")
        ctx.run_query("SELECT vid FROM m WHERE index > 4")
        assert ctx.placement.kept_estimates

    def test_compute_runs_do_not_poison_the_feedback_loop(self):
        # Regression: with work placed compute-side the run transfers
        # every requested byte, so run_query must not record a kept
        # fraction of ~1.0 for a selective query -- adaptive mode could
        # never escape that self-reinforcing mis-estimate.
        ctx = build_context(placement="compute")
        _frame, report = ctx.run_query("SELECT vid FROM m WHERE index > 7")
        assert report.pushdown_requests == 0
        assert ctx.placement.kept_estimates == {}

    def test_explain_profile_has_placement_section(self):
        ctx = build_context(placement="adaptive")
        ctx.run_query("SELECT vid FROM m WHERE index > 4")
        profile = ctx.explain_profile()
        assert profile["placement"]["mode"] == "adaptive"
        assert profile["placement"]["decisions"]

    def test_signature_distinguishes_query_shapes(self):
        from repro.core.pushdown import PushdownTask

        narrow = PushdownTask(schema=SCHEMA, columns=["vid"])
        wide = PushdownTask(schema=SCHEMA, columns=None)
        assert task_signature("c", "", narrow) != task_signature(
            "c", "", wide
        )


class TestExperiment:
    def test_model_sweep_adaptive_never_loses(self):
        from repro.experiments.placement import model_sweep

        points = model_sweep((1e9, 10e9), (0.1, 0.5, 1.0))
        assert len(points) == 6
        for point in points:
            assert point.adaptive_duration <= point.best_fixed_duration + 1e-9

    def test_cli_exposes_placement_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["demo", "--placement", "adaptive"])
        assert args.placement == "adaptive"
