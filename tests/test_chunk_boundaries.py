"""Streaming data-plane tests: record integrity across chunk boundaries
and LIMIT early termination.

The streaming refactor moves bounded chunk iterators through every tier,
so records routinely straddle chunk boundaries.  These tests feed the
same fixture through each record-aligning reader at chunk sizes 1 B (a
boundary inside every record), 7 B (boundaries at awkward offsets) and
64 KiB (the production default, no interior boundary) and require
byte-identical output.
"""

import pytest

from repro.connector import StocatorConnector
from repro.core.scoop import ScoopContext
from repro.sql import GreaterThan, Schema
from repro.sql.filters import filters_to_json
from repro.storlets import CsvStorlet, StorletEngine
from repro.storlets.api import StorletInputStream, StorletLogger
from repro.storlets.etl_storlet import CleansingStorlet
from repro.swift import SwiftClient, SwiftCluster
from repro.swift.http import chunk_bytes

CHUNK_SIZES = [1, 7, 64 * 1024]

SCHEMA = Schema.from_header("vid:string,index:int,city:string")

FIXTURE = b"".join(
    f"vid-{i:03d},{i},{'Paris' if i % 3 else 'Lyon'}\n".encode()
    for i in range(50)
)


def run_storlet(storlet, parameters, chunk_size):
    stream = StorletInputStream(chunk_bytes(FIXTURE, chunk_size))
    metadata = {}
    output = b"".join(
        storlet.process(stream, parameters, StorletLogger("test"), metadata)
    )
    return output, metadata


class TestCsvStorletChunkBoundaries:
    PARAMETERS = {
        "schema": SCHEMA.to_header(),
        "columns": '["vid", "index"]',
        "filters": filters_to_json([GreaterThan("index", 10.0)]),
    }

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_output_identical_across_chunk_sizes(self, chunk_size):
        baseline, base_meta = run_storlet(
            CsvStorlet(), dict(self.PARAMETERS), 64 * 1024
        )
        output, metadata = run_storlet(
            CsvStorlet(), dict(self.PARAMETERS), chunk_size
        )
        assert output == baseline
        assert metadata == base_meta
        assert metadata["x-object-meta-storlet-rows-out"] == "39"

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_every_record_intact(self, chunk_size):
        output, _ = run_storlet(
            CsvStorlet(), {"schema": SCHEMA.to_header()}, chunk_size
        )
        assert output == FIXTURE  # no projection/filter: passthrough


class TestCleansingStorletChunkBoundaries:
    PARAMETERS = {"schema": SCHEMA.to_header()}

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_output_identical_across_chunk_sizes(self, chunk_size):
        dirty = FIXTURE + b"  malformed-line\n , , \nvid-999,999,Nice\n"
        storlet = CleansingStorlet()
        baseline = b"".join(
            storlet.process(
                StorletInputStream(chunk_bytes(dirty, 64 * 1024)),
                dict(self.PARAMETERS),
                StorletLogger("test"),
                {},
            )
        )
        metadata = {}
        output = b"".join(
            storlet.process(
                StorletInputStream(chunk_bytes(dirty, chunk_size)),
                dict(self.PARAMETERS),
                StorletLogger("test"),
                metadata,
            )
        )
        assert output == baseline
        assert metadata["x-object-meta-etl-kept"] == "51"
        assert metadata["x-object-meta-etl-dropped"] == "2"


class TestConnectorChunkBoundaries:
    @pytest.fixture
    def store(self):
        engine = StorletEngine()
        cluster = SwiftCluster(
            storage_node_count=2,
            disks_per_node=1,
            proxy_middleware=[engine.proxy_middleware()],
            object_middleware=[engine.object_middleware()],
        )
        client = SwiftClient(cluster, "AUTH_bound")
        engine.deploy(CsvStorlet())
        client.put_container("c")
        client.put_object("c", "o", FIXTURE)
        return client

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_records_covered_exactly_once(self, store, chunk_size):
        connector = StocatorConnector(store, chunk_size=chunk_size)
        records = []
        for split in connector.discover_partitions("c"):
            records.extend(connector.read_split_records(split))
        assert records == FIXTURE.rstrip(b"\n").split(b"\n")


class TestLimitEarlyTermination:
    """A satisfied LIMIT must stop pulling chunks from the store."""

    @pytest.fixture
    def scoop(self):
        context = ScoopContext(chunk_size=4 * 1024)
        rows = "".join(
            f"vid-{i:05d},{i},{'Paris' if i % 2 else 'Lyon'}\n"
            for i in range(5000)
        )
        context.upload_csv("meters", "data.csv", rows)
        context.register_csv_table(
            "meters", "meters", schema=SCHEMA, pushdown=False
        )
        return context

    def test_limit_transfers_strictly_fewer_bytes(self, scoop):
        frame_all, report_all = scoop.run_query("SELECT vid FROM meters")
        frame_lim, report_lim = scoop.run_query(
            "SELECT vid FROM meters LIMIT 5"
        )
        assert len(frame_lim.collect()) == 5
        assert report_lim.bytes_transferred < report_all.bytes_transferred
        assert frame_lim.collect() == frame_all.collect()[:5]

    def test_limit_with_pushdown_transfers_fewer_bytes(self, scoop):
        scoop.register_csv_table(
            "meters_pd", "meters", schema=SCHEMA, pushdown=True
        )
        _frame_all, report_all = scoop.run_query(
            "SELECT vid FROM meters_pd WHERE index > 100"
        )
        frame_lim, report_lim = scoop.run_query(
            "SELECT vid FROM meters_pd WHERE index > 100 LIMIT 3"
        )
        assert len(frame_lim.collect()) == 3
        assert report_lim.bytes_transferred < report_all.bytes_transferred
