"""Tests for the unified observability layer: trace spans, the metrics
registry, and the acceptance invariant -- a traced parallel query under
an injected fault plan whose per-tier byte totals reconcile exactly
with the legacy counters (TransferMetrics / resilience_summary)."""

import json

import pytest

from repro.core import ScoopContext
from repro.faults import named_plan
from repro.obs import MetricsRegistry, TraceCollector
from repro.sql import Schema


class TestTraceCollector:
    def test_disabled_collector_records_nothing(self):
        collector = TraceCollector(enabled=False)
        span = collector.start("client", "GET /a/c/o")
        collector.finish(span, status="error")
        with collector.span("proxy", "GET"):
            pass
        collector.record_event("faults", "flaky")
        collector.record_complete("scheduler", "task", 0.1)
        assert collector.snapshot() == []

    def test_start_finish_records_span(self):
        collector = TraceCollector(enabled=True)
        trace_id = collector.new_trace_id()
        span = collector.start(
            "connector", "pushdown_get", trace_id=trace_id, split_index=3
        )
        span.bytes_out = 42
        collector.finish(span, status="ok", rows=7)
        (recorded,) = collector.snapshot()
        assert recorded.trace_id == "t00000001"
        assert recorded.tier == "connector"
        assert recorded.bytes_out == 42
        assert recorded.attributes == {"split_index": 3, "rows": 7}
        assert recorded.duration >= 0

    def test_nested_spans_parent_within_thread(self):
        collector = TraceCollector(enabled=True)
        outer = collector.start("connector", "get")
        inner = collector.start("client", "GET /a/c/o")
        collector.finish(inner)
        collector.finish(outer)
        inner_rec, outer_rec = collector.snapshot()
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None

    def test_streaming_span_may_finish_out_of_order(self):
        collector = TraceCollector(enabled=True)
        streaming = collector.start("connector", "get")
        request = collector.start("client", "GET")
        # The connector span outlives the client span that opened after
        # it (the body streams after request() returns).
        collector.finish(streaming)
        collector.finish(request)
        assert len(collector.snapshot()) == 2

    def test_ids_are_deterministic_not_clock_derived(self):
        first = TraceCollector(enabled=True)
        second = TraceCollector(enabled=True)
        for collector in (first, second):
            collector.start("a", "op")
            assert collector.new_trace_id() == "t00000001"
        assert [s.span_id for s in first.snapshot()] == [
            s.span_id for s in second.snapshot()
        ]

    def test_reset_rewinds_id_counters(self):
        collector = TraceCollector(enabled=True)
        collector.finish(collector.start("a", "op"))
        collector.reset()
        assert collector.snapshot() == []
        assert collector.new_trace_id() == "t00000001"

    def test_overflow_is_counted_not_silent(self):
        collector = TraceCollector(enabled=True, max_spans=2)
        for _ in range(5):
            collector.finish(collector.start("a", "op"))
        assert len(collector.snapshot()) == 2
        assert collector.dropped == 3
        assert collector.export_json()["dropped"] == 3

    def test_head_sampling_keeps_whole_traces(self):
        """The keep/drop decision is made once per trace id at root-span
        creation: a trace admitted under the cap keeps *all* its spans
        (even overshooting max_spans -- a soft cap), so exported traces
        are always complete."""
        collector = TraceCollector(enabled=True, max_spans=2)
        kept = collector.new_trace_id()
        for _ in range(3):
            collector.finish(collector.start("a", "op", trace_id=kept))
        dropped = collector.new_trace_id()
        for _ in range(3):
            collector.finish(collector.start("a", "op", trace_id=dropped))
        spans = collector.snapshot()
        assert len(spans) == 3
        assert {span.trace_id for span in spans} == {kept}
        # ``dropped`` counts whole traces, not spans.
        assert collector.dropped == 1

    def test_head_sampling_decision_is_sticky(self):
        """A trace keeps accepting spans after the cap fills, and a
        dropped trace stays dropped even after spans are recorded."""
        collector = TraceCollector(enabled=True, max_spans=1)
        kept = collector.new_trace_id()
        root = collector.start("a", "root", trace_id=kept)
        late = collector.new_trace_id()
        # ``late`` arrives while the cap still has room: also kept.
        collector.finish(collector.start("a", "op", trace_id=late))
        collector.finish(root)
        # Both traces were admitted before the cap filled; new ones die.
        doomed = collector.new_trace_id()
        collector.finish(collector.start("a", "op", trace_id=doomed))
        collector.finish(collector.start("a", "op", trace_id=kept))
        collector.finish(collector.start("a", "op", trace_id=doomed))
        spans = collector.snapshot()
        assert {span.trace_id for span in spans} == {kept, late}
        assert collector.dropped == 1

    def test_byte_totals_aggregate_per_tier(self):
        collector = TraceCollector(enabled=True)
        for bytes_out in (10, 20):
            span = collector.start("connector", "get")
            span.bytes_out = bytes_out
            collector.finish(span)
        span = collector.start("storlet", "csvstorlet")
        span.bytes_in = 100
        collector.finish(span)
        totals = collector.byte_totals()
        assert totals["connector"] == {
            "bytes_in": 0,
            "bytes_out": 30,
            "spans": 2,
        }
        assert totals["storlet"]["bytes_in"] == 100

    def test_span_context_manager_marks_errors(self):
        collector = TraceCollector(enabled=True)
        with pytest.raises(ValueError):
            with collector.span("client", "GET"):
                raise ValueError("boom")
        (span,) = collector.snapshot()
        assert span.status == "error"


class TestMetricsRegistry:
    def test_labelled_counters_are_independent_series(self):
        registry = MetricsRegistry()
        registry.inc("connector.requests", pushdown=True)
        registry.inc("connector.requests", pushdown=True)
        registry.inc("connector.requests", pushdown=False)
        assert registry.counter_value("connector.requests", pushdown=True) == 2
        assert (
            registry.counter_value("connector.requests", pushdown=False) == 1
        )
        assert registry.counter_total("connector.requests") == 3

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("cluster.proxy_peak_inflight", 3)
        registry.set_gauge("cluster.proxy_peak_inflight", 7)
        assert registry.gauge_value("cluster.proxy_peak_inflight") == 7.0

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("scheduler.task_seconds", value)
        stats = registry.histogram("scheduler.task_seconds")
        assert stats.count == 3
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.mean() == pytest.approx(2.0)

    def test_snapshot_renders_prometheus_style_names(self):
        registry = MetricsRegistry()
        registry.inc("sandbox.errors", node="storage1")
        registry.inc("client.requests")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["sandbox.errors{node=storage1}"] == 1.0
        assert snapshot["counters"]["client.requests"] == 1.0
        # The snapshot is JSON-ready.
        json.dumps(snapshot)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 1.0)
        registry.reset()
        empty = registry.snapshot()
        assert empty == {"counters": {}, "gauges": {}, "histograms": {}}


class TestBucketedHistograms:
    def test_declared_buckets_enable_percentiles(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (0.1, 0.5, 1.0, 5.0))
        for value in (0.05, 0.2, 0.3, 0.7, 2.0):
            registry.observe("lat", value)
        stats = registry.histogram("lat")
        assert stats.bucket_counts == [1, 2, 1, 1, 0]
        quantiles = stats.percentiles()
        assert set(quantiles) == {"p50", "p95", "p99"}
        # Estimates interpolate inside the fixed buckets but never
        # leave the observed range.
        assert stats.minimum <= quantiles["p50"] <= quantiles["p95"]
        assert quantiles["p95"] <= quantiles["p99"] <= stats.maximum

    def test_percentile_interpolates_within_bucket(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (1.0, 2.0))
        for value in (1.2, 1.4, 1.6, 1.8):
            registry.observe("lat", value)
        # All four samples sit in the (1.0, 2.0] bucket: the median
        # estimate is the bucket midpoint, clamped estimates stay
        # inside [min, max].
        stats = registry.histogram("lat")
        assert stats.percentile(0.5) == pytest.approx(1.5)
        assert stats.percentile(0.0) == pytest.approx(1.2)
        assert stats.percentile(1.0) == pytest.approx(1.8)

    def test_overflow_bucket_uses_observed_maximum(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (1.0,))
        registry.observe("lat", 10.0)
        stats = registry.histogram("lat")
        assert stats.bucket_counts == [0, 1]
        assert stats.percentile(0.99) == 10.0

    def test_unbucketed_series_has_no_percentiles(self):
        registry = MetricsRegistry()
        registry.observe("plain", 1.0)
        assert registry.histogram("plain").percentiles() is None
        assert "p50" not in registry.histogram("plain").to_dict()

    def test_redeclaring_different_buckets_raises(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (1.0, 2.0))
        registry.declare_histogram("lat", (2.0, 1.0))  # same set: fine
        with pytest.raises(ValueError):
            registry.declare_histogram("lat", (5.0,))

    def test_to_dict_carries_buckets_and_percentiles(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (1.0, 2.0))
        registry.observe("lat", 0.5)
        payload = registry.histogram("lat").to_dict()
        assert payload["buckets"] == [1.0, 2.0]
        assert payload["bucket_counts"] == [1, 0, 0]
        assert {"p50", "p95", "p99"} <= set(payload)
        json.dumps(payload)

    def test_histogram_series_lists_label_sets(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (1.0,))
        registry.observe("lat", 0.5, experiment="fig1")
        registry.observe("lat", 0.7, experiment="fig5")
        registry.observe("other", 1.0)
        series = registry.histogram_series("lat")
        assert list(series) == [
            "lat{experiment=fig1}",
            "lat{experiment=fig5}",
        ]
        assert all(stats.count == 1 for stats in series.values())

    def test_declared_layouts_survive_reset(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", (1.0,))
        registry.observe("lat", 0.5)
        registry.reset()
        registry.observe("lat", 0.5)
        assert registry.histogram("lat").percentiles() is not None


SCHEMA = Schema.of("vid", "date", "index:float", "city")


def _meter_rows(count: int) -> str:
    return "".join(
        f"m{i:05d},2015-01-{(i % 28) + 1:02d},{i}.5,"
        f"{'Paris' if i % 3 else 'Rotterdam'}\n"
        for i in range(count)
    )


@pytest.fixture
def traced_scoop():
    """A traced Scoop stack: parallelism 8, named fault plan, small
    chunks so the query fans out over many splits."""
    context = ScoopContext(
        trace=True,
        parallelism=8,
        fault_plan=named_plan("flaky-object"),
        chunk_size=16 * 1024,
        storage_node_count=3,
        disks_per_node=2,
        num_workers=8,
    )
    context.upload_csv("meters", "data.csv", _meter_rows(3000))
    context.register_csv_table(
        "meters", "meters", schema=SCHEMA, pushdown=True
    )
    return context


class TestAcceptanceReconciliation:
    """The PR's acceptance criterion: a parallelism-8 query under a
    named fault plan produces a trace whose per-tier byte totals exactly
    reconcile with TransferMetrics / resilience_summary."""

    def test_trace_reconciles_with_legacy_counters(self, traced_scoop):
        frame, report = traced_scoop.run_query(
            "SELECT vid, city FROM meters WHERE index > 100"
        )
        assert len(frame.collect()) > 0

        tracer = traced_scoop.tracer
        spans = tracer.snapshot()
        totals = tracer.byte_totals()
        metrics = traced_scoop.connector.metrics
        summary = traced_scoop.resilience_summary()

        # Connector spans are finalized from the streaming iterator's
        # ``finally`` with exactly the consumed byte count, so the trace
        # and TransferMetrics agree to the byte.
        assert totals["connector"]["bytes_out"] == metrics.bytes_transferred
        assert report.bytes_transferred == metrics.bytes_transferred

        # One client span per request(), carrying the attempt count:
        # summed, they equal the resilience loop's own request counter.
        client_spans = [s for s in spans if s.tier == "client"]
        assert client_spans
        assert (
            sum(s.attributes["attempts"] for s in client_spans)
            == summary["client_requests"]
        )

        # Every injected fault emitted one trace event.
        fault_events = [s for s in spans if s.tier == "faults"]
        assert summary["faults_injected"] == len(fault_events)
        assert summary["faults_injected"] > 0  # the plan actually fired

        # Every pushdown degradation emitted one trace event.
        degraded = [
            s for s in spans if s.operation == "pushdown_degraded"
        ]
        assert summary["pushdown_fallbacks"] == len(degraded)

        # The storlet tier saw the raw bytes; the connector received the
        # filtered stream, so pushdown moved strictly fewer bytes.
        assert totals["storlet"]["bytes_in"] > totals["storlet"]["bytes_out"]

    def test_columnar_segment_reads_reconcile(self):
        """Columnar reads are segment-granular: even a plain (degraded,
        no-pushdown) scan fetches only the referenced byte ranges, so
        the connector tier moves fewer bytes than the objects hold --
        and the trace must still balance with TransferMetrics exactly,
        with no phantom bytes from ranges that were coalesced, pruned
        via stripe stats, or abandoned by an early-stopping LIMIT."""
        context = ScoopContext(
            trace=True,
            parallelism=8,
            fault_plan=named_plan("flaky-object"),
            chunk_size=16 * 1024,
        )
        context.upload_csv("meters", "data.csv", _meter_rows(3000))
        context.register_csv_table(
            "meters", "meters", schema=SCHEMA, format="columnar"
        )
        reports = [
            context.run_query(sql)[1]
            for sql in (
                "SELECT vid, city FROM meters WHERE index > 100",
                "SELECT city FROM meters",  # single-column projection
                "SELECT vid FROM meters LIMIT 5",  # early stop
            )
        ]

        profile = context.explain_profile()
        tier = profile["tiers"]["connector"]
        metrics = context.connector.metrics
        assert tier["bytes_out"] == metrics.bytes_transferred
        # Sub-object granularity actually happened: no single query
        # moved as many bytes as the columnar objects hold.
        object_bytes = context.connector.dataset_size("meters--columnar")
        assert all(
            0 < report.bytes_transferred < object_bytes
            for report in reports
        )
        # Per-span finalization means the totals are a sum of exact
        # consumed counts, not request sizes: re-deriving the tier total
        # from the raw spans must give the same number.
        spans = context.tracer.snapshot()
        connector_bytes = sum(
            s.bytes_out for s in spans if s.tier == "connector"
        )
        assert connector_bytes == metrics.bytes_transferred

    def test_json_export_round_trips(self, traced_scoop):
        traced_scoop.run_query("SELECT vid FROM meters WHERE index > 100")
        exported = traced_scoop.tracer.export_json()
        parsed = json.loads(json.dumps(exported))
        assert parsed["span_count"] == len(parsed["spans"])
        assert (
            parsed["byte_totals"]["connector"]["bytes_out"]
            == traced_scoop.connector.metrics.bytes_transferred
        )

    def test_chrome_export_is_valid_trace_event_json(self, traced_scoop):
        traced_scoop.run_query("SELECT vid FROM meters WHERE index > 100")
        exported = traced_scoop.tracer.export_chrome()
        parsed = json.loads(json.dumps(exported))
        events = parsed["traceEvents"]
        assert events
        named_tids = set()
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "M":
                assert event["name"] == "thread_name"
                named_tids.add(event["tid"])
            else:
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0
                assert isinstance(event["name"], str)
        # Every virtual thread used by a span has a name.
        assert {e["tid"] for e in events if e["ph"] == "X"} <= named_tids

    def test_explain_profile_surfaces_every_dimension(self, traced_scoop):
        _frame, report = traced_scoop.run_query(
            "SELECT vid FROM meters WHERE index > 100"
        )
        profile = traced_scoop.explain_profile()
        assert profile["tiers"]["connector"]["bytes_out"] == (
            traced_scoop.connector.metrics.bytes_transferred
        )
        assert (
            profile["selectivity"]["achieved"] == report.data_selectivity
        )
        assert profile["storlet_cpu_seconds"] > 0
        assert profile["retry"]["schedule_taken"] == list(
            traced_scoop.client.stats.delays
        )
        assert profile["faults_injected"] == traced_scoop.fault_plan.fired()
        json.dumps(profile)  # JSON-ready


class TestPutPathTracing:
    """PUT-path ETL invocations carry a trace id end to end: the client
    mints one per upload (the connector only does so for GETs), and the
    proxy, ETL storlet sandbox and object tiers attach their spans to
    it."""

    def _etl_upload(self):
        context = ScoopContext(
            trace=True,
            storage_node_count=2,
            disks_per_node=1,
        )
        raw = "m0001, 2015-01-01 ,1.5,Paris\n\nm0002,2015-01-02,2.5,Lyon\n"
        context.upload_csv("meters", "data.csv", raw, etl_schema=SCHEMA)
        return context

    def test_upload_spans_share_one_minted_trace_id(self):
        context = self._etl_upload()
        spans = context.tracer.snapshot()
        put_spans = [
            s for s in spans
            if s.trace_id and "PUT" in s.operation or s.tier == "storlet"
        ]
        put_ids = {
            s.trace_id
            for s in spans
            if s.tier == "client" and s.operation.startswith("PUT /")
            and "data.csv" in s.operation
        }
        assert len(put_ids) == 1
        (trace_id,) = put_ids
        assert trace_id  # minted, not blank
        tiers = {
            s.tier for s in spans if s.trace_id == trace_id
        }
        # Full per-tier coverage for the upload pipeline.
        assert {"client", "proxy", "storlet", "object"} <= tiers
        assert put_spans

    def test_etl_storlet_bytes_reconcile_on_put(self):
        context = self._etl_upload()
        spans = context.tracer.snapshot()
        storlet_spans = [
            s for s in spans if s.tier == "storlet" and s.trace_id
        ]
        assert storlet_spans
        # The cleansing storlet consumed the raw upload and emitted the
        # cleansed object actually stored (replica writes then fan out),
        # so trace bytes reconcile with what the store holds.
        bytes_out = sum(s.bytes_out for s in storlet_spans)
        _headers, stored = context.client.get_object("meters", "data.csv")
        replicas = context.cluster.object_ring.replica_count
        assert bytes_out == len(stored) * len(storlet_spans)
        assert sum(s.bytes_in for s in storlet_spans) > 0
        assert len(storlet_spans) <= max(replicas, 1)

    def test_plain_put_without_tracer_stays_unlabelled(self):
        context = ScoopContext(
            storage_node_count=2, disks_per_node=1
        )
        context.upload_csv("c", "o.csv", "a,1\n")
        assert context.tracer.snapshot() == []


class TestTraceDisabledByDefault:
    def test_untraced_context_records_no_spans(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        context = ScoopContext(
            storage_node_count=2,
            disks_per_node=1,
            proxy_count=1,
            replica_count=1,
        )
        context.upload_csv("c", "o.csv", "a,1\nb,2\n")
        context.register_csv_table(
            "t", "c", schema=Schema.of("k", "v:int"), pushdown=True
        )
        context.run_query("SELECT k FROM t WHERE v > 1")
        assert context.tracer.snapshot() == []
        assert context.explain_profile()["tiers"] == {}
