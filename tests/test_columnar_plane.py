"""End-to-end tests for the columnar data plane (docs/columnar.md).

The governing contract: a query over the columnar fast path returns
*byte-identical* rows to the same query over the row-oriented CSV path
-- at any parallelism, in sync and async execution, and under every
named fault plan.  On top of identity, the columnar plane must earn its
keep: segment-granular reads below object size without pushdown, stripe
stats pruning, and trace totals that still reconcile exactly.
"""

import pytest

from repro.core.scoop import ScoopContext
from repro.faults import NAMED_PLANS, named_plan
from repro.sql.types import Schema
from repro.swift.retry import RetryPolicy

SCHEMA = Schema.of("vid", "date", "index:float", "code:int", "city")

#: One query per plan shape the fast path accelerates: full scan,
#: filtered projection, early-stopping limit, grouped aggregation.
QUERIES = (
    "SELECT * FROM t",
    "SELECT vid, code FROM t WHERE code > 120 AND city <> 'city1'",
    "SELECT vid FROM t WHERE city = 'city3' LIMIT 7",
    "SELECT city, COUNT(*), SUM(code), AVG(index) FROM t "
    "GROUP BY city ORDER BY city",
)


def _csv_body(tag="city"):
    return "\n".join(
        f"v{i},2024-01-{(i % 28) + 1:02d},{i / 10.0},{i},{tag}{i % 5}"
        for i in range(400)
    ) + "\n"


def _context(fmt, plan=None, parallelism=1, async_mode=False, **kwargs):
    ctx = ScoopContext(
        chunk_size=16 * 1024,
        parallelism=parallelism,
        async_mode=async_mode,
        retry_policy=RetryPolicy(seed=7),
        fault_plan=named_plan(plan, seed=7) if plan else None,
        **kwargs,
    )
    ctx.upload_csv("data", "part-000.csv", _csv_body())
    ctx.upload_csv("data", "part-001.csv", _csv_body("town"))
    ctx.register_csv_table("t", "data", schema=SCHEMA, format=fmt)
    return ctx


@pytest.fixture(scope="module")
def row_baseline():
    ctx = _context("csv")
    return {sql: ctx.sql(sql).collect() for sql in QUERIES}


class TestByteIdentity:
    @pytest.mark.parametrize("plan", NAMED_PLANS)
    @pytest.mark.parametrize(
        "parallelism,async_mode",
        [(1, False), (16, False), (16, True)],
        ids=["serial", "threads-16", "async-16"],
    )
    def test_columnar_matches_row_path(
        self, row_baseline, plan, parallelism, async_mode
    ):
        ctx = _context(
            "columnar",
            plan=plan,
            parallelism=parallelism,
            async_mode=async_mode,
        )
        for sql, expected in row_baseline.items():
            assert ctx.sql(sql).collect() == expected, (sql, plan)

    def test_plain_columnar_matches_row_path(self, row_baseline):
        ctx = ScoopContext(chunk_size=16 * 1024)
        ctx.upload_csv("data", "part-000.csv", _csv_body())
        ctx.upload_csv("data", "part-001.csv", _csv_body("town"))
        ctx.register_csv_table(
            "t", "data", schema=SCHEMA, pushdown=False, format="columnar"
        )
        for sql, expected in row_baseline.items():
            assert ctx.sql(sql).collect() == expected


class TestDegradation:
    def test_storlet_crash_degrades_and_stays_identical(self, row_baseline):
        """Every pushdown GET crashing on every replica forces the
        degraded plain-read path for every split -- rows must still be
        byte-identical and the fallback counter must account for it."""
        from repro.faults import FaultPlan
        from repro.faults.plan import StorletCrash

        plan = FaultPlan(
            faults=(StorletCrash(storlet="columnarstorlet", times=None),)
        )
        ctx = ScoopContext(
            chunk_size=16 * 1024,
            retry_policy=RetryPolicy(seed=7),
            fault_plan=plan,
        )
        ctx.upload_csv("data", "part-000.csv", _csv_body())
        ctx.upload_csv("data", "part-001.csv", _csv_body("town"))
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="columnar")
        for sql, expected in row_baseline.items():
            assert ctx.sql(sql).collect() == expected
        assert ctx.connector.metrics.pushdown_fallbacks > 0
        assert ctx.fault_plan.fired("storlet-fault") > 0


class TestColumnarEconomics:
    def test_projection_reads_fewer_bytes_than_object(self):
        """Without pushdown the reader still fetches only the referenced
        column segments -- bytes transferred < total object size."""
        ctx = ScoopContext()
        ctx.upload_csv("data", "part-000.csv", _csv_body())
        ctx.register_csv_table(
            "t", "data", schema=SCHEMA, pushdown=False, format="columnar"
        )
        _frame, report = ctx.run_query("SELECT code FROM t")
        object_bytes = ctx.connector.dataset_size("data--columnar")
        assert 0 < report.bytes_transferred < object_bytes

    def test_stripe_pruning_skips_refuted_stripes(self):
        """A predicate no stripe can satisfy reads nothing at all."""
        ctx = ScoopContext()
        ctx.upload_csv("data", "part-000.csv", _csv_body())
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="columnar")
        _frame, report = ctx.run_query("SELECT vid FROM t WHERE code > 10000")
        assert report.rows == 0
        assert report.requests == 0
        assert report.bytes_transferred == 0

    def test_plain_columnar_beats_plain_csv_on_projection(self):
        """Where the format itself pays off: with pushdown disabled the
        CSV reader must move whole objects while the columnar reader
        fetches only the projected column's segments."""
        sql = "SELECT code FROM t"

        def run(fmt):
            ctx = ScoopContext(chunk_size=16 * 1024)
            ctx.upload_csv("data", "part-000.csv", _csv_body())
            ctx.register_csv_table(
                "t", "data", schema=SCHEMA, pushdown=False, format=fmt
            )
            return ctx.run_query(sql)[1]

        csv_report = run("csv")
        col_report = run("columnar")
        assert col_report.rows == csv_report.rows
        assert col_report.bytes_transferred < csv_report.bytes_transferred

    def test_limit_stops_early(self):
        ctx = _context("columnar", parallelism=8)
        _f, limited = ctx.run_query("SELECT * FROM t LIMIT 20")
        _f, full = ctx.run_query("SELECT * FROM t")
        assert limited.rows == 20
        assert limited.bytes_transferred < full.bytes_transferred


class TestTraceReconciliation:
    def test_connector_tier_balances_exactly(self):
        """Segment-granular reads keep bytes below object size, yet the
        trace's connector tier reconciles with TransferMetrics to the
        byte -- on the pushdown path and the plain path alike."""
        for pushdown in (True, False):
            ctx = ScoopContext(trace=True)
            ctx.upload_csv("data", "part-000.csv", _csv_body())
            ctx.register_csv_table(
                "t", "data", schema=SCHEMA, pushdown=pushdown,
                format="columnar",
            )
            ctx.run_query("SELECT vid, code FROM t WHERE code > 120")
            ctx.run_query("SELECT city FROM t")
            profile = ctx.explain_profile()
            tier = profile["tiers"]["connector"]
            metrics = ctx.connector.metrics
            assert tier["bytes_out"] == metrics.bytes_transferred
            assert metrics.bytes_transferred < ctx.connector.dataset_size(
                "data--columnar"
            )


class TestConversion:
    def test_shadow_container_holds_rcf_objects(self):
        ctx = ScoopContext()
        ctx.upload_csv("data", "part-000.csv", _csv_body())
        ctx.upload_csv("data", "part-001.csv", _csv_body("town"))
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="columnar")
        names = ctx.client.list_objects("data--columnar")
        assert names == ["part-000.rcf", "part-001.rcf"]
        headers = ctx.client.head_object("data--columnar", "part-000.rcf")
        assert headers.get("x-object-meta-columnar-format") == "RCF1"
        assert int(headers.get("x-object-meta-columnar-rows", 0)) == 400

    def test_format_csv_pin_bypasses_conversion(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORMAT", "columnar")
        ctx = ScoopContext()
        assert ctx.default_format == "columnar"
        ctx.upload_csv("data", "part-000.csv", _csv_body())
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="csv")
        assert "data--columnar" not in ctx.client.list_containers()

    def test_explicit_columnar_registration(self):
        ctx = ScoopContext()
        ctx.upload_csv("src", "a.csv", _csv_body())
        written = ctx.convert_csv_to_columnar(
            "src", "dst", SCHEMA
        )
        assert written == ["a.rcf"]
        relation = ctx.register_columnar_table("t", "dst")
        assert relation.schema().names == SCHEMA.names
        rows = ctx.sql("SELECT COUNT(*) FROM t").collect()
        assert rows == [(400,)]
