"""Chaos suite: GridPocket queries under seeded fault plans.

Acceptance criteria for the resilient data path:

* every Table-I query returns byte-identical results under each fault
  plan vs. the fault-free run;
* the storlet-crash plan forces graceful degradation
  (``pushdown_fallbacks > 0``);
* retries stay within the configured budget (no unbounded retry);
* the whole fault sequence is deterministic: same seed + same plan =>
  same injected faults and same retry counters.

The seed can be varied from the environment (``REPRO_CHAOS_SEED``) so CI
can sweep several fault sequences.
"""

import os

import pytest

from repro.core import ScoopContext
from repro.faults import named_plan
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.gridpocket.queries import GRIDPOCKET_QUERIES
from repro.qos.admission import QosConfig
from repro.swift.retry import RetryPolicy

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20170417"))
CHAOS_SPEC = DatasetSpec(meters=12, intervals=64, objects=3)
FAULT_PLANS = ("device-loss", "flaky-object", "storlet-crash", "overload")


def run_workload(fault_plan=None, seed=CHAOS_SEED, parallelism=None, qos=None):
    """Upload the dataset and run all Table-I queries; returns the
    context and per-query results."""
    ctx = ScoopContext(
        chunk_size=48 * 1024,
        retry_policy=RetryPolicy(seed=seed),
        fault_plan=named_plan(fault_plan, seed=seed) if fault_plan else None,
        parallelism=parallelism,
        qos=qos,
    )
    upload_dataset(ctx.client, "meters", CHAOS_SPEC)
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    results = {}
    for query in GRIDPOCKET_QUERIES:
        frame, _report = ctx.run_query(query.sql("largeMeter"))
        results[query.name] = frame.collect()
    return ctx, results


@pytest.fixture(scope="module")
def baseline():
    _ctx, results = run_workload(fault_plan=None)
    return results


class TestChaosCorrectness:
    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_results_identical_under_faults(self, plan_name, baseline):
        ctx, results = run_workload(fault_plan=plan_name)
        for name, rows in baseline.items():
            assert results[name] == rows, (
                f"query {name} diverged under plan {plan_name!r}"
            )
        # The plan actually did something.
        assert ctx.fault_plan.fired() > 0

    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_retries_stay_within_budget(self, plan_name):
        ctx, _results = run_workload(fault_plan=plan_name)
        stats = ctx.client.stats
        policy = ctx.client.retry_policy
        # Each logical operation retries at most max_attempts - 1 times.
        assert stats.retries <= (policy.max_attempts - 1) * stats.requests
        # Nothing ran out of attempts (the plans are survivable).
        assert stats.exhausted == 0
        # Task-level retry is bounded by the scheduler's attempt budget.
        task_attempts = {}
        for metrics in ctx.spark_context.task_log:
            key = (metrics.stage_id, metrics.task_id)
            task_attempts[key] = max(
                task_attempts.get(key, 0), metrics.attempt
            )
        assert all(
            attempts <= ctx.spark_context.max_task_attempts
            for attempts in task_attempts.values()
        )

    def test_storlet_crash_plan_degrades_gracefully(self):
        ctx, _results = run_workload(fault_plan="storlet-crash")
        assert ctx.connector.metrics.pushdown_fallbacks > 0
        assert ctx.fault_plan.fired("storlet-fault") > 0

    def test_flaky_object_plan_exercises_failover_or_retry(self):
        ctx, _results = run_workload(fault_plan="flaky-object")
        summary = ctx.resilience_summary()
        assert summary["get_failovers"] + summary["client_retries"] > 0

    def test_device_loss_plan_loses_devices(self):
        ctx, _results = run_workload(fault_plan="device-loss")
        assert ctx.cluster.failed_devices


class TestOverloadByteIdentity:
    """The ``overload`` plan (docs/admission.md) must stay on the
    byte-identity contract with the QoS tier armed."""

    #: Breakers + deadline budgets, no tenant quotas: the data-plane
    #: QoS features that may reroute or cancel requests mid-flight.
    QOS = QosConfig(
        breaker_failure_threshold=3,
        breaker_cooldown_consults=4,
        proxy_overhead_seconds=0.001,
        object_overhead_seconds=0.001,
        stream_seconds_per_mb=0.01,
    )

    def test_results_identical_at_parallelism_1_vs_8_under_qos(self):
        """Query results are byte-identical at parallelism 1 vs 8 with
        circuit breakers and deadline budgets armed.  (Breaker state
        advances per consultation across threads, so *which* requests
        it rejects is interleaving-dependent -- but replica failover
        guarantees every rejection is absorbed and the rows match.)"""
        serial_ctx, serial = run_workload(
            "overload", parallelism=1, qos=self.QOS
        )
        parallel_ctx, parallel = run_workload(
            "overload", parallelism=8, qos=self.QOS
        )
        assert serial  # not vacuous
        assert parallel == serial
        assert serial_ctx.fault_plan.fired() > 0
        assert parallel_ctx.fault_plan.fired() > 0
        # The shed/reject counters exist but live outside the
        # determinism contract (qos_summary, not resilience_summary).
        assert "breaker_rejections" in serial_ctx.qos_summary()

    def test_fingerprint_identical_at_parallelism_1_vs_8(self):
        """Without breakers rerouting requests, the overload plan's
        fired-fault fingerprint is parallelism-independent, like every
        other named plan (per-scope consult counts)."""
        serial_ctx, serial = run_workload("overload", parallelism=1)
        parallel_ctx, parallel = run_workload("overload", parallelism=8)
        assert parallel == serial
        assert (
            parallel_ctx.fault_plan.fingerprint()
            == serial_ctx.fault_plan.fingerprint()
        )
        assert (
            parallel_ctx.resilience_summary()
            == serial_ctx.resilience_summary()
        )


class TestChaosDeterminism:
    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_same_seed_same_faults_and_counters(self, plan_name):
        first_ctx, first_results = run_workload(fault_plan=plan_name)
        second_ctx, second_results = run_workload(fault_plan=plan_name)
        assert (
            first_ctx.fault_plan.fingerprint()
            == second_ctx.fault_plan.fingerprint()
        )
        assert first_results == second_results
        first_summary = first_ctx.resilience_summary()
        second_summary = second_ctx.resilience_summary()
        assert first_summary == second_summary
