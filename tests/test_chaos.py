"""Chaos suite: GridPocket queries under seeded fault plans.

Acceptance criteria for the resilient data path:

* every Table-I query returns byte-identical results under each fault
  plan vs. the fault-free run;
* the storlet-crash plan forces graceful degradation
  (``pushdown_fallbacks > 0``);
* retries stay within the configured budget (no unbounded retry);
* the whole fault sequence is deterministic: same seed + same plan =>
  same injected faults and same retry counters.

The seed can be varied from the environment (``REPRO_CHAOS_SEED``) so CI
can sweep several fault sequences.
"""

import os

import pytest

from repro.core import ScoopContext
from repro.faults import named_plan
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.gridpocket.queries import GRIDPOCKET_QUERIES
from repro.swift.retry import RetryPolicy

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20170417"))
CHAOS_SPEC = DatasetSpec(meters=12, intervals=64, objects=3)
FAULT_PLANS = ("device-loss", "flaky-object", "storlet-crash")


def run_workload(fault_plan=None, seed=CHAOS_SEED):
    """Upload the dataset and run all Table-I queries; returns the
    context and per-query results."""
    ctx = ScoopContext(
        chunk_size=48 * 1024,
        retry_policy=RetryPolicy(seed=seed),
        fault_plan=named_plan(fault_plan, seed=seed) if fault_plan else None,
    )
    upload_dataset(ctx.client, "meters", CHAOS_SPEC)
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    results = {}
    for query in GRIDPOCKET_QUERIES:
        frame, _report = ctx.run_query(query.sql("largeMeter"))
        results[query.name] = frame.collect()
    return ctx, results


@pytest.fixture(scope="module")
def baseline():
    _ctx, results = run_workload(fault_plan=None)
    return results


class TestChaosCorrectness:
    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_results_identical_under_faults(self, plan_name, baseline):
        ctx, results = run_workload(fault_plan=plan_name)
        for name, rows in baseline.items():
            assert results[name] == rows, (
                f"query {name} diverged under plan {plan_name!r}"
            )
        # The plan actually did something.
        assert ctx.fault_plan.fired() > 0

    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_retries_stay_within_budget(self, plan_name):
        ctx, _results = run_workload(fault_plan=plan_name)
        stats = ctx.client.stats
        policy = ctx.client.retry_policy
        # Each logical operation retries at most max_attempts - 1 times.
        assert stats.retries <= (policy.max_attempts - 1) * stats.requests
        # Nothing ran out of attempts (the plans are survivable).
        assert stats.exhausted == 0
        # Task-level retry is bounded by the scheduler's attempt budget.
        task_attempts = {}
        for metrics in ctx.spark_context.task_log:
            key = (metrics.stage_id, metrics.task_id)
            task_attempts[key] = max(
                task_attempts.get(key, 0), metrics.attempt
            )
        assert all(
            attempts <= ctx.spark_context.max_task_attempts
            for attempts in task_attempts.values()
        )

    def test_storlet_crash_plan_degrades_gracefully(self):
        ctx, _results = run_workload(fault_plan="storlet-crash")
        assert ctx.connector.metrics.pushdown_fallbacks > 0
        assert ctx.fault_plan.fired("storlet-fault") > 0

    def test_flaky_object_plan_exercises_failover_or_retry(self):
        ctx, _results = run_workload(fault_plan="flaky-object")
        summary = ctx.resilience_summary()
        assert summary["get_failovers"] + summary["client_retries"] > 0

    def test_device_loss_plan_loses_devices(self):
        ctx, _results = run_workload(fault_plan="device-loss")
        assert ctx.cluster.failed_devices


class TestChaosDeterminism:
    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_same_seed_same_faults_and_counters(self, plan_name):
        first_ctx, first_results = run_workload(fault_plan=plan_name)
        second_ctx, second_results = run_workload(fault_plan=plan_name)
        assert (
            first_ctx.fault_plan.fingerprint()
            == second_ctx.fault_plan.fingerprint()
        )
        assert first_results == second_results
        first_summary = first_ctx.resilience_summary()
        second_summary = second_ctx.resilience_summary()
        assert first_summary == second_summary
