"""Tests for the SQL lexer and parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql.errors import SqlParseError
from repro.sql.expressions import (
    Aggregate,
    BinaryOp,
    Column,
    FunctionCall,
    InList,
    Like,
    Literal,
    Star,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_expression, parse_query


class TestLexer:
    def test_keywords_lowercased(self):
        tokens = tokenize("SELECT Vid FROM t")
        assert tokens[0].text == "select"
        assert tokens[1].text == "Vid"  # identifiers keep case

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("'oops")

    def test_numbers(self):
        texts = [t.text for t in tokenize("1 2.5 1e3 2.5E-2") if t.text]
        assert texts == ["1", "2.5", "1e3", "2.5E-2"]

    def test_comments_skipped(self):
        tokens = tokenize("select -- a comment\n x")
        assert [t.text for t in tokens if t.text] == ["select", "x"]

    def test_operators(self):
        texts = [t.text for t in tokenize("<= >= <> != = < >") if t.text]
        assert texts == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("select @")

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].text == "weird name"


class TestParseQuery:
    def test_minimal_select(self):
        query = parse_query("SELECT a FROM t")
        assert query.table == "t"
        assert query.items[0].expression == Column("a")

    def test_star(self):
        query = parse_query("SELECT * FROM t")
        assert isinstance(query.items[0].expression, Star)

    def test_aliases_with_and_without_as(self):
        query = parse_query("SELECT a AS x, b y FROM t")
        assert query.items[0].alias == "x"
        assert query.items[1].alias == "y"

    def test_where_like(self):
        query = parse_query("SELECT a FROM t WHERE a LIKE '2015-%'")
        assert query.where == Like(Column("a"), "2015-%")

    def test_where_not_like(self):
        query = parse_query("SELECT a FROM t WHERE a NOT LIKE 'x%'")
        assert query.where == Like(Column("a"), "x%", negated=True)

    def test_in_list(self):
        query = parse_query("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(query.where, InList)
        assert [item.value for item in query.where.items] == [1, 2, 3]

    def test_group_by_expressions(self):
        query = parse_query(
            "SELECT SUBSTRING(date, 0, 7), sum(x) FROM t "
            "GROUP BY SUBSTRING(date, 0, 7)"
        )
        assert query.group_by == [
            FunctionCall("substring", [Column("date"), Literal(0), Literal(7)])
        ]

    def test_order_by_directions(self):
        query = parse_query("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [asc for _e, asc in query.order_by] == [False, True, True]

    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 7").limit == 7

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_count_star(self):
        query = parse_query("SELECT count(*) FROM t")
        aggregate = query.items[0].expression
        assert isinstance(aggregate, Aggregate)
        assert isinstance(aggregate.arg, Star)

    def test_operator_precedence(self):
        query = parse_query("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(query.where, BinaryOp)
        assert query.where.op == "or"
        assert query.where.right.op == "and"

    def test_arithmetic_precedence(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression == BinaryOp(
            "+", Literal(1), BinaryOp("*", Literal(2), Literal(3))
        )

    def test_parentheses_override(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.op == "*"

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT a FROM t garbage garbage")

    def test_missing_from_raises(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT a WHERE x = 1")

    def test_aggregate_requires_single_argument(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT sum(a, b) FROM t")

    def test_between(self):
        query = parse_query("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert query.where.low == Literal(1)
        assert query.where.high == Literal(5)

    def test_is_null_and_is_not_null(self):
        q1 = parse_query("SELECT a FROM t WHERE a IS NULL")
        q2 = parse_query("SELECT a FROM t WHERE a IS NOT NULL")
        assert not q1.where.negated
        assert q2.where.negated

    def test_case_expression(self):
        query = parse_query(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t"
        )
        assert "CASE" in query.items[0].expression.to_sql()

    def test_all_gridpocket_queries_parse(self):
        from repro.gridpocket import GRIDPOCKET_QUERIES

        for gp_query in GRIDPOCKET_QUERIES:
            parsed = parse_query(gp_query.sql("largeMeter"))
            assert parsed.table == "largeMeter"
            assert parsed.where is not None
            assert parsed.group_by


class TestRoundTrip:
    CASES = [
        "SELECT a FROM t",
        "SELECT a, b AS x FROM t WHERE (a = 1)",
        "SELECT SUM(a) AS total FROM t GROUP BY b ORDER BY b LIMIT 3",
        "SELECT a FROM t WHERE (a LIKE 'x%')",
        "SELECT a FROM t WHERE ((a > 1) AND (b < 2))",
        "SELECT DISTINCT a FROM t",
        "SELECT FIRST_VALUE(a) FROM t GROUP BY b",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_to_sql_reparses_identically(self, sql):
        first = parse_query(sql)
        second = parse_query(first.to_sql())
        assert second.to_sql() == first.to_sql()

    @settings(max_examples=50, deadline=None)
    @given(
        column=st.sampled_from(["a", "b", "city"]),
        value=st.one_of(
            st.integers(-1000, 1000),
            st.text(
                alphabet=st.characters(
                    min_codepoint=32, max_codepoint=126
                ),
                max_size=12,
            ),
        ),
        op=st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]),
    )
    def test_comparison_round_trip(self, column, value, op):
        literal = Literal(value)
        sql = f"SELECT {column} FROM t WHERE {column} {op} {literal.to_sql()}"
        query = parse_query(sql)
        reparsed = parse_query(query.to_sql())
        assert reparsed.to_sql() == query.to_sql()
