"""Tests for the consistent-hashing ring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.swift.ring import Device, Ring, RingBuilder, hash_path


def build_ring(nodes=4, disks=2, part_power=8, replicas=3, weights=None):
    builder = RingBuilder(part_power=part_power, replica_count=replicas)
    for node in range(nodes):
        for disk in range(disks):
            weight = weights[node] if weights else 1.0
            builder.add_device(
                zone=node % 2, weight=weight, node=f"node{node}", disk=disk
            )
    builder.rebalance()
    return builder


class TestBuilderValidation:
    def test_part_power_bounds(self):
        with pytest.raises(ValueError):
            RingBuilder(part_power=0)
        with pytest.raises(ValueError):
            RingBuilder(part_power=33)

    def test_replica_count_bound(self):
        with pytest.raises(ValueError):
            RingBuilder(replica_count=0)

    def test_empty_rebalance_raises(self):
        with pytest.raises(ValueError):
            RingBuilder().rebalance()

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Device(0, 0, -1.0, "n")

    def test_remove_unknown_device_raises(self):
        builder = RingBuilder()
        with pytest.raises(KeyError):
            builder.remove_device(99)


class TestAssignment:
    def test_every_partition_fully_replicated(self):
        ring = build_ring().get_ring()
        for part in range(ring.part_count):
            devices = ring.get_part_devices(part)
            assert len(devices) == 3

    def test_replicas_on_distinct_devices(self):
        ring = build_ring().get_ring()
        for part in range(ring.part_count):
            ids = [d.id for d in ring.get_part_devices(part)]
            assert len(set(ids)) == 3

    def test_replicas_spread_across_nodes(self):
        ring = build_ring(nodes=6, disks=2).get_ring()
        for part in range(ring.part_count):
            nodes = {d.node for d in ring.get_part_devices(part)}
            assert len(nodes) == 3

    def test_balance_is_tight_for_equal_weights(self):
        builder = build_ring(nodes=4, disks=2, part_power=10)
        assert builder.balance() < 2.0

    def test_weight_proportional_assignment(self):
        builder = build_ring(
            nodes=2, disks=1, replicas=1, part_power=10, weights=[1.0, 3.0]
        )
        counts = builder.get_ring().device_partition_counts()
        heavy = counts[1]
        light = counts[0]
        assert heavy / light == pytest.approx(3.0, rel=0.1)

    def test_zero_weight_device_gets_nothing(self):
        builder = RingBuilder(part_power=8, replica_count=2)
        builder.add_device(zone=0, weight=1.0, node="a")
        builder.add_device(zone=1, weight=1.0, node="b")
        drained = builder.add_device(zone=2, weight=0.0, node="c")
        builder.rebalance()
        counts = builder.get_ring().device_partition_counts()
        assert counts[drained.id] == 0


class TestLookup:
    def test_lookup_is_deterministic(self):
        ring = build_ring().get_ring()
        first = ring.get_nodes("AUTH_a", "c", "obj")
        second = ring.get_nodes("AUTH_a", "c", "obj")
        assert first == second

    def test_different_objects_hash_to_different_partitions(self):
        ring = build_ring(part_power=12).get_ring()
        parts = {
            ring.get_part("AUTH_a", "c", f"obj{i}") for i in range(200)
        }
        assert len(parts) > 150  # overwhelming majority distinct

    def test_partition_out_of_range_raises(self):
        ring = build_ring(part_power=4).get_ring()
        with pytest.raises(ValueError):
            ring.get_part_devices(16)

    def test_hash_path_distinguishes_components(self):
        assert hash_path("a", "b", "c") != hash_path("a", "bc")
        assert hash_path("a") != hash_path("b")

    def test_partitions_for_device_consistent_with_table(self):
        ring = build_ring(part_power=6).get_ring()
        some_device = next(iter(ring.devices))
        assigned = ring.partitions_for_device(some_device)
        for replica, part in assigned:
            assert ring.get_part_devices(part)[replica].id == some_device


class TestRebalance:
    def test_adding_device_moves_few_partitions(self):
        builder = build_ring(nodes=4, disks=2, part_power=10)
        before = builder.get_ring()
        builder.add_device(zone=3, weight=1.0, node="node_new", disk=0)
        moved = builder.rebalance()
        total = builder.part_count * builder.replica_count
        # A new device owning 1/9 of the weight should attract roughly
        # total/9 assignments, not trigger wholesale reshuffling.
        assert moved < total * 0.25

    def test_rebalanced_ring_still_fully_replicated(self):
        builder = build_ring(nodes=4, disks=2)
        builder.add_device(zone=3, weight=2.0, node="node_new", disk=0)
        builder.rebalance()
        ring = builder.get_ring()
        for part in range(ring.part_count):
            ids = [d.id for d in ring.get_part_devices(part)]
            assert len(set(ids)) == len(ids) == 3

    def test_removing_device_reassigns_its_partitions(self):
        builder = build_ring(nodes=4, disks=2)
        victim = 0
        builder.remove_device(victim)
        builder.rebalance()
        ring = builder.get_ring()
        counts = ring.device_partition_counts()
        assert victim not in counts
        for part in range(ring.part_count):
            assert victim not in [d.id for d in ring.get_part_devices(part)]

    def test_set_weight_changes_share(self):
        builder = build_ring(nodes=2, disks=1, replicas=1, part_power=10)
        builder.set_weight(0, 4.0)
        builder.rebalance()
        counts = builder.get_ring().device_partition_counts()
        assert counts[0] > counts[1] * 2


class TestRingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        account=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=20,
        ),
        obj=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=40,
        ),
    )
    def test_any_path_resolves_to_full_replica_set(self, account, obj):
        ring = _SHARED_RING
        part, devices = ring.get_nodes(account, "container", obj)
        assert 0 <= part < ring.part_count
        assert len({d.id for d in devices}) == ring.replica_count

    @settings(max_examples=10, deadline=None)
    @given(part_power=st.integers(min_value=2, max_value=8))
    def test_partition_count_matches_power(self, part_power):
        ring = build_ring(part_power=part_power).get_ring()
        counts = ring.device_partition_counts()
        assert sum(counts.values()) == (2**part_power) * 3


_SHARED_RING = build_ring(nodes=5, disks=2, part_power=8).get_ring()
