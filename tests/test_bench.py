"""Tests for the benchmark orchestration subsystem (repro.bench):
schema validation, the orchestrator's capture contract (JSON + Chrome
trace + percentile histograms), the report generator (golden-file and
drift gate), baseline comparison, and the ``repro bench`` CLI."""

import copy
import json
import pathlib

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    SchemaError,
    check_document,
    compare_to_baseline,
    generate_markdown,
    load_results,
    run_experiment,
    validate,
    validate_result,
    write_report,
)
from repro.bench.experiments import EXPERIMENTS, experiment_names
from repro.cli import main
from repro.obs import get_collector, get_registry, validate_chrome_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _fixture_document() -> dict:
    """A small, fully fixed result document (registered name: fig1)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": "fig1",
        "title": "Fig. 1 -- ingest-then-compute grows linearly",
        "mode": "full",
        "paper": "linear growth in query completion times.",
        "tables": [
            {
                "title": "Fig. 1 -- query time vs dataset size",
                "headers": ["dataset (GB)", "query time (s)"],
                "rows": [[5, 8.2], [50, 44.2]],
            }
        ],
        "results": {"points": [{"dataset_gb": 5, "query_seconds": 8.2}]},
        "headline": {"seconds_per_gb_at_50gb": 0.884},
        "checks": [
            {
                "name": "linear growth",
                "passed": True,
                "detail": "spread 0.000 vs max 0.800",
            }
        ],
        "metrics": {"histograms": {}},
        "timing": {"wall_seconds": 0.25},
        "trace": {"file": "trace_fig1.json", "spans": 7, "dropped": 0},
    }


class TestSchemaValidator:
    def test_fixture_document_validates(self):
        validate_result(_fixture_document())

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.pop("headline"), "missing required key"),
            (lambda d: d.update(mode="fast"), "not in"),
            (lambda d: d.update(schema_version=99), "not in"),
            (lambda d: d["checks"].clear(), "minItems"),
            (lambda d: d["checks"][0].update(passed="yes"), "boolean"),
            (lambda d: d["timing"].update(wall_seconds=-1), "minimum"),
            (lambda d: d["tables"][0]["headers"].append(3), "string"),
            (lambda d: d.update(trace={"spans": 0, "dropped": 0}), "minimum"),
        ],
    )
    def test_violations_name_the_path(self, mutate, fragment):
        document = _fixture_document()
        mutate(document)
        with pytest.raises(SchemaError, match=fragment):
            validate_result(document)

    def test_unknown_schema_keyword_is_an_error(self):
        with pytest.raises(SchemaError, match="unsupported"):
            validate(1, {"type": "integer", "maximum": 5})

    def test_bool_is_not_a_number(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "number"})


class TestOrchestrator:
    def test_registry_names_are_canonical(self):
        assert experiment_names() == [
            "fig1", "table1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "ablations", "skipping", "placement", "workday",
        ]

    def test_unknown_experiment_raises_with_known_names(self):
        with pytest.raises(KeyError, match="fig10"):
            run_experiment("fig99")

    def test_run_captures_schema_valid_json_trace_and_percentiles(
        self, tmp_path
    ):
        document = run_experiment("fig1", quick=True, out_dir=tmp_path)
        validate_result(document)

        on_disk = json.loads((tmp_path / "BENCH_fig1.json").read_text())
        validate_result(on_disk)
        assert on_disk["experiment"] == "fig1"
        assert on_disk["mode"] == "quick"
        assert all(check["passed"] for check in on_disk["checks"])

        chrome = json.loads((tmp_path / "trace_fig1.json").read_text())
        validate_chrome_trace(chrome)
        bench_events = [
            e for e in chrome["traceEvents"] if e.get("cat") == "bench"
        ]
        assert len(bench_events) == on_disk["trace"]["spans"]
        # Every point span carries the experiment's minted trace id.
        trace_ids = {e["args"]["trace_id"] for e in bench_events}
        assert trace_ids == {"t00000001"}

        histograms = on_disk["metrics"]["histograms"]
        point_series = histograms["bench.point_seconds{experiment=fig1}"]
        assert point_series["count"] == 6  # one per dataset size
        for quantile in ("p50", "p95", "p99"):
            assert point_series[quantile] >= 0
        sim_series = histograms["bench.sim_seconds{experiment=fig1,mode=plain}"]
        assert sim_series["count"] == 6
        # Simulated durations are deterministic: p99 ~ the 50 GB run.
        assert sim_series["p99"] == pytest.approx(44.2, rel=0.01)

    def test_run_restores_previous_collectors(self):
        before_collector = get_collector()
        before_registry = get_registry()
        run_experiment("fig1", quick=True)
        assert get_collector() is before_collector
        assert get_registry() is before_registry

    def test_no_out_dir_touches_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        document = run_experiment("fig1", quick=True)
        assert "file" not in document["trace"]
        assert list(tmp_path.iterdir()) == []


class TestReportGenerator:
    def _results_dir(self, tmp_path) -> pathlib.Path:
        results = tmp_path / "results"
        results.mkdir()
        document = _fixture_document()
        document["trace"].pop("file")
        (results / "BENCH_fig1.json").write_text(json.dumps(document))
        return results

    def test_golden_file_markdown_is_byte_identical(self, tmp_path):
        """A fixed results JSON renders exactly the committed golden
        markdown -- any generator change must update the golden file
        consciously."""
        results = self._results_dir(tmp_path)
        text = generate_markdown(load_results(results))
        golden = (GOLDEN_DIR / "experiments_fig1.md").read_text()
        assert text == golden

    def test_check_passes_then_fails_after_one_cell_mutation(
        self, tmp_path
    ):
        results = self._results_dir(tmp_path)
        out = tmp_path / "EXPERIMENTS.md"
        write_report(results, out)
        assert check_document(results, out) == []

        document = json.loads((results / "BENCH_fig1.json").read_text())
        document["tables"][0]["rows"][1][1] = 99.9  # one cell
        (results / "BENCH_fig1.json").write_text(json.dumps(document))
        diff = check_document(results, out)
        assert diff
        assert any("99.9" in line for line in diff)

    def test_check_missing_document_is_full_drift(self, tmp_path):
        results = self._results_dir(tmp_path)
        assert check_document(results, tmp_path / "absent.md")

    def test_load_results_rejects_misnamed_documents(self, tmp_path):
        results = self._results_dir(tmp_path)
        (results / "BENCH_fig5.json").write_text(
            (results / "BENCH_fig1.json").read_text()
        )
        with pytest.raises(SchemaError, match="does not match filename"):
            load_results(results)

    def test_load_results_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path)


class TestBaselineComparison:
    def _dirs(self, tmp_path):
        baseline = tmp_path / "baseline"
        baseline.mkdir()
        document = _fixture_document()
        document["trace"].pop("file")
        (baseline / "BENCH_fig1.json").write_text(json.dumps(document))
        return baseline, document

    def test_identical_results_pass(self, tmp_path):
        baseline, document = self._dirs(tmp_path)
        assert compare_to_baseline([document], baseline) == []

    def test_headline_drift_is_flagged(self, tmp_path):
        baseline, document = self._dirs(tmp_path)
        drifted = copy.deepcopy(document)
        drifted["headline"]["seconds_per_gb_at_50gb"] *= 1.5
        regressions = compare_to_baseline([drifted], baseline, 0.05)
        assert len(regressions) == 1
        assert "seconds_per_gb_at_50gb" in regressions[0]

    def test_small_drift_within_tolerance_passes(self, tmp_path):
        baseline, document = self._dirs(tmp_path)
        drifted = copy.deepcopy(document)
        drifted["headline"]["seconds_per_gb_at_50gb"] *= 1.01
        assert compare_to_baseline([drifted], baseline, 0.05) == []

    def test_check_regression_is_flagged(self, tmp_path):
        baseline, document = self._dirs(tmp_path)
        regressed = copy.deepcopy(document)
        regressed["checks"][0]["passed"] = False
        regressions = compare_to_baseline([regressed], baseline)
        assert any("check regressed" in line for line in regressions)


class TestAbComparison:
    def _results_dir(self, tmp_path, name, p95, mean):
        """One results dir holding a fixture doc with point timings."""
        directory = tmp_path / name
        directory.mkdir()
        document = _fixture_document()
        document["trace"].pop("file")
        document["metrics"]["histograms"] = {
            "bench.point_seconds{experiment=fig1}": {
                "count": 4,
                "total": mean * 4,
                "min": mean / 2,
                "max": p95,
                "mean": mean,
                "p50": mean,
                "p95": p95,
                "p99": p95,
            }
        }
        (directory / "BENCH_fig1.json").write_text(json.dumps(document))
        return directory

    def test_compare_reports_percentile_deltas(self, tmp_path):
        from repro.bench import compare_point_seconds

        dir_a = self._results_dir(tmp_path, "a", p95=2.0, mean=1.0)
        dir_b = self._results_dir(tmp_path, "b", p95=1.0, mean=0.5)
        comparison = compare_point_seconds(dir_a, dir_b)
        (row,) = comparison["experiments"]
        assert row["experiment"] == "fig1"
        assert row["p95_delta"] == pytest.approx(-0.5)
        assert row["mean_delta"] == pytest.approx(-0.5)
        assert comparison["unpaired"] == []

    def test_markdown_renders_every_percentile_column(self, tmp_path):
        from repro.bench import compare_point_seconds, render_ab_markdown

        dir_a = self._results_dir(tmp_path, "a", p95=2.0, mean=1.0)
        dir_b = self._results_dir(tmp_path, "b", p95=1.0, mean=0.5)
        rendered = render_ab_markdown(compare_point_seconds(dir_a, dir_b))
        assert "p50" in rendered and "p95" in rendered and "p99" in rendered
        assert "-50.0%" in rendered
        assert "never fails" in rendered

    def test_cli_ab_mode_writes_report_and_exits_zero(
        self, tmp_path, capsys
    ):
        dir_a = self._results_dir(tmp_path, "a", p95=2.0, mean=1.0)
        dir_b = self._results_dir(tmp_path, "b", p95=1.0, mean=0.5)
        out_dir = tmp_path / "ab"
        code = main(
            ["bench", "--ab", str(dir_a), str(dir_b),
             "--out-dir", str(out_dir)]
        )
        assert code == 0
        written = json.loads(
            (out_dir / "AB_point_seconds.json").read_text()
        )
        assert written["experiments"][0]["p95_delta"] == pytest.approx(-0.5)
        assert (out_dir / "AB_point_seconds.md").exists()
        assert "-50.0%" in capsys.readouterr().out

    def test_cli_ab_missing_directory_exits_one(self, tmp_path, capsys):
        dir_a = self._results_dir(tmp_path, "a", p95=2.0, mean=1.0)
        code = main(
            ["bench", "--ab", str(dir_a), str(tmp_path / "missing"),
             "--out-dir", str(tmp_path / "ab")]
        )
        assert code == 1
        assert "A/B compare failed" in capsys.readouterr().err


class TestBenchCli:
    def test_bench_run_quick_writes_documents(self, tmp_path, capsys):
        code = main(
            ["bench", "run", "--figures", "fig1", "--quick",
             "--out-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "BENCH_fig1.json").exists()
        assert (tmp_path / "trace_fig1.json").exists()
        assert "1/1 checks" in capsys.readouterr().out

    def test_bare_bench_normalizes_to_run(self, tmp_path):
        code = main(
            ["bench", "--figures", "fig1", "--quick",
             "--out-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "BENCH_fig1.json").exists()

    def test_bench_unknown_figure_exits_2(self, tmp_path, capsys):
        code = main(
            ["bench", "--figures", "nope", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_bench_report_and_check_flow(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(
            ["bench", "--figures", "fig1", "--quick",
             "--out-dir", str(out_dir)]
        ) == 0
        doc_path = tmp_path / "EXPERIMENTS.md"
        assert main(
            ["bench", "report", "--results", str(out_dir),
             "--out", str(doc_path)]
        ) == 0
        assert main(
            ["bench", "report", "--results", str(out_dir),
             "--out", str(doc_path), "--check"]
        ) == 0
        # Drift: change one rendered cell in the measured JSON.
        bench_path = out_dir / "BENCH_fig1.json"
        document = json.loads(bench_path.read_text())
        document["tables"][0]["rows"][0][1] = 123.456
        bench_path.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(
            ["bench", "report", "--results", str(out_dir),
             "--out", str(doc_path), "--check"]
        ) == 1
        assert "drifted" in capsys.readouterr().err

    def test_bench_run_gates_against_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        assert main(
            ["bench", "--figures", "fig1", "--quick",
             "--out-dir", str(baseline)]
        ) == 0
        fresh = tmp_path / "fresh"
        assert main(
            ["bench", "--figures", "fig1", "--quick",
             "--out-dir", str(fresh), "--baseline", str(baseline)]
        ) == 0
        # Poison the baseline headline: the rerun must now fail.
        bench_path = baseline / "BENCH_fig1.json"
        document = json.loads(bench_path.read_text())
        document["headline"]["seconds_per_gb_at_50gb"] *= 10
        bench_path.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(
            ["bench", "--figures", "fig1", "--quick",
             "--out-dir", str(fresh), "--baseline", str(baseline)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_bench_list_names_every_experiment(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
