"""Tests for the WSGI-style middleware composition primitives."""

import pytest

from repro.swift.exceptions import NotFound
from repro.swift.http import Request, Response
from repro.swift.middleware import (
    BaseMiddleware,
    CatchErrors,
    RequestLogger,
    build_pipeline,
)


def echo_app(request: Request) -> Response:
    return Response(200, body=request.path.encode())


class Tag(BaseMiddleware):
    """Appends a tag to a response header (records wrapping order)."""

    def __init__(self, app, tag):
        super().__init__(app)
        self.tag = tag

    def handle(self, request):
        response = self.app(request)
        trail = response.headers.get("x-trail", "")
        response.headers["x-trail"] = trail + self.tag
        return response

    @classmethod
    def factory(cls, tag):
        return lambda app: cls(app, tag)


class TestBuildPipeline:
    def test_first_factory_is_outermost(self):
        pipeline = build_pipeline(
            echo_app, [Tag.factory("outer"), Tag.factory("inner")]
        )
        response = pipeline(Request("GET", "/a/c/o"))
        # Response passes inner first, then outer appends last.
        assert response.headers["x-trail"] == "innerouter"

    def test_empty_pipeline_is_app(self):
        assert build_pipeline(echo_app, []) is echo_app

    def test_base_middleware_default_passthrough(self):
        pipeline = build_pipeline(echo_app, [BaseMiddleware])
        response = pipeline(Request("GET", "/a/c/o"))
        assert response.read() == b"/a/c/o"


class TestCatchErrors:
    def test_swift_error_keeps_status(self):
        def failing(request):
            raise NotFound("gone")

        response = CatchErrors(failing)(Request("GET", "/a"))
        assert response.status == 404
        assert b"gone" in response.read()

    def test_arbitrary_exception_becomes_500(self):
        def crashing(request):
            raise RuntimeError("unexpected")

        response = CatchErrors(crashing)(Request("GET", "/a"))
        assert response.status == 500

    def test_success_passes_through(self):
        response = CatchErrors(echo_app)(Request("GET", "/a/b/c"))
        assert response.status == 200


class TestRequestLogger:
    def test_records_method_path_status(self):
        log = []
        pipeline = build_pipeline(echo_app, [RequestLogger.factory(log)])
        pipeline(Request("PUT", "/x/y/z"))
        pipeline(Request("GET", "/x"))
        assert log == [("PUT", "/x/y/z", 200), ("GET", "/x", 200)]

    def test_default_log_list(self):
        logger = RequestLogger(echo_app)
        logger(Request("GET", "/a"))
        assert logger.log == [("GET", "/a", 200)]
