"""Cross-layer consistency: functional measurements vs the perf model.

The reproduction's two layers must tell the same story: the *fraction*
of bytes a query moves on the functional rig (real storlets, real CSV)
must match the fraction the performance model sends over the simulated
LB link for the same selectivity.  If these drift apart, the figure
reproductions no longer describe the implemented system.
"""

import pytest

from repro.gridpocket import METER_SCHEMA, synthetic_query
from repro.perfmodel import IngestSimulation, SelectivityProfile


class TestTransferFractionAgreement:
    @pytest.mark.parametrize("target", [0.3, 0.7, 0.95])
    def test_functional_and_model_fractions_match(self, scoop, target):
        sql = synthetic_query(target)
        _frame, report = scoop.run_query(sql)
        functional_fraction = (
            report.bytes_transferred / report.bytes_requested
        )

        simulation = IngestSimulation()
        result = simulation.run(
            "pushdown",
            10e9,
            SelectivityProfile.rows(report.data_selectivity),
        )
        model_fraction = result.bytes_over_lb / result.dataset_bytes
        assert model_fraction == pytest.approx(
            functional_fraction, abs=0.05
        )

    def test_projection_fraction_agreement(self, scoop):
        sql = synthetic_query(0.0, columns=["vid", "date", "index"])
        _frame, report = scoop.run_query(sql)
        functional_fraction = (
            report.bytes_transferred / report.bytes_requested
        )
        simulation = IngestSimulation()
        result = simulation.run(
            "pushdown",
            10e9,
            SelectivityProfile.columns(report.data_selectivity),
        )
        model_fraction = result.bytes_over_lb / result.dataset_bytes
        assert model_fraction == pytest.approx(
            functional_fraction, abs=0.05
        )


class TestStorletCostAgreement:
    def test_sandbox_cpu_tracks_bytes_processed(self, scoop):
        """Functional sandbox CPU accounting should scale linearly with
        scanned bytes, like the model's per-byte storlet cost."""
        before_cpu = scoop.storage_cpu_seconds()
        scoop.connector.metrics.reset()
        scoop.sql(synthetic_query(0.5)).collect()
        first_cpu = scoop.storage_cpu_seconds() - before_cpu
        first_bytes = scoop.connector.metrics.bytes_requested

        before_cpu = scoop.storage_cpu_seconds()
        scoop.connector.metrics.reset()
        scoop.sql(synthetic_query(0.5)).collect()
        second_cpu = scoop.storage_cpu_seconds() - before_cpu
        second_bytes = scoop.connector.metrics.bytes_requested

        assert first_bytes == second_bytes
        assert first_cpu == pytest.approx(second_cpu, rel=0.01)

    def test_row_filter_cheaper_than_column_projection_functionally(
        self, scoop
    ):
        """The sandbox cost model's asymmetry (also in the perf model)
        holds on the functional path."""
        before = scoop.storage_cpu_seconds()
        scoop.sql(synthetic_query(0.5)).collect()  # row filter only
        row_cpu = scoop.storage_cpu_seconds() - before

        before = scoop.storage_cpu_seconds()
        scoop.sql(
            synthetic_query(0.0, columns=["vid", "date", "index"])
        ).collect()  # projection only
        column_cpu = scoop.storage_cpu_seconds() - before
        assert column_cpu > row_cpu
