"""Tests for the experiment harness (tables/figures reproduction)."""

import pytest

from repro.experiments import (
    ablation_adaptive_pushdown,
    ablation_chunk_size,
    ablation_staging,
    fig1_ingest_scaling,
    fig5_speedup_grid,
    fig6_high_selectivity,
    fig7_gridpocket_speedups,
    fig8_parquet_comparison,
    fig9_resource_usage,
    fig10_storage_cpu,
    render_table,
    table1_selectivities,
)
from repro.experiments.figures import fig8_crossover
from repro.experiments.gridpocket_runs import fig7_total_batch_seconds


@pytest.fixture(scope="module")
def table1():
    return table1_selectivities()


class TestFig1:
    def test_linear_growth(self):
        points = fig1_ingest_scaling(sizes_gb=(10, 20, 30))
        assert [p.dataset_gb for p in points] == [10, 20, 30]
        deltas = [
            points[i + 1].query_seconds - points[i].query_seconds
            for i in range(len(points) - 1)
        ]
        assert deltas[1] == pytest.approx(deltas[0], rel=0.15)


class TestTable1:
    def test_all_queries_measured(self, table1):
        assert len(table1) == 7
        names = {row.name for row in table1}
        assert "ShowGraphHCHP" in names

    def test_row_selectivity_matches_paper_band(self, table1):
        """Paper Table I: every query discards >99% of rows."""
        for row in table1:
            assert row.measured.row_selectivity > 0.99, row.name

    def test_data_selectivity_high(self, table1):
        for row in table1:
            assert row.measured.data_selectivity > 0.99, row.name

    def test_rotterdam_query_more_selective_than_date_only(self, table1):
        by_name = {row.name: row for row in table1}
        assert (
            by_name["Showgraphcons"].measured.row_selectivity
            > by_name["ShowMapCons"].measured.row_selectivity
        )

    def test_as_row_shape(self, table1):
        row = table1[0].as_row()
        assert len(row) == 5
        assert row[0] == "ShowMapCons"


class TestFig5Fig6:
    def test_grid_shape(self):
        points = fig5_speedup_grid(
            selectivities=(0.0, 0.8),
            selectivity_types=("row", "mixed"),
            datasets=("small",),
        )
        assert len(points) == 4

    def test_speedups_grow_with_selectivity(self):
        points = fig5_speedup_grid(
            selectivities=(0.0, 0.6, 0.9),
            selectivity_types=("mixed",),
            datasets=("large",),
        )
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0, abs=0.1)

    def test_fig6_reaches_thirtyish_on_large(self):
        points = fig6_high_selectivity(
            selectivities=(0.9999,), datasets=("large",)
        )
        assert 20 < points[0].speedup < 45


class TestFig7:
    def test_speedups_positive_and_ranked_by_scale(self, table1):
        rows = fig7_gridpocket_speedups(
            datasets=("small", "medium"), table1=table1
        )
        assert len(rows) == 14
        small = {r.query_name: r.speedup for r in rows if r.dataset == "small"}
        medium = {
            r.query_name: r.speedup for r in rows if r.dataset == "medium"
        }
        for name in small:
            assert medium[name] > small[name] > 2.0

    def test_batch_totals_shape(self, table1):
        """Paper: the whole set takes 4,814.7s plain vs 155.48s with
        Scoop on 500 GB -- we check the >10x batch-level gap."""
        rows = fig7_gridpocket_speedups(datasets=("medium",), table1=table1)
        plain_total, pushdown_total = fig7_total_batch_seconds(rows, "medium")
        assert plain_total > pushdown_total * 10


class TestFig8:
    def test_crossover_in_expected_band(self):
        points = fig8_parquet_comparison(
            selectivities=(0.0, 0.2, 0.4, 0.6, 0.8, 0.9)
        )
        crossover = fig8_crossover(points)
        assert crossover is not None
        assert 0.4 <= crossover <= 0.8

    def test_parquet_wins_at_zero(self):
        points = fig8_parquet_comparison(selectivities=(0.0,))
        assert points[0].parquet_speedup > points[0].scoop_speedup

    def test_scoop_factor_at_ninety(self):
        """Paper: at 90% selectivity Scoop is ~2.16x faster than Parquet."""
        points = fig8_parquet_comparison(selectivities=(0.9,))
        ratio = points[0].scoop_speedup / points[0].parquet_speedup
        assert 1.5 < ratio < 3.5


class TestFig9Fig10:
    @pytest.fixture(scope="class")
    def usage(self):
        return fig9_resource_usage()

    def test_summary_keys(self, usage):
        summary = usage.summary()
        assert summary["plain_seconds"] > summary["pushdown_seconds"] * 10

    def test_cpu_cycles_saved_matches_paper_band(self, usage):
        """Paper: 97.8% fewer compute CPU cycles."""
        assert usage.compute_cpu_cycles_saved() > 0.9

    def test_lb_saturation_contrast(self, usage):
        assert usage.plain.peak_series("lb.throughput") == pytest.approx(
            1.25e9, rel=0.02
        )
        assert usage.pushdown.mean_series("lb.throughput") < 0.5e9

    def test_fig10_series(self):
        plain_series, pushdown_series = fig10_storage_cpu()
        assert pushdown_series.mean() > plain_series.mean() * 10
        assert plain_series.mean() < 0.05


class TestAblations:
    def test_staging(self):
        results = ablation_staging(selectivities=(0.99,))
        assert results[0].object_advantage > 1.5

    def test_chunk_size_has_interior_optimum(self):
        results = ablation_chunk_size(
            chunk_sizes_mb=(32, 256, 8192), dataset="medium"
        )
        times = [r.pushdown_seconds for r in results]
        assert times[1] < times[0]
        assert times[1] < times[2]

    def test_adaptive_shedding_order(self):
        scenarios = ablation_adaptive_pushdown(cpu_levels=(0.2, 0.7, 0.9))
        idle, soft, hard = scenarios
        assert idle.gold_pushed and idle.silver_pushed and idle.bronze_pushed
        assert soft.gold_pushed and soft.silver_pushed
        assert not soft.bronze_pushed
        assert hard.gold_pushed
        assert not hard.silver_pushed and not hard.bronze_pushed


class TestRenderTable:
    def test_render_includes_everything(self, capsys):
        rendered = render_table(
            "Demo", ["a", "bb"], [[1, "x"], [2.5, "yy"]]
        )
        assert "Demo" in rendered
        assert "bb" in rendered
        assert "2.50" in rendered
        assert capsys.readouterr().out  # printed too

    def test_render_empty_rows(self):
        rendered = render_table("Empty", ["col"], [])
        assert "col" in rendered


class TestWorkday:
    @pytest.fixture(scope="class")
    def comparison(self, table1):
        from repro.experiments import workday_comparison

        return workday_comparison(
            inter_arrival_seconds=120, table1=table1
        )

    def test_plain_queries_pile_up(self, comparison):
        plain, _pushdown = comparison
        # Later queries wait behind earlier ones: response times grow.
        responses = [q.response_time for q in plain.queries]
        assert responses[-1] > responses[0] * 0.9
        assert plain.mean_response_time() > 1000

    def test_pushdown_keeps_up_with_arrivals(self, comparison):
        _plain, pushdown = comparison
        # Every query finishes before the next arrives (no queueing).
        assert pushdown.max_response_time() < 120
        assert (
            pushdown.mean_response_time()
            < _plain.mean_response_time() / 20
        )

    def test_makespans_ordered(self, comparison):
        plain, pushdown = comparison
        assert pushdown.makespan() < plain.makespan()
