"""The docs link checker: repo docs are clean, and breakage is caught."""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_links  # noqa: E402


def test_repo_docs_have_no_broken_links(capsys):
    assert check_links.main([]) == 0
    out = capsys.readouterr().out
    assert "no broken intra-repo links" in out


def test_docs_index_links_every_docs_page():
    index = (ROOT / "docs" / "README.md").read_text()
    pages = sorted(p.name for p in (ROOT / "docs").glob("*.md"))
    missing = [
        page
        for page in pages
        if page != "README.md" and f"]({page})" not in index
    ]
    assert not missing, f"docs/README.md does not link: {missing}"


def test_top_readme_links_the_docs_index():
    assert "docs/README.md" in (ROOT / "README.md").read_text()


class TestDetection:
    def _check(self, tmp_path, body):
        page = tmp_path / "page.md"
        page.write_text(body)
        return check_links.check_file(page, tmp_path)

    def test_missing_file_is_reported(self, tmp_path):
        problems = self._check(tmp_path, "see [x](nope.md)")
        assert problems == [("nope.md", "no such file")]

    def test_missing_heading_is_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Real Heading\n")
        problems = self._check(tmp_path, "see [x](other.md#fake-heading)")
        assert problems == [("other.md#fake-heading", "no heading #fake-heading")]

    def test_valid_heading_passes(self, tmp_path):
        (tmp_path / "other.md").write_text("## The Lock Hierarchy!\n")
        assert self._check(tmp_path, "[x](other.md#the-lock-hierarchy)") == []

    def test_escape_is_reported(self, tmp_path):
        problems = self._check(tmp_path, "[x](../../etc/passwd)")
        assert problems and problems[0][1] == "escapes the repository"

    def test_external_and_fenced_links_are_skipped(self, tmp_path):
        body = (
            "[ok](https://example.com)\n"
            "```\n[not a link](missing.md)\n```\n"
        )
        assert self._check(tmp_path, body) == []

    def test_same_file_fragment(self, tmp_path):
        assert self._check(tmp_path, "# Here\n[x](#here)") == []
        assert self._check(tmp_path, "[x](#gone)") == [
            ("#gone", "no such heading in this file")
        ]


@pytest.mark.parametrize(
    ("heading", "slug"),
    [
        ("Simple", "simple"),
        ("The GET/query data flow", "the-getquery-data-flow"),
        ("`explain_profile()` and you", "explain_profile-and-you"),
        ("Where timing comes from", "where-timing-comes-from"),
    ],
)
def test_github_slug(heading, slug):
    assert check_links.github_slug(heading) == slug
