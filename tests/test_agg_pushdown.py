"""Tests for aggregation pushdown: the storlet, the partial-state merge,
the planner and the end-to-end path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agg_pushdown import (
    plan_aggregation_pushdown,
    run_aggregation_query,
)
from repro.gridpocket import METER_SCHEMA
from repro.sql import Schema
from repro.sql.errors import SqlAnalysisError
from repro.sql.parser import parse_query
from repro.storlets import (
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.storlets.agg_storlet import (
    AggregatingStorlet,
    AggregationSpec,
    merge_partials,
)
from repro.storlets.csv_storlet import _parse_record
from repro.sql.types import DataType

SCHEMA = Schema.of("vid", "date", "index:float", "city")
DATA = (
    b"m1,2015-01-01,10.0,Rotterdam\n"
    b"m1,2015-01-02,12.0,Rotterdam\n"
    b"m2,2015-01-01,5.0,Paris\n"
    b"m2,2015-02-01,7.0,Paris\n"
)


def run_agg(data, spec, extra=None, chunk=33):
    chunks = [data[i : i + chunk] for i in range(0, len(data), chunk)]
    out = StorletOutputStream()
    parameters = {
        "schema": SCHEMA.to_header(),
        "aggregation": spec.to_json(),
        **(extra or {}),
    }
    AggregatingStorlet().invoke(
        [StorletInputStream(chunks)], [out], parameters, StorletLogger("t")
    )
    return [
        _parse_record(line, ",")
        for line in out.getvalue().splitlines()
    ]


class TestAggregatingStorlet:
    def test_grouped_sum_and_count(self):
        spec = AggregationSpec(["vid"], [("sum", "index"), ("count", "*")])
        partials = run_agg(DATA, spec)
        merged = dict(
            (row[0], (float(row[1]), int(row[2]))) for row in partials
        )
        assert merged == {"m1": (22.0, 2), "m2": (12.0, 2)}

    def test_group_by_expression(self):
        spec = AggregationSpec(
            ["SUBSTRING(date, 0, 7)"], [("sum", "index")]
        )
        partials = run_agg(DATA, spec)
        merged = dict((row[0], float(row[1])) for row in partials)
        assert merged == {"2015-01": 27.0, "2015-02": 7.0}

    def test_filters_applied_before_aggregation(self):
        from repro.sql import EqualTo, filters_to_json

        spec = AggregationSpec(["vid"], [("count", "*")])
        partials = run_agg(
            DATA,
            spec,
            extra={"filters": filters_to_json([EqualTo("city", "Paris")])},
        )
        assert dict((r[0], int(r[1])) for r in partials) == {"m2": 2}

    def test_unmergeable_aggregate_rejected(self):
        with pytest.raises(StorletException):
            AggregationSpec(["vid"], [("median", "index")])

    def test_missing_parameters_raise(self):
        out = StorletOutputStream()
        with pytest.raises(StorletException):
            AggregatingStorlet().invoke(
                [StorletInputStream([DATA])],
                [out],
                {"schema": SCHEMA.to_header()},
                StorletLogger("t"),
            )

    def test_spec_json_round_trip(self):
        spec = AggregationSpec(
            ["vid", "city"], [("sum", "index"), ("avg", "index")]
        )
        restored = AggregationSpec.from_json(spec.to_json())
        assert restored.group_by == spec.group_by
        assert restored.aggregates == spec.aggregates


class TestMergePartials:
    def test_ranges_merge_to_full_result(self):
        spec = AggregationSpec(["vid"], [("sum", "index"), ("count", "*")])
        # Simulate two ranges, each aggregated separately.
        first = run_agg(DATA[:58], spec)  # first two records
        second = run_agg(
            DATA[58:], spec, extra={}
        )
        merged = merge_partials(spec, first + second)
        assert dict((k, (total, n)) for k, total, n in merged) == {
            "m1": (22.0, 2),
            "m2": (12.0, 2),
        }

    def test_avg_merges_by_sum_and_count(self):
        spec = AggregationSpec(["vid"], [("avg", "index")])
        partials = [["m1", "10.0", "2"], ["m1", "20.0", "3"]]
        merged = merge_partials(spec, partials)
        assert merged == [("m1", 6.0)]

    def test_min_max_merge(self):
        spec = AggregationSpec(["g"], [("min", "x"), ("max", "x")])
        partials = [["a", "3.0", "9.0"], ["a", "1.0", "4.0"]]
        assert merge_partials(spec, partials) == [("a", 1.0, 9.0)]

    def test_first_value_respects_range_order(self):
        spec = AggregationSpec(["g"], [("first_value", "x")])
        partials = [["a", "0", ""], ["a", "1", "early"], ["a", "1", "late"]]
        assert merge_partials(spec, partials) == [("a", "early")]

    def test_null_only_groups(self):
        spec = AggregationSpec(["g"], [("sum", "x")])
        partials = [["a", ""], ["a", ""]]
        assert merge_partials(spec, partials) == [("a", None)]

    def test_key_types_parse_keys(self):
        spec = AggregationSpec(["n"], [("count", "*")])
        merged = merge_partials(
            spec, [["7", "2"], ["7", "3"]], key_types=[DataType.INT]
        )
        assert merged == [(7, 5)]

    def test_wrong_width_raises(self):
        spec = AggregationSpec(["g"], [("count", "*")])
        with pytest.raises(ValueError):
            merge_partials(spec, [["a", "1", "extra"]])

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=40,
        ),
        split_at=st.integers(min_value=0, max_value=40),
    )
    def test_merge_is_split_invariant(self, values, split_at):
        """Aggregating any prefix/suffix split and merging equals
        aggregating everything at once."""
        spec = AggregationSpec(
            ["g"], [("sum", "x"), ("count", "*"), ("min", "x"), ("max", "x")]
        )
        schema = Schema.of("g", "x:float")

        def partials_for(subset):
            if not subset:
                return []
            data = "".join(f"{g},{x!r}\n" for g, x in subset).encode()
            out = StorletOutputStream()
            AggregatingStorlet().invoke(
                [StorletInputStream([data])],
                [out],
                {"schema": schema.to_header(), "aggregation": spec.to_json()},
                StorletLogger("t"),
            )
            return [
                _parse_record(line, ",")
                for line in out.getvalue().splitlines()
            ]

        split_at = min(split_at, len(values))
        split_result = merge_partials(
            spec, partials_for(values[:split_at]) + partials_for(values[split_at:])
        )
        whole_result = merge_partials(spec, partials_for(values))
        assert {row[0]: row[2] for row in split_result} == {
            row[0]: row[2] for row in whole_result
        }  # counts
        for split_row, whole_row in zip(
            sorted(split_result), sorted(whole_result)
        ):
            assert split_row[1] == pytest.approx(whole_row[1], abs=1e-6)
            assert split_row[3] == pytest.approx(whole_row[3])
            assert split_row[4] == pytest.approx(whole_row[4])


class TestPlanner:
    def plan(self, sql, schema=METER_SCHEMA):
        return plan_aggregation_pushdown(parse_query(sql), schema)

    def test_mergeable_query_planned(self):
        plan = self.plan(
            "SELECT vid, sum(index) as total FROM t "
            "WHERE city LIKE 'Rot%' GROUP BY vid ORDER BY vid LIMIT 5"
        )
        assert plan is not None
        assert plan.spec.group_by == ["vid"]
        assert plan.spec.aggregates == [("sum", "index")]
        assert len(plan.filters) == 1
        assert plan.limit == 5
        assert plan.output_schema.names == ["vid", "total"]

    def test_non_aggregate_query_not_planned(self):
        assert self.plan("SELECT vid FROM t WHERE code > 5") is None

    def test_residual_where_not_planned(self):
        assert (
            self.plan(
                "SELECT vid, sum(index) FROM t "
                "WHERE SUBSTRING(date, 0, 4) = '2015' GROUP BY vid"
            )
            is None
        )

    def test_expression_over_aggregates_not_planned(self):
        assert (
            self.plan("SELECT max(index) - min(index) FROM t") is None
        )

    def test_distinct_aggregate_not_planned(self):
        assert (
            self.plan("SELECT count(DISTINCT vid) FROM t GROUP BY city")
            is None
        )

    def test_order_by_alias_resolves(self):
        plan = self.plan(
            "SELECT vid, sum(index) as total FROM t GROUP BY vid "
            "ORDER BY total DESC"
        )
        assert plan is not None
        assert plan.order_by == [(1, False)]

    def test_order_by_unresolvable_not_planned(self):
        assert (
            self.plan(
                "SELECT vid, sum(index) FROM t GROUP BY vid ORDER BY city"
            )
            is None
        )


class TestEndToEnd:
    def test_matches_filter_pushdown_results(self, scoop):
        sql = (
            "SELECT vid, sum(index) as total, count(*) as n "
            "FROM largeMeter WHERE city LIKE 'Rotterdam' "
            "GROUP BY vid ORDER BY vid"
        )
        (schema, rows), report = scoop.run_aggregation_query(
            sql, "meters", METER_SCHEMA
        )
        reference = scoop.sql(sql).collect()
        assert schema.names == ["vid", "total", "n"]
        assert len(rows) == len(reference)
        for got, want in zip(rows, reference):
            assert got[0] == want[0]
            assert got[1] == pytest.approx(want[1])
            assert got[2] == want[2]

    def test_transfers_far_less_than_filter_pushdown(self, scoop):
        sql = (
            "SELECT vid, sum(index) as total FROM largeMeter "
            "GROUP BY vid ORDER BY vid"
        )
        _result, agg_report = scoop.run_aggregation_query(
            sql, "meters", METER_SCHEMA
        )
        _frame, filter_report = scoop.run_query(sql)
        assert (
            agg_report.bytes_transferred
            < filter_report.bytes_transferred / 5
        )

    def test_unmergeable_query_raises(self, scoop):
        with pytest.raises(SqlAnalysisError):
            scoop.run_aggregation_query(
                "SELECT vid FROM largeMeter", "meters", METER_SCHEMA
            )

    def test_order_and_limit_applied(self, scoop):
        sql = (
            "SELECT vid, max(index) as peak FROM largeMeter "
            "GROUP BY vid ORDER BY peak DESC LIMIT 3"
        )
        (schema, rows), _report = scoop.run_aggregation_query(
            sql, "meters", METER_SCHEMA
        )
        assert len(rows) == 3
        peaks = [row[1] for row in rows]
        assert peaks == sorted(peaks, reverse=True)
