"""Tests for source filters: semantics, serialization, composition."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import filters as f
from repro.sql.errors import SqlError
from repro.sql.filters import (
    conjunction_predicate,
    filter_from_dict,
    filters_from_json,
    filters_to_json,
)
from repro.sql.types import Schema

SCHEMA = Schema.of("name", "age:int", "city")
ROWS = [
    ("alice", 30, "Rotterdam"),
    ("bob", 25, "Paris"),
    ("carol", None, "Rotterdam"),
    (None, 40, "Berlin"),
]


def keep(filter_obj):
    predicate = filter_obj.to_predicate(SCHEMA)
    return [row for row in ROWS if predicate(row)]


class TestSemantics:
    def test_equal_to(self):
        assert keep(f.EqualTo("city", "Rotterdam")) == [ROWS[0], ROWS[2]]

    def test_comparisons(self):
        assert keep(f.GreaterThan("age", 25)) == [ROWS[0], ROWS[3]]
        assert keep(f.GreaterThanOrEqual("age", 30)) == [ROWS[0], ROWS[3]]
        assert keep(f.LessThan("age", 30)) == [ROWS[1]]
        assert keep(f.LessThanOrEqual("age", 25)) == [ROWS[1]]

    def test_null_never_matches_comparison(self):
        assert ROWS[2] not in keep(f.GreaterThan("age", 0))
        assert ROWS[3] not in keep(f.EqualTo("name", "alice"))

    def test_string_filters(self):
        assert keep(f.StringStartsWith("name", "a")) == [ROWS[0]]
        assert keep(f.StringEndsWith("name", "b")) == [ROWS[1]]
        assert keep(f.StringContains("name", "aro")) == [ROWS[2]]

    def test_in(self):
        assert keep(f.In("age", [25, 40])) == [ROWS[1], ROWS[3]]

    def test_null_filters(self):
        assert keep(f.IsNull("age")) == [ROWS[2]]
        assert keep(f.IsNotNull("name")) == ROWS[:3]

    def test_like_pattern(self):
        assert keep(f.LikePattern("city", "R%dam")) == [ROWS[0], ROWS[2]]
        assert keep(f.LikePattern("name", "_ob")) == [ROWS[1]]

    def test_and_or_not(self):
        both = f.And(
            f.EqualTo("city", "Rotterdam"), f.GreaterThan("age", 25)
        )
        assert keep(both) == [ROWS[0]]
        either = f.Or(f.EqualTo("age", 25), f.EqualTo("age", 40))
        assert keep(either) == [ROWS[1], ROWS[3]]
        negated = f.Not(f.EqualTo("city", "Rotterdam"))
        assert keep(negated) == [ROWS[1], ROWS[3]]

    def test_incomparable_types_never_match(self):
        # age vs string comparison must not blow up, just not match.
        assert keep(f.GreaterThan("age", "not-a-number")) == []

    def test_references(self):
        composite = f.And(f.EqualTo("a", 1), f.Not(f.IsNull("b")))
        assert composite.references() == {"a", "b"}

    def test_conjunction_predicate_empty_accepts_all(self):
        predicate = conjunction_predicate([], SCHEMA)
        assert all(predicate(row) for row in ROWS)

    def test_conjunction_predicate_ands(self):
        predicate = conjunction_predicate(
            [f.EqualTo("city", "Rotterdam"), f.IsNotNull("age")], SCHEMA
        )
        assert [row for row in ROWS if predicate(row)] == [ROWS[0]]


class TestSerialization:
    SAMPLES = [
        f.EqualTo("a", 1),
        f.EqualTo("a", "text"),
        f.GreaterThan("a", 2.5),
        f.GreaterThanOrEqual("a", 0),
        f.LessThan("a", -1),
        f.LessThanOrEqual("a", 10),
        f.StringStartsWith("s", "pre"),
        f.StringEndsWith("s", "post"),
        f.StringContains("s", "mid"),
        f.In("a", [1, 2, 3]),
        f.IsNull("a"),
        f.IsNotNull("a"),
        f.LikePattern("s", "a%b_c"),
        f.And(f.EqualTo("a", 1), f.EqualTo("b", 2)),
        f.Or(f.IsNull("a"), f.Not(f.EqualTo("b", 0))),
    ]

    @pytest.mark.parametrize("original", SAMPLES, ids=lambda s: s.op)
    def test_dict_round_trip(self, original):
        assert filter_from_dict(original.to_dict()) == original

    def test_json_round_trip_list(self):
        text = filters_to_json(self.SAMPLES)
        restored = filters_from_json(text)
        assert restored == self.SAMPLES

    def test_json_payload_is_plain_json(self):
        payload = json.loads(filters_to_json([f.EqualTo("a", 1)]))
        assert payload == [{"op": "eq", "attr": "a", "value": 1}]

    def test_unknown_op_raises(self):
        with pytest.raises(SqlError):
            filter_from_dict({"op": "frobnicate", "attr": "a"})

    def test_non_list_payload_raises(self):
        with pytest.raises(SqlError):
            filters_from_json('{"op": "eq"}')

    @settings(max_examples=60, deadline=None)
    @given(
        attr=st.sampled_from(["name", "age", "city"]),
        value=st.one_of(
            st.integers(-100, 100),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=15),
        ),
        op_class=st.sampled_from(
            [
                f.EqualTo,
                f.GreaterThan,
                f.GreaterThanOrEqual,
                f.LessThan,
                f.LessThanOrEqual,
                f.StringStartsWith,
                f.StringContains,
            ]
        ),
    )
    def test_round_trip_preserves_semantics(self, attr, value, op_class):
        if op_class in (f.StringStartsWith, f.StringContains):
            value = str(value)
        original = op_class(attr, value)
        restored = filters_from_json(filters_to_json([original]))[0]
        original_pred = original.to_predicate(SCHEMA)
        restored_pred = restored.to_predicate(SCHEMA)
        for row in ROWS:
            assert original_pred(row) == restored_pred(row)
