"""Unit tests for the DES kernel: environment, events, processes."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_clock_starts_at_initial_time(self):
        assert Environment(5.0).now == 5.0

    def test_run_empty_schedule_is_noop(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.timeout(10)
        env.run(until=4)
        assert env.now == 4

    def test_run_until_past_time_raises(self):
        env = Environment(10)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_step_empty_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(3)
        env.timeout(1)
        assert env.peek() == 1

    def test_peek_empty_is_infinite(self):
        assert Environment().peek() == float("inf")

    def test_events_fire_in_time_order(self):
        env = Environment()
        fired = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            fired.append(tag)

        env.process(proc(env, 3, "c"))
        env.process(proc(env, 1, "a"))
        env.process(proc(env, 2, "b"))
        env.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        env = Environment()
        fired = []

        def proc(env, tag):
            yield env.timeout(1)
            fired.append(tag)

        for tag in ("x", "y", "z"):
            env.process(proc(env, tag))
        env.run()
        assert fired == ["x", "y", "z"]

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env, event):
            yield env.timeout(2)
            event.succeed("payload")

        event = env.event()
        env.process(proc(env, event))
        assert env.run(until=event) == "payload"
        assert env.now == 2

    def test_run_until_never_fired_event_raises(self):
        env = Environment()
        event = env.event()
        env.timeout(1)
        with pytest.raises(SimulationError):
            env.run(until=event)


class TestEvent:
    def test_succeed_delivers_value(self):
        env = Environment()
        results = []

        def proc(env, event):
            value = yield event
            results.append(value)

        event = env.event()
        env.process(proc(env, event))
        event.succeed(42)
        env.run()
        assert results == [42]

    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_failed_event_raises_in_process(self):
        env = Environment()
        caught = []

        def proc(env, event):
            try:
                yield event
            except ValueError as error:
                caught.append(str(error))

        event = env.event()
        env.process(proc(env, event))
        event.fail(ValueError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_timeout_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()
        seen = []

        def proc(env):
            value = yield env.timeout(1, value="tick")
            seen.append(value)

        env.process(proc(env))
        env.run()
        assert seen == ["tick"]


class TestProcess:
    def test_process_return_value_becomes_event_value(self):
        env = Environment()

        def child(env):
            yield env.timeout(1)
            return "done"

        def parent(env, out):
            result = yield env.process(child(env))
            out.append(result)

        out = []
        env.process(parent(env, out))
        env.run()
        assert out == ["done"]

    def test_process_requires_generator(self):
        env = Environment()

        def not_a_generator(env):
            return 42

        with pytest.raises(SimulationError):
            env.process(not_a_generator(env))  # type: ignore[arg-type]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc(env):
            yield 42  # type: ignore[misc]

        process = env.process(proc(env))
        env.run()
        assert process.failed

    def test_interrupt_raises_in_process(self):
        env = Environment()
        log = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def attacker(env, victim_process):
            yield env.timeout(5)
            victim_process.interrupt("stop it")

        victim_process = env.process(victim(env))
        env.process(attacker(env, victim_process))
        env.run()
        assert log == [(5, "stop it")]

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_is_alive_transitions(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_already_processed_event_resumes_immediately(self):
        env = Environment()
        seen = []

        def proc(env, event):
            yield env.timeout(3)
            value = yield event  # fired long ago
            seen.append((env.now, value))

        event = env.event()
        event.succeed("early")
        env.process(proc(env, event))
        env.run()
        assert seen == [(3, "early")]


class TestConditions:
    def test_any_of_fires_on_first(self):
        env = Environment()
        times = []

        def proc(env):
            yield AnyOf(env, [env.timeout(5), env.timeout(2)])
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2]

    def test_all_of_waits_for_all(self):
        env = Environment()
        times = []

        def proc(env):
            yield AllOf(env, [env.timeout(5), env.timeout(2)])
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [5]

    def test_or_operator(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(4) | env.timeout(1)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [1]

    def test_and_operator(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(4) & env.timeout(1)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [4]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        times = []

        def proc(env):
            yield AllOf(env, [])
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [0]
