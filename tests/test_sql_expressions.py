"""Tests for expression evaluation, NULL semantics and functions."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql.errors import SqlAnalysisError
from repro.sql.expressions import like_pattern_to_regex
from repro.sql.functions import (
    make_accumulator,
    sql_substring,
)
from repro.sql.parser import parse_expression
from repro.sql.types import Schema

SCHEMA = Schema.of("a:int", "b:float", "s", "flag:bool")


def evaluate(text, row):
    return parse_expression(text).bind(SCHEMA)(row)


ROW = (5, 2.5, "hello", True)


class TestArithmetic:
    def test_basic_operations(self):
        assert evaluate("a + 1", ROW) == 6
        assert evaluate("a - 2", ROW) == 3
        assert evaluate("a * b", ROW) == 12.5
        assert evaluate("a / 2", ROW) == 2.5
        assert evaluate("a % 3", ROW) == 2

    def test_unary_minus(self):
        assert evaluate("-a", ROW) == -5
        assert evaluate("-(a + 1)", ROW) == -6

    def test_division_by_zero_yields_null(self):
        assert evaluate("a / 0", ROW) is None

    def test_null_propagates_through_arithmetic(self):
        assert evaluate("a + 1", (None, 1.0, "x", True)) is None

    def test_string_concat_operator(self):
        assert evaluate("s || '!'", ROW) == "hello!"


class TestComparisons:
    def test_numeric_comparisons(self):
        assert evaluate("a > 4", ROW) is True
        assert evaluate("a > 5", ROW) is False
        assert evaluate("a >= 5", ROW) is True
        assert evaluate("a <> 5", ROW) is False

    def test_string_comparison(self):
        assert evaluate("s = 'hello'", ROW) is True
        assert evaluate("s < 'world'", ROW) is True

    def test_null_comparison_is_null(self):
        assert evaluate("a = 5", (None, 1.0, "x", True)) is None


class TestBooleanLogic:
    def test_kleene_and(self):
        assert evaluate("a > 1 AND s = 'hello'", ROW) is True
        assert evaluate("a > 9 AND s = 'hello'", ROW) is False
        # NULL AND TRUE -> NULL; NULL AND FALSE -> FALSE
        null_row = (None, 1.0, "hello", True)
        assert evaluate("a > 1 AND s = 'hello'", null_row) is None
        assert evaluate("a > 1 AND s = 'x'", null_row) is False

    def test_kleene_or(self):
        null_row = (None, 1.0, "hello", True)
        assert evaluate("a > 1 OR s = 'hello'", null_row) is True
        assert evaluate("a > 1 OR s = 'x'", null_row) is None

    def test_not(self):
        assert evaluate("NOT a > 9", ROW) is True
        assert evaluate("NOT a > 1", ROW) is False
        assert evaluate("NOT a > 1", (None, 1.0, "x", True)) is None


class TestPredicates:
    def test_like(self):
        assert evaluate("s LIKE 'he%'", ROW) is True
        assert evaluate("s LIKE '%lo'", ROW) is True
        assert evaluate("s LIKE 'h_llo'", ROW) is True
        assert evaluate("s LIKE 'x%'", ROW) is False

    def test_not_like(self):
        assert evaluate("s NOT LIKE 'x%'", ROW) is True

    def test_like_null_operand(self):
        assert evaluate("s LIKE 'x%'", (1, 1.0, None, True)) is None

    def test_in(self):
        assert evaluate("a IN (1, 5, 7)", ROW) is True
        assert evaluate("a NOT IN (1, 5, 7)", ROW) is False
        assert evaluate("a IN (1, 2)", ROW) is False

    def test_between(self):
        assert evaluate("a BETWEEN 1 AND 10", ROW) is True
        assert evaluate("a NOT BETWEEN 1 AND 10", ROW) is False
        assert evaluate("a BETWEEN 6 AND 10", ROW) is False

    def test_is_null(self):
        assert evaluate("a IS NULL", (None, 1.0, "x", True)) is True
        assert evaluate("a IS NOT NULL", ROW) is True

    def test_case(self):
        expr = "CASE WHEN a > 3 THEN 'big' WHEN a > 1 THEN 'mid' ELSE 'small' END"
        assert evaluate(expr, ROW) == "big"
        assert evaluate(expr, (2, 0.0, "", False)) == "mid"
        assert evaluate(expr, (0, 0.0, "", False)) == "small"
        no_else = "CASE WHEN a > 9 THEN 1 END"
        assert evaluate(no_else, ROW) is None


class TestFunctions:
    def test_substring_spark_semantics(self):
        # Spark: positions are 1-based; 0 behaves like 1.
        assert sql_substring("2015-01-02 10:00", 0, 7) == "2015-01"
        assert sql_substring("2015-01-02 10:00", 1, 7) == "2015-01"
        assert sql_substring("abcdef", 3, 2) == "cd"
        assert sql_substring("abcdef", -2, 2) == "ef"
        assert sql_substring(None, 1, 2) is None

    def test_substring_via_sql(self):
        assert evaluate("SUBSTRING(s, 0, 4)", ROW) == "hell"
        assert evaluate("SUBSTR(s, 2, 3)", ROW) == "ell"

    def test_string_functions(self):
        assert evaluate("UPPER(s)", ROW) == "HELLO"
        assert evaluate("LOWER('ABC')", ROW) == "abc"
        assert evaluate("LENGTH(s)", ROW) == 5
        assert evaluate("TRIM('  x ')", ROW) == "x"
        assert evaluate("CONCAT(s, '-', a)", ROW) == "hello-5"

    def test_numeric_functions(self):
        assert evaluate("ABS(-3)", ROW) == 3
        assert evaluate("ROUND(2.567, 1)", ROW) == 2.6
        assert evaluate("FLOOR(b)", ROW) == 2
        assert evaluate("CEIL(b)", ROW) == 3

    def test_date_part_functions(self):
        row = (1, 1.0, "2015-03-09 14:20:00", True)
        assert evaluate("YEAR(s)", row) == 2015
        assert evaluate("MONTH(s)", row) == 3
        assert evaluate("DAY(s)", row) == 9
        assert evaluate("HOUR(s)", row) == 14

    def test_coalesce(self):
        assert evaluate("COALESCE(NULL, NULL, 7)", ROW) == 7
        assert evaluate("COALESCE(a, 9)", ROW) == 5

    def test_unknown_function_raises(self):
        with pytest.raises(SqlAnalysisError):
            parse_expression("NOPE(a)").bind(SCHEMA)

    def test_wrong_arity_raises(self):
        with pytest.raises(SqlAnalysisError):
            parse_expression("UPPER(a, b)").bind(SCHEMA)

    def test_unknown_column_raises(self):
        with pytest.raises(SqlAnalysisError):
            parse_expression("missing + 1").bind(SCHEMA)


class TestAccumulators:
    def test_sum(self):
        acc = make_accumulator("sum")
        for value in (1, 2, None, 3):
            acc.add(value)
        assert acc.result() == 6

    def test_sum_of_nothing_is_null(self):
        assert make_accumulator("sum").result() is None

    def test_count_skips_nulls(self):
        acc = make_accumulator("count")
        for value in (1, None, 2):
            acc.add(value)
        assert acc.result() == 2

    def test_min_max(self):
        low, high = make_accumulator("min"), make_accumulator("max")
        for value in (5, None, 2, 9):
            low.add(value)
            high.add(value)
        assert low.result() == 2
        assert high.result() == 9

    def test_avg(self):
        acc = make_accumulator("avg")
        for value in (2, 4, None):
            acc.add(value)
        assert acc.result() == 3.0
        assert make_accumulator("avg").result() is None

    def test_first_and_last_value(self):
        first, last = (
            make_accumulator("first_value"),
            make_accumulator("last_value"),
        )
        for value in ("a", "b", "c"):
            first.add(value)
            last.add(value)
        assert first.result() == "a"
        assert last.result() == "c"

    def test_first_value_keeps_none_if_first(self):
        acc = make_accumulator("first_value")
        acc.add(None)
        acc.add("later")
        assert acc.result() is None

    def test_distinct_sum(self):
        acc = make_accumulator("sum", distinct=True)
        for value in (3, 3, 4):
            acc.add(value)
        assert acc.result() == 7


class TestLikeProperty:
    @settings(max_examples=80, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=20,
        ),
        prefix=st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            max_size=5,
        ),
    )
    def test_prefix_like_matches_startswith(self, value, prefix):
        regex = like_pattern_to_regex(
            "".join(
                ch if ch not in "%_" else "" for ch in prefix
            )
            + "%"
        )
        cleaned = "".join(ch for ch in prefix if ch not in "%_")
        assert bool(regex.match(value)) == value.startswith(cleaned)

    @settings(max_examples=80, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=20,
        )
    )
    def test_percent_matches_everything(self, value):
        assert like_pattern_to_regex("%").match(value)

    @settings(max_examples=80, deadline=None)
    @given(
        value=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=0,
            max_size=20,
        )
    )
    def test_underscore_matches_single_char(self, value):
        assert bool(like_pattern_to_regex("_").match(value)) == (
            len(value) == 1
        )
