"""Property-based tests for the resilience machinery.

Two invariants the retry/failover design leans on:

* **replica equivalence** -- a storlet byte-range GET served by any
  replica returns the same bytes, so a mid-read failover (or a client
  retry that lands on a different replica) cannot change query results;
* **backoff determinism** -- a retry policy's schedule is a pure
  function of its parameters, so chaos runs with a fixed seed replay
  the exact same backoff sequence.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.storlets.csv_storlet import CsvStorlet
from repro.storlets.engine import StorletEngine, StorletRequestHeaders
from repro.sql.types import Schema
from repro.swift import RetryPolicy, SwiftClient, SwiftCluster

SCHEMA = Schema.of("vid", "date", "index:float", "city")

CSV_BODY = b"".join(
    (
        f"v{row % 7},2015-01-{(row % 27) + 1:02d},"
        f"{row * 1.5:.1f},{'Paris' if row % 3 else 'Rotterdam'}\n"
    ).encode()
    for row in range(200)
)


def build_stack():
    engine = StorletEngine()
    cluster = SwiftCluster(
        storage_node_count=3,
        disks_per_node=2,
        replica_count=3,
        part_power=5,
        proxy_middleware=[engine.proxy_middleware()],
        object_middleware=[engine.object_middleware()],
    )
    client = SwiftClient(cluster, "AUTH_prop")
    engine.deploy(CsvStorlet())
    client.put_container("c")
    client.put_object("c", "data.csv", CSV_BODY)
    return client


class TestReplicaEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        start_fraction=st.floats(min_value=0.0, max_value=0.95),
        length=st.integers(min_value=1, max_value=4096),
        replica_index=st.integers(min_value=0, max_value=2),
    )
    def test_range_pushdown_identical_on_every_replica(
        self, start_fraction, length, replica_index
    ):
        """A storlet range GET pinned to replica ``i`` returns the same
        bytes as the primary -- the record-alignment rule (skip the
        partial first record, finish the last owned record from the
        lookahead) must not depend on which replica serves the read."""
        client = build_stack()
        start = int(start_fraction * len(CSV_BODY))
        end = min(start + length - 1, len(CSV_BODY) - 1)
        headers = {
            StorletRequestHeaders.RUN: "csvstorlet",
            StorletRequestHeaders.RANGE: f"bytes={start}-{end}",
            "x-storlet-parameter-schema": SCHEMA.to_header(),
            "x-storlet-parameter-columns": json.dumps(["vid", "city"]),
        }
        _headers, primary = client.get_object("c", "data.csv", headers=headers)
        pinned = dict(headers)
        pinned["x-backend-replica-index"] = str(replica_index)
        _headers, other = client.get_object("c", "data.csv", headers=pinned)
        assert other == primary


class TestBackoffDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        max_attempts=st.integers(min_value=1, max_value=8),
        base=st.floats(min_value=0.001, max_value=1.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_schedule_is_a_pure_function_of_the_policy(
        self, seed, max_attempts, base, jitter
    ):
        first = RetryPolicy(
            max_attempts=max_attempts,
            backoff_base=base,
            jitter=jitter,
            seed=seed,
        )
        second = RetryPolicy(
            max_attempts=max_attempts,
            backoff_base=base,
            jitter=jitter,
            seed=seed,
        )
        assert first.schedule() == second.schedule()
        # Delays are independent of evaluation order and capped.
        reversed_delays = [
            first.delay(index)
            for index in reversed(range(max_attempts))
        ]
        assert list(reversed(reversed_delays)) == first.schedule(max_attempts)
        assert all(
            0.0 <= delay <= first.backoff_cap for delay in first.schedule()
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        attempts=st.integers(min_value=2, max_value=6),
    )
    def test_jittered_schedule_stays_under_unjittered_envelope(
        self, seed, attempts
    ):
        policy = RetryPolicy(seed=seed)
        envelope = RetryPolicy(jitter=0.0)
        for index in range(attempts):
            assert policy.delay(index) <= envelope.delay(index)
