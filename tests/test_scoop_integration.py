"""End-to-end Scoop tests: the full stack on generated GridPocket data.

The central correctness claim: for every query, executing with pushdown
(filtering at the object store) returns byte-identical results to the
classic ingest-then-compute path, while moving far fewer bytes.
"""

import pytest

from repro.gridpocket import (
    GRIDPOCKET_QUERIES,
    METER_SCHEMA,
    synthetic_query,
)


class TestGridPocketQueriesEquivalence:
    @pytest.mark.parametrize(
        "query", GRIDPOCKET_QUERIES, ids=lambda q: q.name
    )
    def test_pushdown_matches_plain(self, scoop, query):
        pushdown_frame = scoop.sql(query.sql("largeMeter"))
        plain_frame = scoop.sql(query.sql("largeMeterPlain"))
        pushdown_rows = pushdown_frame.collect()
        plain_rows = plain_frame.collect()
        assert pushdown_rows == plain_rows
        assert pushdown_frame.schema.names == plain_frame.schema.names

    @pytest.mark.parametrize(
        "query",
        [q for q in GRIDPOCKET_QUERIES if q.name != "ShowPiemonth"],
        ids=lambda q: q.name,
    )
    def test_queries_return_rows(self, scoop, query):
        # The small test dataset covers January 2015, so every non-UKR
        # query has matches.
        frame = scoop.sql(query.sql("largeMeter"))
        assert frame.count() > 0


class TestIngestSavings:
    def test_pushdown_transfers_fewer_bytes(self, scoop):
        sql = (
            "SELECT vid, sum(index) as total FROM {} "
            "WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid"
        )
        _frame, pushdown_report = scoop.run_query(sql.format("largeMeter"))
        _frame, plain_report = scoop.run_query(sql.format("largeMeterPlain"))
        assert (
            pushdown_report.bytes_transferred
            < plain_report.bytes_transferred / 2
        )
        assert pushdown_report.pushdown_requests == pushdown_report.requests
        assert plain_report.pushdown_requests == 0

    def test_reported_selectivity_matches_workload_measurement(self, scoop):
        """The report's data selectivity agrees with the analytic
        measurement of the same query's pushdown spec."""
        from repro.gridpocket import measure_query_selectivity
        from tests.conftest import SMALL_SPEC

        sql = synthetic_query(0.7, columns=["vid", "code"])
        _frame, report = scoop.run_query(sql)
        measured = measure_query_selectivity(sql, METER_SCHEMA, spec=SMALL_SPEC)
        assert report.data_selectivity == pytest.approx(
            measured.data_selectivity, abs=0.05
        )

    def test_zero_selectivity_query_uses_plain_path(self, scoop):
        _frame, report = scoop.run_query("SELECT * FROM largeMeter")
        assert report.pushdown_requests == 0

    def test_storage_cpu_charged_only_for_pushdown(self, scoop):
        before = scoop.storage_cpu_seconds()
        scoop.sql(
            "SELECT vid FROM largeMeter WHERE city = 'Paris'"
        ).collect()
        after_pushdown = scoop.storage_cpu_seconds()
        assert after_pushdown > before
        scoop.sql(
            "SELECT vid FROM largeMeterPlain WHERE city = 'Paris'"
        ).collect()
        assert scoop.storage_cpu_seconds() == after_pushdown


class TestSyntheticSelectivityControl:
    @pytest.mark.parametrize("target", [0.2, 0.5, 0.9])
    def test_row_selectivity_close_to_target(self, scoop, target):
        """The code-column workload hook gives measurable control."""
        sql = synthetic_query(target)
        _frame, report = scoop.run_query(sql)
        assert report.data_selectivity == pytest.approx(target, abs=0.08)

    def test_column_projection_reduces_bytes(self, scoop):
        wide = scoop.run_query(synthetic_query(0.0, columns=None))[1]
        narrow = scoop.run_query(
            synthetic_query(0.5, columns=["vid", "code"])
        )[1]
        assert narrow.bytes_transferred < wide.bytes_transferred


class TestParallelTenants:
    def test_concurrent_filtered_views_leave_object_intact(self, scoop):
        """Multiple jobs can run parallel pushdown filters on the same
        object; each gets its own filtered version (paper Section IV-B)."""
        rotterdam = scoop.sql(
            "SELECT vid FROM largeMeter WHERE city = 'Rotterdam'"
        ).collect()
        paris = scoop.sql(
            "SELECT vid FROM largeMeter WHERE city = 'Paris'"
        ).collect()
        assert set(v for (v,) in rotterdam).isdisjoint(
            v for (v,) in paris
        )
        # Underlying objects unchanged: a full scan still sees all rows.
        total = scoop.sql("SELECT count(*) FROM largeMeterPlain").collect()
        from tests.conftest import SMALL_SPEC

        assert total == [(SMALL_SPEC.total_rows(),)]


class TestSessionExplain:
    def test_explain_shows_handshake(self, scoop):
        text = scoop.sql(
            "SELECT vid FROM largeMeter WHERE city LIKE 'Rot%'"
        ).explain()
        assert "PrunedFilteredScan" in text
        assert "starts_with" in text
