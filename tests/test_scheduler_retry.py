"""Task-level retry, worker blacklisting and retry-safe shuffles."""

import pytest

from repro.spark.scheduler import SparkContext


class FlakyIterator:
    """Fails the first ``failures`` times a partition is computed."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self, iterator):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient failure #{self.calls}")
        return list(iterator)


class TestTaskRetry:
    def test_transient_failure_is_retried(self):
        context = SparkContext(num_workers=4, max_task_attempts=3)
        rdd = context.parallelize([1, 2, 3, 4], num_partitions=1)
        flaky = FlakyIterator(failures=2)
        results = context.run_job(rdd, flaky)
        assert results == [[1, 2, 3, 4]]
        assert flaky.calls == 3
        assert context.task_retries() == 2

    def test_attempts_are_bounded(self):
        context = SparkContext(num_workers=4, max_task_attempts=3)
        rdd = context.parallelize([1], num_partitions=1)
        flaky = FlakyIterator(failures=100)
        with pytest.raises(RuntimeError):
            context.run_job(rdd, flaky)
        assert flaky.calls == 3  # exactly max_task_attempts, no more

    def test_failed_attempts_are_logged(self):
        context = SparkContext(num_workers=2, max_task_attempts=2)
        rdd = context.parallelize([1], num_partitions=1)
        context.run_job(rdd, FlakyIterator(failures=1))
        statuses = [metrics.status for metrics in context.task_log]
        assert statuses == ["failed", "success"]
        attempts = [metrics.attempt for metrics in context.task_log]
        assert attempts == [1, 2]

    def test_retry_lands_on_different_worker(self):
        context = SparkContext(num_workers=4, max_task_attempts=2)
        rdd = context.parallelize([1], num_partitions=1)
        context.run_job(rdd, FlakyIterator(failures=1))
        workers = [metrics.worker for metrics in context.task_log]
        assert workers[0] != workers[1]


class TestBlacklist:
    def test_failing_worker_is_blacklisted(self):
        context = SparkContext(
            num_workers=3, max_task_attempts=4, blacklist_after=2
        )
        # Two failures land on consecutive (distinct) workers; drive
        # one worker over the threshold by hand to keep the test direct.
        context._worker_failures["worker0"] = 2
        assert context.blacklisted_workers() == ["worker0"]
        picks = {context._next_worker() for _ in range(12)}
        assert "worker0" not in picks
        assert picks == {"worker1", "worker2"}

    def test_all_blacklisted_still_schedules(self):
        context = SparkContext(num_workers=2, blacklist_after=1)
        context._worker_failures = {"worker0": 5, "worker1": 5}
        assert context._next_worker() in context.workers


class TestShuffleRetrySafety:
    def test_shuffle_output_not_duplicated_on_retry(self):
        """A map task that fails mid-shuffle must not leave partial
        bucket writes behind when its retry succeeds."""
        context = SparkContext(num_workers=2, max_task_attempts=3)
        rdd = context.parallelize(
            [("a", 1), ("b", 2), ("a", 3)], num_partitions=1
        )
        paired = rdd.map(lambda kv: kv)

        # Make the first computation of the partition fail after the
        # iterator is partially consumed.
        original_iterator = paired.iterator
        state = {"calls": 0}

        def flaky_iterator(split):
            state["calls"] += 1
            if state["calls"] == 1:
                def exploding():
                    yield ("a", 1)
                    raise RuntimeError("mid-task crash")

                return exploding()
            return original_iterator(split)

        paired.iterator = flaky_iterator
        result = dict(paired.reduce_by_key(lambda a, b: a + b).collect())
        assert result == {"a": 4, "b": 2}
        assert context.task_retries() >= 1
