"""Tests for the performance model: the paper's qualitative findings
must hold as invariants of the simulation."""

import dataclasses

import pytest

from repro.perfmodel import (
    DATASETS,
    IngestSimulation,
    PerfParameters,
    SelectivityProfile,
)


@pytest.fixture(scope="module")
def sim():
    return IngestSimulation()


SMALL = DATASETS["small"].size_bytes
LARGE = DATASETS["large"].size_bytes


class TestSelectivityProfile:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            SelectivityProfile(1.5)
        with pytest.raises(ValueError):
            SelectivityProfile(-0.1)

    def test_constructors(self):
        assert SelectivityProfile.rows(0.5).row_filtering
        assert SelectivityProfile.columns(0.5).column_projection
        mixed = SelectivityProfile.mixed(0.5)
        assert mixed.row_filtering and mixed.column_projection
        assert mixed.kept_fraction == pytest.approx(0.5)


class TestBasicRuns:
    def test_unknown_mode_raises(self, sim):
        with pytest.raises(ValueError):
            sim.run("warp", SMALL)

    def test_plain_duration_scales_linearly(self, sim):
        """Fig. 1: ingest-then-compute grows linearly with dataset size."""
        t10 = sim.run("plain", 10e9).duration
        t20 = sim.run("plain", 20e9).duration
        t30 = sim.run("plain", 30e9).duration
        assert (t30 - t20) == pytest.approx(t20 - t10, rel=0.15)

    def test_plain_saturates_lb_at_scale(self, sim):
        """Fig. 9(c): the 10 Gbps LB link saturates during plain ingest."""
        result = sim.run("plain", LARGE)
        assert result.mean_series("lb.utilization") > 0.95

    def test_task_count_from_chunk_size(self, sim):
        result = sim.run("plain", SMALL)
        assert result.task_count == pytest.approx(
            SMALL / sim.params.chunk_size, abs=1
        )


class TestSpeedupInvariants:
    def test_speedup_near_one_at_zero_selectivity(self, sim):
        """Paper: worst-case penalty of 3.4% at no selectivity."""
        speedup = sim.speedup(LARGE, SelectivityProfile.mixed(0.0))
        assert 0.9 < speedup < 1.05

    def test_speedup_monotonic_in_selectivity(self, sim):
        profile = SelectivityProfile.mixed
        speedups = [
            sim.speedup(LARGE, profile(s)) for s in (0.2, 0.5, 0.8, 0.95)
        ]
        assert speedups == sorted(speedups)

    def test_superlinear_growth(self, sim):
        """Fig. 5: 80% -> ~5x but 90% -> >10x (superlinear in s)."""
        at_80 = sim.speedup(LARGE, SelectivityProfile.mixed(0.8))
        at_90 = sim.speedup(LARGE, SelectivityProfile.mixed(0.9))
        assert at_80 == pytest.approx(5.0, rel=0.25)
        assert at_90 > at_80 * 1.7

    def test_headline_30x_at_extreme_selectivity(self, sim):
        """The abstract's headline: up to ~30x on high selectivity."""
        speedup = sim.speedup(LARGE, SelectivityProfile.mixed(0.9999))
        assert 20 < speedup < 45

    def test_row_cheaper_than_column_at_high_selectivity(self, sim):
        """Fig. 5: row selectivity outperforms column/mixed."""
        rows = sim.run(
            "pushdown", LARGE, SelectivityProfile.rows(0.999)
        ).duration
        columns = sim.run(
            "pushdown", LARGE, SelectivityProfile.columns(0.999)
        ).duration
        mixed = sim.run(
            "pushdown", LARGE, SelectivityProfile.mixed(0.999)
        ).duration
        assert rows < columns <= mixed

    def test_larger_datasets_speed_up_more(self, sim):
        """Fig. 6: 3 TB gains exceed 50 GB gains at equal selectivity."""
        profile = SelectivityProfile.mixed(0.99)
        small = sim.speedup(SMALL, profile)
        large = sim.speedup(LARGE, profile)
        assert large > small * 1.5


class TestParquetMode:
    def test_parquet_beats_plain_at_zero_selectivity(self, sim):
        """Fig. 8: compression shortens ingest regardless of query."""
        plain = sim.run("plain", SMALL).duration
        parquet = sim.run(
            "parquet", SMALL, SelectivityProfile.columns(0.0)
        ).duration
        assert plain / parquet > 1.5

    def test_parquet_speedup_flat_in_selectivity(self, sim):
        """Parquet moves the whole object whatever the query keeps."""
        low = sim.run(
            "parquet", SMALL, SelectivityProfile.columns(0.1)
        ).duration
        high = sim.run(
            "parquet", SMALL, SelectivityProfile.columns(0.9)
        ).duration
        assert low == pytest.approx(high, rel=0.05)

    def test_scoop_overtakes_parquet_at_high_selectivity(self, sim):
        """Fig. 8: the crossover -- Scoop wins from ~60-70% upward."""
        profile = SelectivityProfile.columns(0.9)
        scoop = sim.run("pushdown", SMALL, profile).duration
        parquet = sim.run("parquet", SMALL, profile).duration
        assert parquet / scoop > 1.5

    def test_parquet_beats_scoop_at_low_selectivity(self, sim):
        profile = SelectivityProfile.columns(0.2)
        scoop = sim.run("pushdown", SMALL, profile).duration
        parquet = sim.run("parquet", SMALL, profile).duration
        assert parquet < scoop


class TestStaging:
    def test_object_node_beats_proxy_at_high_selectivity(self, sim):
        """Section V-A: running at object nodes avoids moving whole
        objects to the 6-proxy pool with its far smaller CPU capacity."""
        profile = SelectivityProfile.mixed(0.99)
        object_node = sim.run("pushdown", LARGE, profile).duration
        proxy = sim.run("pushdown_proxy", LARGE, profile).duration
        assert proxy > object_node * 1.5


class TestResourceAccounting:
    def test_pushdown_uses_storage_cpu(self, sim):
        profile = SelectivityProfile.mixed(0.99)
        plain = sim.run("plain", LARGE, profile)
        pushdown = sim.run("pushdown", LARGE, profile)
        assert (
            pushdown.mean_series("storage.cpu")
            > plain.mean_series("storage.cpu") * 10
        )

    def test_pushdown_saves_compute_cpu_cycles(self, sim):
        """Fig. 9(a): Scoop cuts compute-cluster CPU cycles drastically."""
        profile = SelectivityProfile.mixed(0.99)
        plain = sim.run("plain", LARGE, profile)
        pushdown = sim.run("pushdown", LARGE, profile)
        plain_cycles = plain.series["worker.cpu"].integral()
        pushdown_cycles = pushdown.series["worker.cpu"].integral()
        assert pushdown_cycles < plain_cycles * 0.1

    def test_pushdown_offloads_lb(self, sim):
        """Fig. 9(c): with Scoop only a trickle crosses the LB."""
        profile = SelectivityProfile.mixed(0.99)
        pushdown = sim.run("pushdown", LARGE, profile)
        assert pushdown.bytes_over_lb == pytest.approx(LARGE * 0.01, rel=0.01)
        assert pushdown.peak_series("lb.throughput") < 0.6e9

    def test_memory_peak_lower_and_shorter_with_scoop(self, sim):
        """Fig. 9(b): lower peak, and held for far less time."""
        profile = SelectivityProfile.mixed(0.99)
        plain = sim.run("plain", LARGE, profile)
        pushdown = sim.run("pushdown", LARGE, profile)
        assert (
            pushdown.peak_series("worker.memory")
            < plain.peak_series("worker.memory")
        )
        assert plain.duration > pushdown.duration * 10

    def test_storage_memory_shows_sandbox_overhead(self, sim):
        """Fig. 10 discussion: the warm sandbox keeps 4-6% memory."""
        profile = SelectivityProfile.mixed(0.5)
        plain = sim.run("plain", LARGE, profile)
        pushdown = sim.run("pushdown", LARGE, profile)
        assert plain.mean_series("storage.memory") == pytest.approx(0.02)
        assert 0.04 <= pushdown.mean_series("storage.memory") <= 0.08


class TestParameterSensitivity:
    def test_small_chunks_add_latency(self):
        base = PerfParameters()
        tiny = dataclasses.replace(base, chunk_size=16e6)
        profile = SelectivityProfile.mixed(0.95)
        normal = IngestSimulation(base).run("pushdown", SMALL, profile)
        chunked = IngestSimulation(tiny).run("pushdown", SMALL, profile)
        assert chunked.duration > normal.duration

    def test_huge_chunks_starve_parallelism(self):
        base = PerfParameters()
        huge = dataclasses.replace(base, chunk_size=32e9)
        profile = SelectivityProfile.mixed(0.95)
        normal = IngestSimulation(base).run("pushdown", LARGE, profile)
        starved = IngestSimulation(huge).run("pushdown", LARGE, profile)
        assert starved.duration > normal.duration * 1.5

    def test_bigger_lb_shrinks_plain_time(self):
        base = PerfParameters()
        fat_testbed = dataclasses.replace(
            base.testbed, lb_bandwidth=base.testbed.lb_bandwidth * 4
        )
        fat = dataclasses.replace(base, testbed=fat_testbed)
        slow = IngestSimulation(base).run("plain", LARGE).duration
        fast = IngestSimulation(fat).run("plain", LARGE).duration
        assert fast < slow / 2
