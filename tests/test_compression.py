"""Tests for the transfer-compression storlets and the combined
filter+compress pushdown path (Section VI-C)."""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.gridpocket import METER_SCHEMA
from repro.storlets import (
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.storlets.compress_storlet import (
    CompressStorlet,
    DecompressStorlet,
    decompress_bytes,
)


def run(storlet, data: bytes, parameters=None, chunk=1000):
    chunks = [data[i : i + chunk] for i in range(0, len(data), chunk)]
    out = StorletOutputStream()
    storlet.invoke(
        [StorletInputStream(chunks)],
        [out],
        parameters or {},
        StorletLogger("t"),
    )
    return out


class TestCompressStorlet:
    PAYLOAD = b"meter,2015-01-01,1.5,Rotterdam\n" * 500

    def test_round_trip(self):
        compressed = run(CompressStorlet(), self.PAYLOAD).getvalue()
        assert decompress_bytes(compressed) == self.PAYLOAD

    def test_actually_compresses(self):
        compressed = run(CompressStorlet(), self.PAYLOAD).getvalue()
        assert len(compressed) < len(self.PAYLOAD) / 5

    def test_sets_encoding_metadata(self):
        out = run(CompressStorlet(), self.PAYLOAD)
        assert (
            out.metadata["x-object-meta-storlet-content-encoding"] == "zlib"
        )

    def test_level_parameter(self):
        fast = run(CompressStorlet(), self.PAYLOAD, {"level": "1"}).getvalue()
        best = run(CompressStorlet(), self.PAYLOAD, {"level": "9"}).getvalue()
        assert decompress_bytes(fast) == decompress_bytes(best) == self.PAYLOAD
        assert len(best) <= len(fast)

    def test_invalid_level_raises(self):
        with pytest.raises(StorletException):
            run(CompressStorlet(), b"x", {"level": "0"})

    def test_empty_input(self):
        compressed = run(CompressStorlet(), b"").getvalue()
        assert decompress_bytes(compressed) == b""

    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(max_size=5000), chunk=st.integers(1, 999))
    def test_round_trip_property(self, data, chunk):
        compressed = run(CompressStorlet(), data, chunk=chunk).getvalue()
        expanded = run(DecompressStorlet(), compressed, chunk=chunk).getvalue()
        assert expanded == data


class TestDecompressStorlet:
    def test_decompresses(self):
        data = b"hello world " * 100
        expanded = run(DecompressStorlet(), zlib.compress(data)).getvalue()
        assert expanded == data

    def test_invalid_stream_raises(self):
        with pytest.raises(StorletException):
            run(DecompressStorlet(), b"definitely not zlib")


class TestCompressedPushdownPath:
    def test_results_identical_with_compression(self, fresh_scoop):
        from repro.gridpocket import DatasetSpec, upload_dataset

        upload_dataset(
            fresh_scoop.client,
            "m",
            DatasetSpec(meters=15, intervals=60, objects=2),
        )
        fresh_scoop.register_csv_table("t", "m", schema=METER_SCHEMA)
        fresh_scoop.register_csv_table(
            "tz", "m", schema=METER_SCHEMA, compress_transfer=True
        )
        sql = (
            "SELECT vid, sum(index) FROM {} WHERE city LIKE 'P%' "
            "GROUP BY vid ORDER BY vid"
        )
        plain_frame, _plain = fresh_scoop.run_query(sql.format("t"))
        zipped_frame, zipped = fresh_scoop.run_query(sql.format("tz"))
        assert plain_frame.collect() == zipped_frame.collect()
        assert zipped.pushdown_requests == zipped.requests

    def test_compression_reduces_transfer_at_low_selectivity(
        self, fresh_scoop
    ):
        from repro.gridpocket import DatasetSpec, upload_dataset

        upload_dataset(
            fresh_scoop.client,
            "m",
            DatasetSpec(meters=15, intervals=120, objects=2),
        )
        fresh_scoop.register_csv_table("t", "m", schema=METER_SCHEMA)
        fresh_scoop.register_csv_table(
            "tz", "m", schema=METER_SCHEMA, compress_transfer=True
        )
        sql = "SELECT * FROM {}"  # zero selectivity: compression only
        _f1, plain = fresh_scoop.run_query(sql.format("t"))
        _f2, zipped = fresh_scoop.run_query(sql.format("tz"))
        assert zipped.bytes_transferred < plain.bytes_transferred / 2

    def test_compress_task_never_noop(self):
        from repro.core import PushdownTask

        task = PushdownTask(schema=METER_SCHEMA, compress=True)
        assert not task.is_noop()

    def test_header_pipeline_includes_compressor(self):
        from repro.core import PushdownTask
        from repro.storlets.engine import StorletRequestHeaders

        task = PushdownTask(
            schema=METER_SCHEMA, columns=["vid"], compress=True
        )
        headers = {}
        task.apply_to_headers(headers)
        assert (
            headers[StorletRequestHeaders.RUN] == "csvstorlet,zlibcompress"
        )


class TestPerfModelCompressedMode:
    def test_combination_beats_parquet_at_zero_selectivity(self):
        from repro.perfmodel import (
            DATASETS,
            IngestSimulation,
            SelectivityProfile,
        )

        sim = IngestSimulation()
        small = DATASETS["small"].size_bytes
        profile = SelectivityProfile.mixed(0.0)
        compressed = sim.run("pushdown_compressed", small, profile).duration
        parquet = sim.run("parquet", small, profile).duration
        assert compressed <= parquet * 1.05

    def test_combination_always_beats_plain_pushdown(self):
        from repro.perfmodel import (
            DATASETS,
            IngestSimulation,
            SelectivityProfile,
        )

        sim = IngestSimulation()
        small = DATASETS["small"].size_bytes
        for selectivity in (0.0, 0.5, 0.9):
            profile = SelectivityProfile.mixed(selectivity)
            compressed = sim.run(
                "pushdown_compressed", small, profile
            ).duration
            pushdown = sim.run("pushdown", small, profile).duration
            assert compressed < pushdown
