"""Tests for the Schema/DataType substrate (used on the wire)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql.errors import SqlAnalysisError
from repro.sql.types import DataType, Field, Schema


class TestDataType:
    def test_parse_string(self):
        assert DataType.STRING.parse("hello") == "hello"
        assert DataType.STRING.parse("") is None

    def test_parse_int(self):
        assert DataType.INT.parse("42") == 42
        with pytest.raises(ValueError):
            DataType.INT.parse("4.2")

    def test_parse_float(self):
        assert DataType.FLOAT.parse("2.5") == 2.5
        assert DataType.FLOAT.parse("1e3") == 1000.0

    def test_parse_bool(self):
        for text in ("true", "1", "yes", "T"):
            assert DataType.BOOL.parse(text) is True
        assert DataType.BOOL.parse("no") is False

    def test_render_none_is_empty(self):
        for dtype in DataType:
            assert dtype.render(None) == ""

    def test_render_bool(self):
        assert DataType.BOOL.render(True) == "true"
        assert DataType.BOOL.render(False) == "false"

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    def test_float_render_parse_round_trip(self, value):
        assert DataType.FLOAT.parse(DataType.FLOAT.render(value)) == value

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(min_value=-(10**12), max_value=10**12))
    def test_int_render_parse_round_trip(self, value):
        assert DataType.INT.parse(DataType.INT.render(value)) == value


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of("a", "b:int", "c:float", "d:bool")
        assert schema.names == ["a", "b", "c", "d"]
        assert schema.field("b").dtype is DataType.INT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SqlAnalysisError):
            Schema.of("a", "A")

    def test_empty_field_name_rejected(self):
        with pytest.raises(ValueError):
            Field("")

    def test_index_of_case_insensitive(self):
        schema = Schema.of("Vid", "Date")
        assert schema.index_of("vid") == 0
        assert schema.index_of("DATE") == 1
        assert "vID" in schema

    def test_unknown_column_message_lists_available(self):
        schema = Schema.of("a", "b")
        with pytest.raises(SqlAnalysisError) as excinfo:
            schema.index_of("z")
        assert "a, b" in str(excinfo.value)

    def test_select_preserves_order_and_types(self):
        schema = Schema.of("a", "b:int", "c:float")
        sub = schema.select(["c", "a"])
        assert sub.names == ["c", "a"]
        assert sub.field("c").dtype is DataType.FLOAT

    def test_parse_row_width_mismatch(self):
        schema = Schema.of("a", "b")
        with pytest.raises(ValueError):
            schema.parse_row(["only-one"])

    def test_row_render_parse_round_trip(self):
        schema = Schema.of("a", "b:int", "c:float", "d:bool")
        row = ("text", 7, 2.5, True)
        assert schema.parse_row(schema.render_row(row)) == row

    def test_header_serialization_round_trip(self):
        schema = Schema.of("vid", "index:float", "code:int", "ok:bool")
        restored = Schema.from_header(schema.to_header())
        assert restored == schema

    def test_header_defaults_to_string(self):
        schema = Schema.from_header("a,b")
        assert schema.field("a").dtype is DataType.STRING

    def test_equality(self):
        assert Schema.of("a:int") == Schema.of("a:int")
        assert Schema.of("a:int") != Schema.of("a:float")

    def test_repr_readable(self):
        assert "a:int" in repr(Schema.of("a:int"))

    @settings(max_examples=30, deadline=None)
    @given(
        names=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda s: s.lower(),
        ),
        types=st.lists(
            st.sampled_from(["string", "int", "float", "bool"]),
            min_size=8,
            max_size=8,
        ),
    )
    def test_header_round_trip_property(self, names, types):
        schema = Schema(
            [Field(n, DataType(t)) for n, t in zip(names, types)]
        )
        assert Schema.from_header(schema.to_header()) == schema
