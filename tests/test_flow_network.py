"""Tests for the max-min fair flow network (the timing engine)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import FlowNetwork
from repro.simulation import Environment


def run_flows(flow_specs, resources):
    """Run flows to completion; returns {label: finish_time}.

    ``flow_specs``: list of (label, size, {resource_name: weight}, start).
    ``resources``: {name: capacity}.
    """
    env = Environment()
    network = FlowNetwork(env)
    handles = {name: network.add_resource(name, cap) for name, cap in resources.items()}
    finish = {}

    def launch(label, size, weights, start):
        if start:
            yield env.timeout(start)
        flow = network.start_flow(
            size, {handles[name]: w for name, w in weights.items()}, label
        )
        yield flow.done
        finish[label] = env.now

    for label, size, weights, start in flow_specs:
        env.process(launch(label, size, weights, start))
    env.run()
    return finish


class TestAllocation:
    def test_single_flow_runs_at_capacity(self):
        finish = run_flows([("f", 100, {"l": 1.0}, 0)], {"l": 50})
        assert finish["f"] == pytest.approx(2.0)

    def test_two_flows_share_equally(self):
        finish = run_flows(
            [("a", 100, {"l": 1.0}, 0), ("b", 100, {"l": 1.0}, 0)], {"l": 100}
        )
        assert finish["a"] == pytest.approx(2.0)
        assert finish["b"] == pytest.approx(2.0)

    def test_freed_capacity_is_reallocated(self):
        # b is half the size: finishes at t where both ran at 50 until b
        # drains (b: 50/50 => needs 1s at 50 after... compute: both at 50;
        # b (size 50) done at t=1; a then runs at 100: remaining 50 in 0.5.
        finish = run_flows(
            [("a", 100, {"l": 1.0}, 0), ("b", 50, {"l": 1.0}, 0)], {"l": 100}
        )
        assert finish["b"] == pytest.approx(1.0)
        assert finish["a"] == pytest.approx(1.5)

    def test_late_arrival_shares_fairly(self):
        # a alone for 1s (100 done), then shares: both at 50.
        finish = run_flows(
            [("a", 200, {"l": 1.0}, 0), ("b", 100, {"l": 1.0}, 1.0)],
            {"l": 100},
        )
        # At t=1: a has 100 left. Both at 50 => a done at t=3, b at t=3.
        assert finish["a"] == pytest.approx(3.0)
        assert finish["b"] == pytest.approx(3.0)

    def test_bottleneck_is_minimum_over_path(self):
        finish = run_flows(
            [("f", 100, {"wide": 1.0, "narrow": 1.0}, 0)],
            {"wide": 1000, "narrow": 10},
        )
        assert finish["f"] == pytest.approx(10.0)

    def test_weighted_flow_consumes_scaled_capacity(self):
        # CPU capacity 2 core-sec/s; weight 0.1 core-sec per byte =>
        # max rate 20 B/s even though the link allows 100.
        finish = run_flows(
            [("f", 100, {"link": 1.0, "cpu": 0.1}, 0)],
            {"link": 100, "cpu": 2},
        )
        assert finish["f"] == pytest.approx(5.0)

    def test_max_min_unbalanced_demands(self):
        # Three flows on one link of 90: fair share 30 each.  Flow c is
        # also constrained elsewhere to 10, so residual 80 splits 40/40.
        finish = run_flows(
            [
                ("a", 80, {"l": 1.0}, 0),
                ("b", 80, {"l": 1.0}, 0),
                ("c", 10, {"l": 1.0, "tiny": 1.0}, 0),
            ],
            {"l": 90, "tiny": 10},
        )
        assert finish["c"] == pytest.approx(1.0)
        # a and b: 40 B/s while c alive (1s, 40 done), then 45 each.
        assert finish["a"] == pytest.approx(1.0 + 40 / 45)
        assert finish["b"] == pytest.approx(1.0 + 40 / 45)

    def test_zero_size_flow_completes_immediately(self):
        env = Environment()
        network = FlowNetwork(env)
        resource = network.add_resource("l", 10)
        flow = network.start_flow(0, {resource: 1.0})
        assert flow.done.triggered

    def test_negative_size_raises(self):
        env = Environment()
        network = FlowNetwork(env)
        resource = network.add_resource("l", 10)
        with pytest.raises(ValueError):
            network.start_flow(-1, {resource: 1.0})

    def test_duplicate_resource_name_raises(self):
        network = FlowNetwork(Environment())
        network.add_resource("x", 1)
        with pytest.raises(ValueError):
            network.add_resource("x", 2)


class TestCancel:
    def test_cancel_releases_capacity(self):
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("l", 100)
        finish = {}

        def launch(label, size):
            flow = network.start_flow(size, {link: 1.0}, label)
            yield flow.done
            finish[label] = env.now

        def canceller():
            flow = network.start_flow(1000, {link: 1.0}, "victim")
            yield env.timeout(1)
            network.cancel_flow(flow)

        env.process(launch("a", 100))
        env.process(canceller())
        env.run()
        # a shares for 1s (50 done), then full speed: 50/100 => +0.5s.
        assert finish["a"] == pytest.approx(1.5)

    def test_cancel_unknown_flow_is_noop(self):
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("l", 100)
        flow = network.start_flow(10, {link: 1.0})
        env.run()
        network.cancel_flow(flow)  # already completed: no error


class TestIntrospection:
    def test_utilization_full_under_contention(self):
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("l", 100)
        network.start_flow(1000, {link: 1.0})
        network.start_flow(1000, {link: 1.0})
        assert link.utilization() == pytest.approx(1.0)
        assert link.throughput() == pytest.approx(100.0)

    def test_completed_count(self):
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("l", 100)
        for _ in range(3):
            network.start_flow(10, {link: 1.0})
        env.run()
        assert network.completed_count == 3


class TestConservationProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=1, max_value=1e4), min_size=1, max_size=8
        ),
        capacity=st.floats(min_value=1, max_value=1e3),
        starts=st.lists(
            st.floats(min_value=0, max_value=10), min_size=8, max_size=8
        ),
    )
    def test_work_is_conserved(self, sizes, capacity, starts):
        """Every flow finishes no earlier than size/capacity after its
        start, and total time >= total work / capacity."""
        specs = [
            (f"f{i}", size, {"l": 1.0}, starts[i])
            for i, size in enumerate(sizes)
        ]
        finish = run_flows(specs, {"l": capacity})
        assert len(finish) == len(sizes)
        for i, size in enumerate(sizes):
            lower_bound = starts[i] + size / capacity
            assert finish[f"f{i}"] >= lower_bound - 1e-6
        makespan = max(finish.values())
        total_work_bound = min(starts) + sum(sizes) / capacity
        assert makespan >= total_work_bound - 1e-6


class TestBottleneckFairness:
    """Consumption fairness: a flow that uses little of a link per unit
    of work must not be throttled to fat flows' rates."""

    def test_thin_flow_frozen_by_its_own_bottleneck(self):
        # Fat flow: 1 B of link per byte.  Thin flow: 0.01 B of link per
        # byte but CPU-bound at 40 B/s.  The link should not cap the
        # thin flow at the fat flow's rate.
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("link", 100.0)
        cpu = network.add_resource("cpu", 2.0)
        fat = network.start_flow(1000, {link: 1.0}, "fat")
        thin = network.start_flow(1000, {link: 0.01, cpu: 0.05}, "thin")
        assert thin.rate == pytest.approx(40.0)  # cpu-bound: 2 / 0.05
        # Fat takes the link minus thin's trickle (40 * 0.01 = 0.4).
        assert fat.rate == pytest.approx(99.6)

    def test_backlogged_flows_share_leftover_equally(self):
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("link", 90.0)
        slow = network.add_resource("slow", 10.0)
        capped = network.start_flow(1000, {link: 1.0, slow: 1.0}, "capped")
        free_a = network.start_flow(1000, {link: 1.0}, "a")
        free_b = network.start_flow(1000, {link: 1.0}, "b")
        assert capped.rate == pytest.approx(10.0)
        assert free_a.rate == pytest.approx(40.0)
        assert free_b.rate == pytest.approx(40.0)

    def test_capacity_never_exceeded(self):
        env = Environment()
        network = FlowNetwork(env)
        link = network.add_resource("link", 50.0)
        cpu = network.add_resource("cpu", 3.0)
        for index in range(7):
            network.start_flow(
                1000, {link: 1.0, cpu: 0.01 * (index + 1)}, f"f{index}"
            )
        assert link.throughput() <= 50.0 * (1 + 1e-9)
        assert cpu.throughput() <= 3.0 * (1 + 1e-9)
