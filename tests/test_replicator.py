"""Tests for the object replicator: repair, handoff, audit."""

import pytest

from repro.swift import SwiftClient, SwiftCluster
from repro.swift.replicator import ReplicationStalled, Replicator


@pytest.fixture
def rig():
    cluster = SwiftCluster(
        storage_node_count=4, disks_per_node=2, replica_count=3, part_power=6
    )
    client = SwiftClient(cluster, "AUTH_rep")
    client.put_container("c")
    for index in range(20):
        client.put_object("c", f"obj-{index:03d}", f"data-{index}".encode())
    return cluster, client


class TestRepair:
    def test_healthy_cluster_is_noop(self, rig):
        cluster, _client = rig
        report = Replicator(cluster).run_once()
        assert not report.changed
        assert report.objects_scanned == 20

    def test_wiped_device_is_repaired(self, rig):
        cluster, client = rig
        victim = next(iter(cluster.object_servers.values()))
        wiped = sum(len(store) for store in victim.devices.values())
        for store in victim.devices.values():
            store.clear()
        assert wiped > 0

        report = Replicator(cluster).run_once()
        assert report.replicas_created == wiped
        assert cluster.total_object_count() == 60  # 20 objects x 3 replicas
        assert Replicator(cluster).audit() == {}

    def test_stale_replica_is_updated(self, rig):
        cluster, client = rig
        client.put_object("c", "obj-000", b"v2-newer")
        # Roll one replica back to an old version by hand.
        _part, devices = cluster.object_ring.get_nodes(
            "AUTH_rep", "c", "obj-000"
        )
        primary = devices[0]
        store = cluster.object_servers[primary.node].devices[primary.id]
        path = "/AUTH_rep/c/obj-000"
        old = store[path]
        store[path] = type(old)(
            data=b"v1-stale",
            etag="stale",
            timestamp=old.timestamp - 100,
            content_type=old.content_type,
            metadata=old.metadata,
        )
        report = Replicator(cluster).run_once()
        assert report.replicas_updated == 1
        assert store[path].data == b"v2-newer"

    def test_repair_survives_client_reads(self, rig):
        cluster, client = rig
        for server in list(cluster.object_servers.values())[:1]:
            for store in server.devices.values():
                store.clear()
        Replicator(cluster).run_once()
        for index in range(20):
            _headers, body = client.get_object("c", f"obj-{index:03d}")
            assert body == f"data-{index}".encode()


class TestHandoff:
    def test_new_node_receives_partitions(self, rig):
        cluster, client = rig
        node_name = cluster.add_storage_node(disks=2)
        cluster.ring_builder.rebalance()
        cluster.refresh_ring()
        reports = Replicator(cluster).run_until_stable()
        assert reports[-1].changed is False
        new_server = cluster.object_servers[node_name]
        assert new_server.object_count() > 0
        assert Replicator(cluster).audit() == {}
        # Replica invariant preserved end to end.
        assert cluster.total_object_count() == 60

    def test_failed_device_recovery(self, rig):
        cluster, client = rig
        victim_device = next(iter(cluster.object_ring.devices))
        cluster.fail_device(victim_device)
        cluster.ring_builder.rebalance()
        cluster.refresh_ring()
        Replicator(cluster).run_until_stable()
        assert Replicator(cluster).audit() == {}
        for index in range(20):
            _headers, body = client.get_object("c", f"obj-{index:03d}")
            assert body == f"data-{index}".encode()

    def test_unassigned_replicas_removed(self, rig):
        cluster, _client = rig
        # Park a copy on a device the ring does not assign for it.
        _part, devices = cluster.object_ring.get_nodes(
            "AUTH_rep", "c", "obj-000"
        )
        assigned_ids = {d.id for d in devices}
        stray_device = next(
            device_id
            for device_id in cluster.object_ring.devices
            if device_id not in assigned_ids
        )
        source = cluster.object_servers[devices[0].node].devices[devices[0].id]
        path = "/AUTH_rep/c/obj-000"
        for server in cluster.object_servers.values():
            if stray_device in server.devices:
                server.devices[stray_device][path] = source[path]
        report = Replicator(cluster).run_once()
        assert report.replicas_removed == 1
        assert Replicator(cluster).audit() == {}


class TestConvergenceReporting:
    def test_stalled_budget_raises(self, rig):
        """Exhausting the pass budget while the cluster is still
        changing must never be silent."""
        cluster, _client = rig
        victim = next(iter(cluster.object_servers.values()))
        for store in victim.devices.values():
            store.clear()
        with pytest.raises(ReplicationStalled) as exc_info:
            Replicator(cluster).run_until_stable(max_passes=1)
        reports = exc_info.value.reports
        assert reports[-1].converged is False
        assert reports[-1].changed

    def test_stalled_budget_flag_mode(self, rig):
        cluster, _client = rig
        victim = next(iter(cluster.object_servers.values()))
        for store in victim.devices.values():
            store.clear()
        reports = Replicator(cluster).run_until_stable(
            max_passes=1, raise_on_stalled=False
        )
        assert reports[-1].converged is False

    def test_converged_run_is_marked(self, rig):
        cluster, _client = rig
        reports = Replicator(cluster).run_until_stable()
        assert reports[-1].converged is True

    def test_zero_passes_rejected(self, rig):
        cluster, _client = rig
        with pytest.raises(ValueError):
            Replicator(cluster).run_until_stable(max_passes=0)

    def test_no_resurrection_onto_failed_device(self, rig):
        """The replicator must not copy data back onto a device that was
        administratively failed (its store stays empty until the device
        is replaced)."""
        cluster, _client = rig
        victim_device = next(iter(cluster.object_ring.devices))
        cluster.fail_device(victim_device)
        # No rebalance/refresh yet: the ring still assigns the dead
        # device, which is exactly when naive repair would resurrect it.
        Replicator(cluster).run_until_stable(raise_on_stalled=False)
        for server in cluster.object_servers.values():
            if victim_device in server.devices:
                assert server.devices[victim_device] == {}


class TestAudit:
    def test_audit_reports_underreplication(self, rig):
        cluster, _client = rig
        _part, devices = cluster.object_ring.get_nodes(
            "AUTH_rep", "c", "obj-005"
        )
        primary = devices[0]
        del cluster.object_servers[primary.node].devices[primary.id][
            "/AUTH_rep/c/obj-005"
        ]
        problems = Replicator(cluster).audit()
        assert problems == {"/AUTH_rep/c/obj-005": (2, 3)}

    def test_audit_counts_only_assigned_devices_after_failure(self, rig):
        """Copies parked on handoff devices (after ``fail_device`` +
        rebalance) must show up as under-replication, not be masked by
        the stray copies."""
        cluster, _client = rig
        victim_device = next(iter(cluster.object_ring.devices))
        cluster.fail_device(victim_device)
        cluster.ring_builder.rebalance()
        cluster.refresh_ring()
        replicator = Replicator(cluster)
        problems = replicator.audit()
        # The rebalance moved assignments: at least some objects now
        # have copies on no-longer-assigned devices and/or miss copies
        # on newly-assigned ones -- the audit must surface them...
        assert problems
        assert all(
            found <= expected for found, expected in problems.values()
        )
        assert any(
            found < expected for found, expected in problems.values()
        )
        # ...and the replicator must clear every one of them.
        replicator.run_until_stable()
        assert replicator.audit() == {}


class TestConvergenceProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=15, deadline=None)
    @given(
        wipe_mask=st.lists(st.booleans(), min_size=8, max_size=8),
        object_count=st.integers(min_value=1, max_value=15),
    )
    def test_any_partial_wipe_converges_to_clean_audit(
        self, wipe_mask, object_count
    ):
        """Property: wipe any subset of devices (not all), run the
        replicator until stable, and the audit must be empty with all
        data readable."""
        from repro.swift import SwiftClient, SwiftCluster

        cluster = SwiftCluster(
            storage_node_count=4,
            disks_per_node=2,
            replica_count=3,
            part_power=5,
        )
        client = SwiftClient(cluster, "AUTH_p")
        client.put_container("c")
        for index in range(object_count):
            client.put_object("c", f"o{index}", f"payload-{index}".encode())

        device_ids = sorted(cluster.object_ring.devices)
        wiped = [
            device_id
            for device_id, wipe in zip(device_ids, wipe_mask)
            if wipe
        ]
        for server in cluster.object_servers.values():
            for device_id in wiped:
                if device_id in server.devices:
                    server.devices[device_id].clear()

        # An object whose entire replica set was wiped is gone for good;
        # record who still has at least one surviving copy.
        survivors = set()
        for server in cluster.object_servers.values():
            for store in server.devices.values():
                survivors.update(store.keys())

        reports = Replicator(cluster).run_until_stable()
        assert not reports[-1].changed
        assert Replicator(cluster).audit() == {}
        for index in range(object_count):
            path = f"/AUTH_p/c/o{index}"
            if path in survivors:
                _headers, body = client.get_object("c", f"o{index}")
                assert body == f"payload-{index}".encode()
