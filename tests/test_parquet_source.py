"""Tests for the Parquet-like columnar format and relation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.connector import StocatorConnector
from repro.spark import SparkContext, SparkSession
from repro.spark.parquet_source import (
    ParquetFormatError,
    ParquetRelation,
    convert_csv_container,
    decode_columns,
    decode_footer,
    encode_parquet,
)
from repro.sql import Schema
from repro.swift import SwiftClient, SwiftCluster

SCHEMA = Schema.of("vid", "date", "index:float", "code:int")
ROWS = [
    ("m1", "2015-01-01", 10.5, 7),
    ("m2", "2015-01-02", None, 3),
    ("m3", "2015-02-01", 7.25, None),
]


class TestFormat:
    def test_round_trip_all_columns(self):
        data = encode_parquet(SCHEMA, ROWS)
        schema, groups = decode_footer(data)
        assert schema == SCHEMA
        decoded = list(decode_columns(data, schema, groups, schema.names))
        assert decoded == ROWS

    def test_column_pruning_decodes_subset(self):
        data = encode_parquet(SCHEMA, ROWS)
        schema, groups = decode_footer(data)
        decoded = list(decode_columns(data, schema, groups, ["vid", "code"]))
        assert decoded == [("m1", 7), ("m2", 3), ("m3", None)]

    def test_multiple_row_groups(self):
        rows = [(f"m{i}", "2015-01-01", float(i), i) for i in range(25)]
        data = encode_parquet(SCHEMA, rows, row_group_size=10)
        schema, groups = decode_footer(data)
        assert len(groups) == 3
        assert [g["num_rows"] for g in groups] == [10, 10, 5]
        assert list(decode_columns(data, schema, groups, schema.names)) == rows

    def test_empty_dataset(self):
        data = encode_parquet(SCHEMA, [])
        schema, groups = decode_footer(data)
        assert groups == []
        assert list(decode_columns(data, schema, groups, ["vid"])) == []

    def test_compression_shrinks_repetitive_data(self):
        rows = [("meter", "2015-01-01", 1.0, 1)] * 2000
        data = encode_parquet(SCHEMA, rows)
        raw_size = sum(
            len(",".join(SCHEMA.render_row(row))) + 1 for row in rows
        )
        assert len(data) < raw_size / 4

    def test_bad_magic_raises(self):
        with pytest.raises(ParquetFormatError):
            decode_footer(b"NOTPARQUET" * 10)

    def test_truncated_object_raises(self):
        data = encode_parquet(SCHEMA, ROWS)
        with pytest.raises(ParquetFormatError):
            decode_footer(data[:-3])

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        min_codepoint=33, max_codepoint=126, exclude_characters='"'
                    ),
                    max_size=8,
                ),
                st.sampled_from(["2015-01-01", "2016-02-02"]),
                st.one_of(
                    st.none(),
                    st.floats(
                        allow_nan=False,
                        allow_infinity=False,
                        min_value=-1e6,
                        max_value=1e6,
                    ),
                ),
                st.one_of(st.none(), st.integers(-1000, 1000)),
            ),
            max_size=30,
        ),
        group_size=st.integers(min_value=1, max_value=10),
    )
    def test_round_trip_property(self, rows, group_size):
        rows = [
            (vid if vid else "m", date, index, code)
            for vid, date, index, code in rows
        ]
        data = encode_parquet(SCHEMA, rows, row_group_size=group_size)
        schema, groups = decode_footer(data)
        assert list(decode_columns(data, schema, groups, schema.names)) == rows


@pytest.fixture
def parquet_rig():
    cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
    client = SwiftClient(cluster, "AUTH_pq")
    connector = StocatorConnector(client)
    client.put_container("pq")
    client.put_object("pq", "part-0.parquet", encode_parquet(SCHEMA, ROWS))
    session = SparkSession(SparkContext("pq", 2))
    relation = ParquetRelation(session.context, connector, "pq")
    session.register_table("t", relation)
    return session, connector


class TestRelation:
    def test_schema_read_from_footer(self, parquet_rig):
        session, _connector = parquet_rig
        assert session.relation("t").schema() == SCHEMA

    def test_query_results_match_rows(self, parquet_rig):
        session, _connector = parquet_rig
        rows = session.sql(
            "SELECT vid, code FROM t WHERE code IS NOT NULL ORDER BY vid"
        ).collect()
        assert rows == [("m1", 7), ("m2", 3)]

    def test_whole_object_transferred(self, parquet_rig):
        """The Parquet trade-off: pruning happens compute-side, the full
        compressed object still crosses the wire."""
        session, connector = parquet_rig
        connector.metrics.reset()
        session.sql("SELECT vid FROM t").collect()
        _headers, data = connector.client.get_object("pq", "part-0.parquet")
        assert connector.metrics.bytes_transferred >= len(data)

    def test_empty_container_raises(self, parquet_rig):
        session, connector = parquet_rig
        connector.client.put_container("void")
        with pytest.raises(ValueError):
            ParquetRelation(session.context, connector, "void")


class TestConversion:
    def test_convert_csv_container(self, parquet_rig):
        session, connector = parquet_rig
        connector.client.put_container("csvdata")
        connector.client.put_object(
            "csvdata", "a.csv", b"m1,2015-01-01,1.5,3\nm2,2015-01-02,2.5,4\n"
        )
        written = convert_csv_container(
            connector, "csvdata", "pqdata", SCHEMA
        )
        assert written == ["a.parquet"]
        relation = ParquetRelation(session.context, connector, "pqdata")
        session.register_table("converted", relation)
        rows = session.sql(
            "SELECT vid, index FROM converted ORDER BY vid"
        ).collect()
        assert rows == [("m1", 1.5), ("m2", 2.5)]

    def test_csv_and_parquet_agree_on_queries(self, parquet_rig):
        """Differential: the same query over the same logical data gives
        identical answers through both formats."""
        session, connector = parquet_rig
        csv_lines = "".join(
            ",".join(SCHEMA.render_row(row)) + "\n" for row in ROWS
        ).encode()
        connector.client.put_container("csvside")
        connector.client.put_object("csvside", "d.csv", csv_lines)
        from repro.spark.csv_source import CsvRelation

        session.register_table(
            "csvt",
            CsvRelation(
                session.context,
                connector,
                "csvside",
                schema=SCHEMA,
                pushdown=False,
            ),
        )
        query = "SELECT vid, sum(code) FROM {} GROUP BY vid ORDER BY vid"
        assert (
            session.sql(query.format("csvt")).collect()
            == session.sql(query.format("t")).collect()
        )
