"""Tests for the CSV pushdown storlet: projection, selection, byte
ranges and the critical range-coverage invariant."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import (
    EqualTo,
    GreaterThan,
    Schema,
    StringStartsWith,
    filters_to_json,
)
from repro.storlets import (
    CsvStorlet,
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.storlets.csv_storlet import _owned_lines

SCHEMA = Schema.of("vid", "date", "index:float", "city")


def invoke(data: bytes, parameters: dict, chunk_size: int = 37) -> bytes:
    """Run the storlet over data split into awkward chunk sizes."""
    chunks = [
        data[offset : offset + chunk_size]
        for offset in range(0, len(data), chunk_size)
    ]
    out = StorletOutputStream()
    CsvStorlet().invoke(
        [StorletInputStream(chunks)],
        [out],
        {"schema": SCHEMA.to_header(), **parameters},
        StorletLogger("test"),
    )
    return out.getvalue()


SAMPLE = (
    b"m1,2015-01-01,10.5,Rotterdam\n"
    b"m2,2015-01-02,3.25,Paris\n"
    b"m3,2015-02-01,99.0,Rotterdam\n"
    b"m4,2015-02-02,1.0,Berlin\n"
)


class TestProjectionSelection:
    def test_no_parameters_passthrough(self):
        assert invoke(SAMPLE, {}) == SAMPLE

    def test_projection_keeps_schema_order(self):
        result = invoke(SAMPLE, {"columns": json.dumps(["city", "vid"])})
        assert result.splitlines()[0] == b"m1,Rotterdam"

    def test_selection_equal(self):
        filters = filters_to_json([EqualTo("city", "Rotterdam")])
        result = invoke(SAMPLE, {"filters": filters})
        assert result.count(b"\n") == 2
        assert b"Paris" not in result

    def test_selection_numeric(self):
        filters = filters_to_json([GreaterThan("index", 5.0)])
        result = invoke(SAMPLE, {"filters": filters})
        assert result.splitlines() == [
            b"m1,2015-01-01,10.5,Rotterdam",
            b"m3,2015-02-01,99.0,Rotterdam",
        ]

    def test_selection_and_projection_combined(self):
        result = invoke(
            SAMPLE,
            {
                "columns": json.dumps(["vid", "index"]),
                "filters": filters_to_json(
                    [StringStartsWith("date", "2015-01")]
                ),
            },
        )
        assert result.splitlines() == [b"m1,10.5", b"m2,3.25"]

    def test_rows_metadata_reported(self):
        out = StorletOutputStream()
        CsvStorlet().invoke(
            [StorletInputStream([SAMPLE])],
            [out],
            {
                "schema": SCHEMA.to_header(),
                "filters": filters_to_json([EqualTo("city", "Paris")]),
            },
            StorletLogger("test"),
        )
        assert out.metadata["x-object-meta-storlet-rows-in"] == "4"
        assert out.metadata["x-object-meta-storlet-rows-out"] == "1"

    def test_missing_schema_raises(self):
        with pytest.raises(StorletException):
            out = StorletOutputStream()
            CsvStorlet().invoke(
                [StorletInputStream([SAMPLE])],
                [out],
                {},
                StorletLogger("test"),
            )

    def test_malformed_rows_dropped(self):
        data = SAMPLE + b"broken,row\n" + b"m9,2015-03-01,2.0,Lyon\n"
        result = invoke(data, {"columns": json.dumps(["vid"])})
        assert b"broken" not in result
        assert b"m9" in result

    def test_untypable_rows_dropped_when_filtering(self):
        data = b"m1,2015-01-01,notanumber,Rotterdam\n" + SAMPLE
        filters = filters_to_json([GreaterThan("index", 0.0)])
        result = invoke(data, {"filters": filters})
        assert result.count(b"\n") == 4

    def test_quoted_fields_parsed(self):
        data = b'm1,2015-01-01,1.0,"Rotter,dam"\n'
        filters = filters_to_json([EqualTo("city", "Rotter,dam")])
        result = invoke(data, {"filters": filters})
        assert result.count(b"\n") == 1
        # Output re-quotes the field containing the delimiter.
        assert b'"Rotter,dam"' in result

    def test_final_line_without_newline_processed(self):
        data = SAMPLE + b"m5,2015-03-01,7.0,Nice"  # no trailing newline
        result = invoke(data, {"columns": json.dumps(["vid"])})
        assert b"m5" in result


class TestHeaderHandling:
    HEADERED = b"vid,date,index,city\n" + SAMPLE

    def test_header_skipped_on_first_range(self):
        result = invoke(self.HEADERED, {"has_header": "true"})
        assert result == SAMPLE

    def test_header_emitted_when_requested(self):
        result = invoke(
            self.HEADERED,
            {
                "has_header": "true",
                "emit_header": "true",
                "columns": json.dumps(["vid", "city"]),
            },
        )
        lines = result.splitlines()
        assert lines[0] == b"vid,city"
        assert lines[1] == b"m1,Rotterdam"

    def test_header_not_skipped_on_later_ranges(self):
        # range_start > 0: first (partial) line skipped as usual, no
        # header logic applies.
        result = invoke(
            SAMPLE,
            {
                "has_header": "true",
                "range_start": "5",
                "range_len": str(len(SAMPLE) - 5),
            },
        )
        assert not result.startswith(b"m1")


class TestRangeSemantics:
    def test_range_skips_partial_first_record(self):
        # Start mid-record: that record belongs to the previous range.
        result = invoke(
            SAMPLE, {"range_start": "3", "range_len": str(len(SAMPLE) - 3)}
        )
        assert result.splitlines()[0].startswith(b"m2")

    def test_range_zero_keeps_first_record(self):
        result = invoke(SAMPLE, {"range_start": "0", "range_len": "5"})
        # Range covers only part of record 1, which starts at offset 0.
        assert result.splitlines() == [b"m1,2015-01-01,10.5,Rotterdam"]

    def test_record_straddling_range_end_completed(self):
        first_len = len(b"m1,2015-01-01,10.5,Rotterdam\n")
        # Range ends inside record 2: record 2 starts inside the range,
        # so it is owned and must be completed via lookahead bytes.
        result = invoke(
            SAMPLE, {"range_start": "0", "range_len": str(first_len + 3)}
        )
        assert result.splitlines() == [
            b"m1,2015-01-01,10.5,Rotterdam",
            b"m2,2015-01-02,3.25,Paris",
        ]

    def test_empty_range_in_middle_of_record_yields_nothing(self):
        result = invoke(SAMPLE, {"range_start": "3", "range_len": "2"})
        assert result == b""


QUOTED = (
    b'm1,2015-01-01,10.5,"Rotter\ndam"\n'
    b"m2,2015-01-02,3.25,Paris\n"
    b'm3,2015-02-01,99.0,"Ber\nlin,City"\n'
    b"m4,2015-02-02,1.0,Nice\n"
)


class TestQuotedNewlines:
    """RFC 4180 framing: a newline inside a quoted field must not
    terminate the record (the original framing split on raw b"\\n" and
    sheared quoted records in half)."""

    def test_embedded_newline_is_one_record(self):
        # Passthrough must reproduce the input byte-for-byte: 4 records,
        # not 6 "lines".
        assert invoke(QUOTED, {}) == QUOTED

    def test_rows_in_counts_records_not_newlines(self):
        out = StorletOutputStream()
        CsvStorlet().invoke(
            [StorletInputStream([QUOTED])],
            [out],
            {"schema": SCHEMA.to_header()},
            StorletLogger("test"),
        )
        assert out.metadata["x-object-meta-storlet-rows-in"] == "4"
        assert out.metadata["x-object-meta-storlet-rows-out"] == "4"

    def test_filter_matches_multiline_field(self):
        filters = filters_to_json([EqualTo("city", "Rotter\ndam")])
        result = invoke(QUOTED, {"filters": filters})
        assert result == b'm1,2015-01-01,10.5,"Rotter\ndam"\n'

    def test_projection_requotes_multiline_field(self):
        result = invoke(QUOTED, {"columns": json.dumps(["vid", "city"])})
        # The projected multiline field is re-quoted, so re-framing the
        # output yields the same 4 records.
        reparsed = list(
            _owned_lines(StorletInputStream([result]), 0, None)
        )
        assert len(reparsed) == 4
        assert reparsed[0] == b'm1,"Rotter\ndam"'
        assert reparsed[2] == b'm3,"Ber\nlin,City"'

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 8, 13])
    def test_quote_state_carries_across_chunk_refills(self, chunk_size):
        # Tiny chunks force buffer refills inside quoted fields; the
        # scanner's (scan_pos, in_quotes) state must survive them.
        assert invoke(QUOTED, {}, chunk_size=chunk_size) == QUOTED

    def test_escaped_quotes_toggle_parity_twice(self):
        data = b'm1,2015-01-01,1.0,"say ""hi""\nok"\n'
        assert invoke(data, {}) == data
        filters = filters_to_json([EqualTo("city", 'say "hi"\nok')])
        assert invoke(data, {"filters": filters}) == data

    def test_range_end_inside_multiline_record_completes_it(self):
        # The third record starts before the range end, so it is owned
        # and must be completed from lookahead -- including the part of
        # its quoted field past the range boundary.
        start_of_m3 = QUOTED.index(b"m3")
        result = invoke(
            QUOTED,
            {"range_start": "0", "range_len": str(start_of_m3 + 4)},
        )
        assert result == QUOTED[: QUOTED.index(b"m4")]


class TestQuotedNewlinePushdownIdentity:
    """Acceptance: pushdown and compute-side scans return identical rows
    on data with quoted embedded newlines."""

    QSCHEMA = Schema.of("vid", "date", "index:float", "city")

    @pytest.fixture
    def quoted_scoop(self):
        from repro.core import ScoopContext

        context = ScoopContext(
            storage_node_count=2,
            disks_per_node=1,
            proxy_count=1,
            replica_count=1,
            num_workers=2,
            # Each object is smaller than one split, so every split is
            # object-aligned and no *range* boundary can bisect a quoted
            # field (the documented unrecoverable case); chunk-boundary
            # refills inside quoted fields are covered by the unit tests.
            chunk_size=512,
        )
        for part in range(4):
            rows = []
            for offset in range(10):
                i = part * 10 + offset
                if i % 3 == 0:
                    city = f'"city\n{i},north"'
                elif i % 3 == 1:
                    city = f'"say ""hi""\n{i}"'
                else:
                    city = "Paris"
                rows.append(
                    f"m{i:03d},2015-01-{(i % 28) + 1:02d},{i}.5,{city}\n"
                )
            context.upload_csv(
                "quoted", f"part-{part}.csv", "".join(rows)
            )
        context.register_csv_table(
            "qpush", "quoted", schema=self.QSCHEMA, pushdown=True
        )
        context.register_csv_table(
            "qplain", "quoted", schema=self.QSCHEMA, pushdown=False
        )
        return context

    def test_rows_identical_with_filter_and_projection(self, quoted_scoop):
        frame_push, report_push = quoted_scoop.run_query(
            "SELECT vid, city FROM qpush WHERE index > 10"
        )
        frame_plain, _report = quoted_scoop.run_query(
            "SELECT vid, city FROM qplain WHERE index > 10"
        )
        push_rows = frame_push.collect()
        plain_rows = frame_plain.collect()
        assert push_rows == plain_rows
        assert len(push_rows) == 30  # index 10.5..39.5 -> rows 10..39
        # The data actually exercised the quote-aware path.
        assert any("\n" in city for _vid, city in push_rows)
        assert report_push.pushdown_requests > 0

    def test_full_scan_identical(self, quoted_scoop):
        push = quoted_scoop.sql("SELECT * FROM qpush").collect()
        plain = quoted_scoop.sql("SELECT * FROM qplain").collect()
        assert push == plain
        assert len(push) == 40


class TestCoverageProperty:
    """The invariant the whole pushdown correctness rests on: splitting
    an object into arbitrary contiguous ranges and concatenating the
    storlet outputs reproduces exactly the full-object output."""

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=99),
                st.sampled_from(["2015-01-01", "2015-02-02", "2016-01-01"]),
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.sampled_from(["Rotterdam", "Paris", "Berlin"]),
            ),
            min_size=0,
            max_size=30,
        ),
        cut_points=st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=0,
            max_size=6,
        ),
        use_filter=st.booleans(),
        use_columns=st.booleans(),
    )
    def test_union_of_ranges_equals_full_scan(
        self, rows, cut_points, use_filter, use_columns
    ):
        data = b"".join(
            f"m{vid},{date},{index!r},{city}\n".encode()
            for vid, date, index, city in rows
        )
        parameters = {}
        if use_filter:
            parameters["filters"] = filters_to_json(
                [StringStartsWith("date", "2015")]
            )
        if use_columns:
            parameters["columns"] = json.dumps(["vid", "city"])

        full = invoke(data, dict(parameters))

        size = len(data)
        cuts = sorted({c for c in cut_points if c < size})
        bounds = [0] + cuts + [size]
        pieces = []
        for start, end in zip(bounds, bounds[1:]):
            piece = invoke(
                data[start:],  # stream starts at range_start, as served
                {
                    **parameters,
                    "range_start": str(start),
                    "range_len": str(end - start),
                },
            )
            pieces.append(piece)
        assert b"".join(pieces) == full

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=400), start=st.integers(0, 400))
    def test_owned_lines_never_crashes_on_garbage(self, data, start):
        stream = StorletInputStream([data] if data else [])
        lines = list(_owned_lines(stream, start, None))
        for line in lines:
            assert b"\n" not in line
