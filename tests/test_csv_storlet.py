"""Tests for the CSV pushdown storlet: projection, selection, byte
ranges and the critical range-coverage invariant."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import (
    EqualTo,
    GreaterThan,
    Schema,
    StringStartsWith,
    filters_to_json,
)
from repro.storlets import (
    CsvStorlet,
    StorletException,
    StorletInputStream,
    StorletLogger,
    StorletOutputStream,
)
from repro.storlets.csv_storlet import _owned_lines

SCHEMA = Schema.of("vid", "date", "index:float", "city")


def invoke(data: bytes, parameters: dict, chunk_size: int = 37) -> bytes:
    """Run the storlet over data split into awkward chunk sizes."""
    chunks = [
        data[offset : offset + chunk_size]
        for offset in range(0, len(data), chunk_size)
    ]
    out = StorletOutputStream()
    CsvStorlet().invoke(
        [StorletInputStream(chunks)],
        [out],
        {"schema": SCHEMA.to_header(), **parameters},
        StorletLogger("test"),
    )
    return out.getvalue()


SAMPLE = (
    b"m1,2015-01-01,10.5,Rotterdam\n"
    b"m2,2015-01-02,3.25,Paris\n"
    b"m3,2015-02-01,99.0,Rotterdam\n"
    b"m4,2015-02-02,1.0,Berlin\n"
)


class TestProjectionSelection:
    def test_no_parameters_passthrough(self):
        assert invoke(SAMPLE, {}) == SAMPLE

    def test_projection_keeps_schema_order(self):
        result = invoke(SAMPLE, {"columns": json.dumps(["city", "vid"])})
        assert result.splitlines()[0] == b"m1,Rotterdam"

    def test_selection_equal(self):
        filters = filters_to_json([EqualTo("city", "Rotterdam")])
        result = invoke(SAMPLE, {"filters": filters})
        assert result.count(b"\n") == 2
        assert b"Paris" not in result

    def test_selection_numeric(self):
        filters = filters_to_json([GreaterThan("index", 5.0)])
        result = invoke(SAMPLE, {"filters": filters})
        assert result.splitlines() == [
            b"m1,2015-01-01,10.5,Rotterdam",
            b"m3,2015-02-01,99.0,Rotterdam",
        ]

    def test_selection_and_projection_combined(self):
        result = invoke(
            SAMPLE,
            {
                "columns": json.dumps(["vid", "index"]),
                "filters": filters_to_json(
                    [StringStartsWith("date", "2015-01")]
                ),
            },
        )
        assert result.splitlines() == [b"m1,10.5", b"m2,3.25"]

    def test_rows_metadata_reported(self):
        out = StorletOutputStream()
        CsvStorlet().invoke(
            [StorletInputStream([SAMPLE])],
            [out],
            {
                "schema": SCHEMA.to_header(),
                "filters": filters_to_json([EqualTo("city", "Paris")]),
            },
            StorletLogger("test"),
        )
        assert out.metadata["x-object-meta-storlet-rows-in"] == "4"
        assert out.metadata["x-object-meta-storlet-rows-out"] == "1"

    def test_missing_schema_raises(self):
        with pytest.raises(StorletException):
            out = StorletOutputStream()
            CsvStorlet().invoke(
                [StorletInputStream([SAMPLE])],
                [out],
                {},
                StorletLogger("test"),
            )

    def test_malformed_rows_dropped(self):
        data = SAMPLE + b"broken,row\n" + b"m9,2015-03-01,2.0,Lyon\n"
        result = invoke(data, {"columns": json.dumps(["vid"])})
        assert b"broken" not in result
        assert b"m9" in result

    def test_untypable_rows_dropped_when_filtering(self):
        data = b"m1,2015-01-01,notanumber,Rotterdam\n" + SAMPLE
        filters = filters_to_json([GreaterThan("index", 0.0)])
        result = invoke(data, {"filters": filters})
        assert result.count(b"\n") == 4

    def test_quoted_fields_parsed(self):
        data = b'm1,2015-01-01,1.0,"Rotter,dam"\n'
        filters = filters_to_json([EqualTo("city", "Rotter,dam")])
        result = invoke(data, {"filters": filters})
        assert result.count(b"\n") == 1
        # Output re-quotes the field containing the delimiter.
        assert b'"Rotter,dam"' in result

    def test_final_line_without_newline_processed(self):
        data = SAMPLE + b"m5,2015-03-01,7.0,Nice"  # no trailing newline
        result = invoke(data, {"columns": json.dumps(["vid"])})
        assert b"m5" in result


class TestHeaderHandling:
    HEADERED = b"vid,date,index,city\n" + SAMPLE

    def test_header_skipped_on_first_range(self):
        result = invoke(self.HEADERED, {"has_header": "true"})
        assert result == SAMPLE

    def test_header_emitted_when_requested(self):
        result = invoke(
            self.HEADERED,
            {
                "has_header": "true",
                "emit_header": "true",
                "columns": json.dumps(["vid", "city"]),
            },
        )
        lines = result.splitlines()
        assert lines[0] == b"vid,city"
        assert lines[1] == b"m1,Rotterdam"

    def test_header_not_skipped_on_later_ranges(self):
        # range_start > 0: first (partial) line skipped as usual, no
        # header logic applies.
        result = invoke(
            SAMPLE,
            {
                "has_header": "true",
                "range_start": "5",
                "range_len": str(len(SAMPLE) - 5),
            },
        )
        assert not result.startswith(b"m1")


class TestRangeSemantics:
    def test_range_skips_partial_first_record(self):
        # Start mid-record: that record belongs to the previous range.
        result = invoke(
            SAMPLE, {"range_start": "3", "range_len": str(len(SAMPLE) - 3)}
        )
        assert result.splitlines()[0].startswith(b"m2")

    def test_range_zero_keeps_first_record(self):
        result = invoke(SAMPLE, {"range_start": "0", "range_len": "5"})
        # Range covers only part of record 1, which starts at offset 0.
        assert result.splitlines() == [b"m1,2015-01-01,10.5,Rotterdam"]

    def test_record_straddling_range_end_completed(self):
        first_len = len(b"m1,2015-01-01,10.5,Rotterdam\n")
        # Range ends inside record 2: record 2 starts inside the range,
        # so it is owned and must be completed via lookahead bytes.
        result = invoke(
            SAMPLE, {"range_start": "0", "range_len": str(first_len + 3)}
        )
        assert result.splitlines() == [
            b"m1,2015-01-01,10.5,Rotterdam",
            b"m2,2015-01-02,3.25,Paris",
        ]

    def test_empty_range_in_middle_of_record_yields_nothing(self):
        result = invoke(SAMPLE, {"range_start": "3", "range_len": "2"})
        assert result == b""


class TestCoverageProperty:
    """The invariant the whole pushdown correctness rests on: splitting
    an object into arbitrary contiguous ranges and concatenating the
    storlet outputs reproduces exactly the full-object output."""

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=99),
                st.sampled_from(["2015-01-01", "2015-02-02", "2016-01-01"]),
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.sampled_from(["Rotterdam", "Paris", "Berlin"]),
            ),
            min_size=0,
            max_size=30,
        ),
        cut_points=st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=0,
            max_size=6,
        ),
        use_filter=st.booleans(),
        use_columns=st.booleans(),
    )
    def test_union_of_ranges_equals_full_scan(
        self, rows, cut_points, use_filter, use_columns
    ):
        data = b"".join(
            f"m{vid},{date},{index!r},{city}\n".encode()
            for vid, date, index, city in rows
        )
        parameters = {}
        if use_filter:
            parameters["filters"] = filters_to_json(
                [StringStartsWith("date", "2015")]
            )
        if use_columns:
            parameters["columns"] = json.dumps(["vid", "city"])

        full = invoke(data, dict(parameters))

        size = len(data)
        cuts = sorted({c for c in cut_points if c < size})
        bounds = [0] + cuts + [size]
        pieces = []
        for start, end in zip(bounds, bounds[1:]):
            piece = invoke(
                data[start:],  # stream starts at range_start, as served
                {
                    **parameters,
                    "range_start": str(start),
                    "range_len": str(end - start),
                },
            )
            pieces.append(piece)
        assert b"".join(pieces) == full

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=400), start=st.integers(0, 400))
    def test_owned_lines_never_crashes_on_garbage(self, data, start):
        stream = StorletInputStream([data] if data else [])
        lines = list(_owned_lines(stream, start, None))
        for line in lines:
            assert b"\n" not in line
