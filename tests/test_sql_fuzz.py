"""Fuzzing the SQL engine with randomly generated, well-formed queries.

Two invariants:

1. ``parse(sql).to_sql()`` is a fixpoint (pretty-printing re-parses to
   the same canonical text);
2. executing any generated query over random rows either succeeds or
   raises a *defined* engine error -- never an arbitrary crash.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import Schema, execute_query, parse_query
from repro.sql.catalyst import extract_pushdown
from repro.sql.errors import SqlError

SCHEMA = Schema.of("vid", "date", "index:float", "code:int", "city")

COLUMNS = ["vid", "date", "index", "code", "city"]
STRING_COLUMNS = ["vid", "date", "city"]
NUMERIC_COLUMNS = ["index", "code"]

string_literal = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=10,
).map(lambda s: "'" + s.replace("'", "''") + "'")
number_literal = st.one_of(
    st.integers(-1000, 1000).map(str),
    st.floats(
        min_value=-1000, max_value=1000, allow_nan=False
    ).map(lambda f: repr(f)),
)

comparison = st.one_of(
    st.tuples(
        st.sampled_from(NUMERIC_COLUMNS),
        st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]),
        number_literal,
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.tuples(
        st.sampled_from(STRING_COLUMNS),
        st.sampled_from(["=", "<>"]),
        string_literal,
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.tuples(st.sampled_from(STRING_COLUMNS), string_literal).map(
        lambda t: f"{t[0]} LIKE {t[1]}"
    ),
    st.sampled_from(COLUMNS).map(lambda c: f"{c} IS NOT NULL"),
    st.tuples(
        st.sampled_from(NUMERIC_COLUMNS), number_literal, number_literal
    ).map(lambda t: f"{t[0]} BETWEEN {t[1]} AND {t[2]}"),
)

predicate = st.recursive(
    comparison,
    lambda children: st.one_of(
        st.tuples(children, children).map(
            lambda t: f"({t[0]} AND {t[1]})"
        ),
        st.tuples(children, children).map(lambda t: f"({t[0]} OR {t[1]})"),
        children.map(lambda c: f"NOT ({c})"),
    ),
    max_leaves=5,
)

scalar_item = st.one_of(
    st.sampled_from(COLUMNS),
    st.sampled_from(STRING_COLUMNS).map(
        lambda c: f"SUBSTRING({c}, 0, 4)"
    ),
    st.sampled_from(NUMERIC_COLUMNS).map(lambda c: f"{c} * 2"),
)
aggregate_item = st.tuples(
    st.sampled_from(["sum", "min", "max", "avg", "count"]),
    st.sampled_from(NUMERIC_COLUMNS),
).map(lambda t: f"{t[0]}({t[1]})")


@st.composite
def queries(draw):
    grouped = draw(st.booleans())
    where = draw(st.one_of(st.none(), predicate))
    limit = draw(st.one_of(st.none(), st.integers(0, 20)))
    if grouped:
        keys = draw(
            st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=2,
                     unique=True)
        )
        aggs = draw(st.lists(aggregate_item, min_size=1, max_size=2))
        select = ", ".join(keys + aggs)
        sql = f"SELECT {select} FROM t"
        if where:
            sql += f" WHERE {where}"
        sql += " GROUP BY " + ", ".join(keys)
        sql += " ORDER BY " + ", ".join(keys)
    else:
        items = draw(
            st.lists(scalar_item, min_size=1, max_size=3, unique=True)
        )
        sql = f"SELECT {', '.join(items)} FROM t"
        if where:
            sql += f" WHERE {where}"
        order = draw(st.one_of(st.none(), st.sampled_from(items)))
        if order:
            sql += f" ORDER BY {order}"
    if limit is not None:
        sql += f" LIMIT {limit}"
    return sql


rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.sampled_from(["m1", "m2", "m3"])),
        st.sampled_from(["2015-01-01", "2015-02-02", "2016-12-31"]),
        st.one_of(
            st.none(), st.floats(min_value=-100, max_value=100)
        ),
        st.one_of(st.none(), st.integers(0, 9999)),
        st.sampled_from(["Paris", "Rotterdam", "Berlin"]),
    ),
    max_size=25,
)


class TestQueryFuzz:
    @settings(max_examples=120, deadline=None)
    @given(sql=queries())
    def test_pretty_print_is_a_fixpoint(self, sql):
        query = parse_query(sql)
        canonical = query.to_sql()
        assert parse_query(canonical).to_sql() == canonical

    @settings(max_examples=120, deadline=None)
    @given(sql=queries(), rows=rows_strategy)
    def test_execution_never_crashes_unexpectedly(self, sql, rows):
        try:
            schema, result = execute_query(sql, SCHEMA, rows)
        except SqlError:
            return  # a defined engine error is acceptable
        assert len(schema) > 0
        for row in result:
            assert len(row) == len(schema)

    @settings(max_examples=120, deadline=None)
    @given(sql=queries())
    def test_pushdown_extraction_total(self, sql):
        """extract_pushdown must succeed on every parseable query, and
        its required columns must be real schema columns."""
        spec = extract_pushdown(parse_query(sql), SCHEMA)
        for name in spec.required_columns:
            assert name in SCHEMA

    @settings(max_examples=60, deadline=None)
    @given(sql=queries(), rows=rows_strategy)
    def test_limit_respected(self, sql, rows):
        query = parse_query(sql)
        if query.limit is None:
            return
        try:
            _schema, result = execute_query(sql, SCHEMA, rows)
        except SqlError:
            return
        assert len(result) <= query.limit

    @settings(max_examples=60, deadline=None)
    @given(sql=queries(), rows=rows_strategy)
    def test_pushdown_filters_sound(self, sql, rows):
        """Rows the pushdown filters keep are a superset of rows the
        full WHERE clause keeps (the Spark conservativeness contract)."""
        from repro.sql.filters import conjunction_predicate

        query = parse_query(sql)
        if query.where is None:
            return
        spec = extract_pushdown(query, SCHEMA)
        pushdown_predicate = conjunction_predicate(spec.filters, SCHEMA)
        where = query.where.bind(SCHEMA)
        for row in rows:
            try:
                full = where(row) is True
            except SqlError:
                return
            if full:
                assert pushdown_predicate(row), (
                    "pushdown dropped a row the query needs: "
                    f"{row} under {sql}"
                )
