"""Async serving core: event-loop primitives, pooled-body slot
lifetimes, sync/async byte identity, and the three-mode execution
matrix.

Acceptance criteria for the asyncio refactor (docs/async.md):

* ``AsyncGate`` reproduces the threading.Semaphore contention protocol
  (non-blocking try first, FIFO handoff, cancellation-safe grants);
* a streamed GET holds exactly one pool slot until the body is
  exhausted, closed, or its consumer is *cancelled* -- never until GC;
* the async line splitter frames quoted newlines byte-for-byte like
  the sync storlet splitter;
* serial (p=1), threaded (p=16) and async (p=16) execution return
  byte-identical query results under every named fault plan, including
  ``overload``;
* ``REPRO_ASYNC=1`` flips the default execution mode without touching
  call sites.
"""

import asyncio
import threading

import pytest

from repro.aio.bridge import drive, run_sync
from repro.aio.gate import AsyncGate, LoopLocal
from repro.aio.stream import aowned_lines
from repro.core import ScoopContext
from repro.faults import named_plan
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.spark.scheduler import default_execution_mode
from repro.storlets.csv_storlet import StorletInputStream, _owned_lines
from repro.swift import SwiftClient, SwiftCluster
from repro.swift.aclient import AsyncSwiftClient
from repro.swift.http import close_body
from repro.swift.retry import RetryPolicy


# --------------------------------------------------------------------------
# AsyncGate / LoopLocal
# --------------------------------------------------------------------------


class TestAsyncGate:
    def test_try_acquire_until_saturated(self):
        gate = AsyncGate(2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_acquire_reports_whether_it_waited(self):
        async def scenario():
            gate = AsyncGate(1)
            assert (await gate.acquire()) is False  # free slot: no wait
            waited = []

            async def contender():
                waited.append(await gate.acquire())
                gate.release()

            task = asyncio.ensure_future(contender())
            await asyncio.sleep(0)
            gate.release()
            await task
            return waited

        assert asyncio.run(scenario()) == [True]

    def test_fifo_handoff_under_contention(self):
        async def scenario():
            gate = AsyncGate(1)
            await gate.acquire()
            order = []

            async def contender(tag):
                await gate.acquire()
                order.append(tag)
                await asyncio.sleep(0)
                gate.release()

            tasks = [
                asyncio.ensure_future(contender(i)) for i in range(4)
            ]
            await asyncio.sleep(0)
            gate.release()
            await asyncio.gather(*tasks)
            return order

        assert asyncio.run(scenario()) == [0, 1, 2, 3]

    def test_cancelled_waiter_does_not_leak_its_slot(self):
        async def scenario():
            gate = AsyncGate(1)
            await gate.acquire()
            waiter = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            gate.release()
            return gate.available

        assert asyncio.run(scenario()) == 1

    def test_over_release_raises(self):
        gate = AsyncGate(1)
        with pytest.raises(RuntimeError):
            gate.release()

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AsyncGate(0)

    def test_loop_local_scopes_values_per_loop(self):
        built = []
        slot = LoopLocal(lambda: built.append(1) or object())

        async def grab():
            first = slot.get()
            assert slot.get() is first  # cached within the loop
            return first

        a = asyncio.run(grab())
        b = asyncio.run(grab())
        assert a is not b  # fresh loop, fresh value
        assert len(built) == 2


# --------------------------------------------------------------------------
# Sync shims
# --------------------------------------------------------------------------


class TestBridge:
    def test_run_sync_returns_the_coroutine_result(self):
        async def answer():
            await asyncio.sleep(0)
            return 42

        assert run_sync(answer()) == 42

    def test_run_sync_rejects_reentrant_calls(self):
        async def outer():
            async def inner():
                return 1

            coro = inner()
            try:
                with pytest.raises(RuntimeError):
                    run_sync(coro)
            finally:
                coro.close()

        run_sync(outer())

    def test_run_sync_reuses_one_loop_per_thread(self):
        async def current_loop():
            return asyncio.get_running_loop()

        assert run_sync(current_loop()) is run_sync(current_loop())

    def test_drive_pumps_an_async_generator(self):
        async def numbers():
            for i in range(5):
                await asyncio.sleep(0)
                yield i

        assert list(drive(numbers())) == [0, 1, 2, 3, 4]

    def test_drive_closes_the_generator_on_early_exit(self):
        closed = []

        async def numbers():
            try:
                for i in range(100):
                    yield i
            finally:
                closed.append(True)

        pump = drive(numbers())
        assert next(pump) == 0
        pump.close()
        assert closed == [True]


# --------------------------------------------------------------------------
# Pool slot lifetime (sync client)
# --------------------------------------------------------------------------


def _slot_free(client):
    """Probe the sync client's semaphore without blocking."""
    if client._pool.acquire(blocking=False):
        client._pool.release()
        return True
    return False


@pytest.fixture
def small_store():
    cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
    seeder = SwiftClient(cluster, "AUTH_pool")
    seeder.put_container("c")
    seeder.put_object("c", "o", b"x" * (256 * 1024))
    return cluster


class TestSyncPooledBody:
    def test_streamed_get_holds_slot_until_exhausted(self, small_store):
        client = SwiftClient(cluster=small_store, account="AUTH_pool",
                             max_connections=1)
        response = client.get_object_stream("c", "o")
        assert not _slot_free(client)
        consumed = b"".join(response.body)
        assert consumed == b"x" * (256 * 1024)
        assert _slot_free(client)

    def test_closing_a_partial_stream_frees_the_slot(self, small_store):
        client = SwiftClient(cluster=small_store, account="AUTH_pool",
                             max_connections=1)
        response = client.get_object_stream("c", "o")
        stream = iter(response.body)
        first = next(stream)
        assert first and not _slot_free(client)
        close_body(response.body)
        assert _slot_free(client)
        del stream

    def test_materialized_get_releases_on_return(self, small_store):
        client = SwiftClient(cluster=small_store, account="AUTH_pool",
                             max_connections=1)
        _headers, body = client.get_object("c", "o")
        assert len(body) == 256 * 1024
        assert _slot_free(client)


# --------------------------------------------------------------------------
# Async client
# --------------------------------------------------------------------------


class TestAsyncClient:
    def test_get_object_matches_sync(self, small_store):
        sync_client = SwiftClient(small_store, "AUTH_pool")
        _h, expected = sync_client.get_object("c", "o")

        async def fetch():
            client = AsyncSwiftClient(small_store, "AUTH_pool",
                                      ensure_account=False)
            _headers, body = await client.get_object("c", "o")
            return body

        assert asyncio.run(fetch()) == expected

    def test_contended_pool_counts_waits(self, small_store):
        async def scenario():
            client = AsyncSwiftClient(small_store, "AUTH_pool",
                                      max_connections=1,
                                      ensure_account=False)
            streamed = await client.get_object_stream("c", "o")
            task = asyncio.ensure_future(client.get_object("c", "o"))
            # Let the second request hit the saturated pool and suspend.
            for _ in range(5):
                await asyncio.sleep(0)
            assert not task.done()
            waits = client.stats.pool_waits
            await streamed.aread()  # exhausts the body, frees the slot
            await task
            return waits

        assert asyncio.run(scenario()) == 1

    def test_cancelled_stream_consumer_frees_the_slot(self, small_store):
        """Satellite regression: a task cancelled mid-stream must not
        strand its pool slot until GC."""

        async def scenario():
            client = AsyncSwiftClient(small_store, "AUTH_pool",
                                      max_connections=1,
                                      ensure_account=False)
            response = await client.get_object_stream("c", "o")
            seen = []

            async def consume():
                async for chunk in response.aiter_body():
                    seen.append(len(chunk))

            task = asyncio.ensure_future(consume())
            await asyncio.sleep(0)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            # The slot must be free again: a fresh bounded GET succeeds
            # without waiting.
            before = client.stats.pool_waits
            _headers, body = await client.get_object("c", "o")
            assert client.stats.pool_waits == before
            return len(body)

        assert asyncio.run(scenario()) == 256 * 1024


# --------------------------------------------------------------------------
# Line-splitter identity
# --------------------------------------------------------------------------


QUOTED_CSV = (
    b'a,"line with\nembedded newline",1\n'
    b"b,plain,2\n"
    b'c,"quote "" inside",3\n'
    b'd,"trailing\nsplit\nrecord",4\n'
    b"e,last,5\n"
)


class TestAownedLinesIdentity:
    @pytest.mark.parametrize("range_start,range_len", [
        (0, None),
        (0, 10),
        (7, 30),
        (25, len(QUOTED_CSV) - 25),
    ])
    def test_matches_sync_splitter(self, range_start, range_len):
        def sync_lines():
            stream = StorletInputStream(iter([QUOTED_CSV]))
            return list(_owned_lines(stream, range_start, range_len))

        async def async_lines():
            async def chunks():
                # Awkward chunking on purpose: framing must not depend
                # on chunk boundaries.
                for i in range(0, len(QUOTED_CSV), 7):
                    yield QUOTED_CSV[i:i + 7]

            return [
                line
                async for line in aowned_lines(
                    chunks(), range_start, range_len
                )
            ]

        assert asyncio.run(async_lines()) == sync_lines()


# --------------------------------------------------------------------------
# Execution-mode selection
# --------------------------------------------------------------------------


class TestExecutionModeSelection:
    def test_env_var_flips_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASYNC", raising=False)
        assert default_execution_mode() == "threads"
        monkeypatch.setenv("REPRO_ASYNC", "1")
        assert default_execution_mode() == "async"
        monkeypatch.setenv("REPRO_ASYNC", "0")
        assert default_execution_mode() == "threads"

    def test_context_binds_an_async_client_in_async_mode(self):
        ctx = ScoopContext(async_mode=True)
        assert ctx.execution_mode == "async"
        assert ctx.async_client is not None
        assert ctx.connector.async_client is ctx.async_client
        # One shared ledger: async requests land in the same stats.
        assert ctx.async_client.stats is ctx.client.stats

    def test_sync_default_has_no_async_client(self):
        ctx = ScoopContext(async_mode=False)
        assert ctx.execution_mode == "threads"
        assert ctx.async_client is None

    def test_invalid_execution_mode_rejected(self):
        from repro.spark.scheduler import SparkContext

        with pytest.raises(ValueError):
            SparkContext(execution_mode="fibers")


# --------------------------------------------------------------------------
# Three-mode byte identity under every named fault plan
# --------------------------------------------------------------------------


MATRIX_SEED = 20170417
MATRIX_SPEC = DatasetSpec(meters=8, intervals=48, objects=3)
MATRIX_QUERIES = {
    "scan": "SELECT * FROM largeMeter",
    "limit": "SELECT vid, date, index FROM largeMeter LIMIT 100",
    "filtered_agg": (
        "SELECT vid, sum(index) as total FROM largeMeter "
        "WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid"
    ),
}
FAULT_PLANS = (None, "device-loss", "flaky-object", "storlet-crash",
               "overload")


def _run_matrix_workload(plan_name, parallelism, async_mode):
    ctx = ScoopContext(
        chunk_size=48 * 1024,
        retry_policy=RetryPolicy(seed=MATRIX_SEED),
        fault_plan=(
            named_plan(plan_name, seed=MATRIX_SEED) if plan_name else None
        ),
        parallelism=parallelism,
        async_mode=async_mode,
    )
    upload_dataset(ctx.client, "meters", MATRIX_SPEC)
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    results = {}
    for name, sql in MATRIX_QUERIES.items():
        frame, _report = ctx.run_query(sql)
        results[name] = frame.collect()
    return results


class TestThreeModeByteIdentity:
    @pytest.mark.parametrize("plan_name", FAULT_PLANS)
    def test_serial_threaded_async_identical(self, plan_name):
        serial = _run_matrix_workload(plan_name, 1, False)
        threaded = _run_matrix_workload(plan_name, 16, False)
        async_rows = _run_matrix_workload(plan_name, 16, True)
        assert serial == threaded
        assert threaded == async_rows

    def test_parallel_16_pushdown_scan_bytes_identical(self):
        """Raw connector-level identity: the async split reader streams
        the same bytes, record for record, as the threaded reader."""
        ctx = ScoopContext(chunk_size=32 * 1024, parallelism=16,
                           async_mode=True)
        upload_dataset(ctx.client, "meters", MATRIX_SPEC)
        splits = ctx.connector.discover_partitions("meters")
        assert len(splits) > 1
        sync_records = [
            list(ctx.connector.read_split_records(split))
            for split in splits
        ]

        async def read_async(split):
            return [
                record
                async for record in ctx.connector.aread_split_records(split)
            ]

        async_records = [run_sync(read_async(split)) for split in splits]
        assert async_records == sync_records


# --------------------------------------------------------------------------
# Async scheduler streaming
# --------------------------------------------------------------------------


class TestAsyncSchedulerStreaming:
    #: Big enough that one object spans many chunks, so a LIMIT that
    #: stops early genuinely saves transfers.
    STREAM_SPEC = DatasetSpec(meters=24, intervals=200, objects=3)

    def test_limit_stops_early_and_transfers_fewer_bytes(self):
        def run(async_mode, sql):
            ctx = ScoopContext(chunk_size=16 * 1024, parallelism=8,
                               async_mode=async_mode)
            upload_dataset(ctx.client, "meters", self.STREAM_SPEC)
            ctx.register_csv_table("largeMeter", "meters",
                                   schema=METER_SCHEMA)
            frame, _report = ctx.run_query(sql)
            return frame.collect(), ctx.connector.metrics.bytes_transferred

        limited = "SELECT * FROM largeMeter LIMIT 50"
        sync_rows, _sync_bytes = run(False, limited)
        async_rows, async_bytes = run(True, limited)
        assert async_rows == sync_rows

        full_rows, full_bytes = run(True, "SELECT * FROM largeMeter")
        assert len(full_rows) > 50
        assert async_bytes < full_bytes

    def test_async_mode_multiplexes_on_one_loop(self, small_store):
        """The async stage runs its partitions as coroutines on the
        calling thread's loop -- no per-partition worker threads."""
        ctx = ScoopContext(parallelism=8, async_mode=True)
        upload_dataset(ctx.client, "meters", MATRIX_SPEC)
        ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
        before = threading.active_count()
        frame, _report = ctx.run_query("SELECT vid FROM largeMeter")
        assert frame.collect()
        assert threading.active_count() == before
