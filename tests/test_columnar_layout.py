"""Property tests for the RCF1 columnar layout (docs/columnar.md).

Hypothesis drives the writer/reader pair through arbitrary schemas,
NULL patterns, stripe sizes and chunk boundaries; the invariant is
always the same: whatever ``encode_*`` produced, ``decode_*`` returns
the original rows, bit for bit.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar.batch import ColumnBatch
from repro.columnar.layout import (
    BlockStreamDecoder,
    decode_block_stream,
    decode_footer,
    decode_segment,
    encode_block,
    encode_columnar,
    encode_segment,
    encode_stream,
    footer_from_tail,
    iter_stripe_batches,
)
from repro.sql.types import DataType, Schema

# -- value strategies per column type ---------------------------------------

_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)
_VALUES = {
    DataType.STRING: st.one_of(st.none(), _TEXT),
    # Includes values outside int64 to exercise the text escape hatch.
    DataType.INT: st.one_of(
        st.none(), st.integers(min_value=-(2**80), max_value=2**80)
    ),
    DataType.FLOAT: st.one_of(
        st.none(),
        st.floats(allow_nan=False, allow_infinity=True, width=64),
    ),
    DataType.BOOL: st.one_of(st.none(), st.booleans()),
}


@st.composite
def schemas(draw):
    """A random schema: 1-6 uniquely named, randomly typed columns."""
    count = draw(st.integers(1, 6))
    types = draw(
        st.lists(
            st.sampled_from(list(DataType)), min_size=count, max_size=count
        )
    )
    return Schema.of(
        *[f"c{i}:{t.value}" for i, t in enumerate(types)]
    )


@st.composite
def tables(draw):
    """A (schema, rows) pair with NULLs sprinkled everywhere."""
    schema = draw(schemas())
    row = st.tuples(*[_VALUES[f.dtype] for f in schema.fields])
    rows = draw(st.lists(row, max_size=40))
    return schema, rows


def _all_rows(data: bytes):
    return [row for batch in iter_stripe_batches(data) for row in batch.rows]


class TestObjectRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(table=tables(), stripe_rows=st.integers(1, 7))
    def test_encode_decode_round_trips(self, table, stripe_rows):
        schema, rows = table
        data = encode_columnar(schema, rows, stripe_rows)
        footer = decode_footer(data)
        assert footer.schema.to_header() == schema.to_header()
        assert footer.rows == len(rows)
        assert _all_rows(data) == rows

    @settings(max_examples=60, deadline=None)
    @given(table=tables())
    def test_stream_equals_one_shot_encoding(self, table):
        schema, rows = table
        assert b"".join(encode_stream(schema, rows)) == encode_columnar(
            schema, rows
        )

    @settings(max_examples=60, deadline=None)
    @given(table=tables(), stripe_bytes=st.integers(1, 512))
    def test_byte_budgeted_stripes_round_trip(self, table, stripe_bytes):
        schema, rows = table
        data = b"".join(
            encode_stream(schema, rows, stripe_bytes=stripe_bytes)
        )
        assert _all_rows(data) == rows

    @settings(max_examples=60, deadline=None)
    @given(table=tables(), probe=st.integers(13, 64))
    def test_footer_from_tail_matches_full_decode(self, table, probe):
        schema, rows = table
        data = encode_columnar(schema, rows)
        tail = data[-min(probe, len(data)):]
        footer, needed = footer_from_tail(tail, len(data))
        if footer is None:
            footer, _ = footer_from_tail(data[-needed:], len(data))
        assert footer is not None
        full = decode_footer(data)
        assert footer.rows == full.rows
        assert [s.start for s in footer.stripes] == [
            s.start for s in full.stripes
        ]

    def test_empty_table_round_trips(self):
        schema = Schema.of("a", "b:int")
        data = encode_columnar(schema, [])
        footer = decode_footer(data)
        assert footer.rows == 0 and footer.stripes == []
        assert _all_rows(data) == []

    def test_column_projection_reads_only_named_columns(self):
        schema = Schema.of("a", "b:int", "c:float")
        rows = [("x", 1, 0.5), (None, None, None), ("y", 2, 1.5)]
        data = encode_columnar(schema, rows)
        batches = list(iter_stripe_batches(data, columns=["c", "a"]))
        assert [r for b in batches for r in b.rows] == [
            (0.5, "x"), (None, None), (1.5, "y")
        ]


class TestSegmentRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(
        dtype=st.sampled_from(list(DataType)),
        data=st.data(),
    )
    def test_segment_round_trips(self, dtype, data):
        values = data.draw(st.lists(_VALUES[dtype], max_size=30))
        encoded, nulls, mn, mx, has_nan = encode_segment(values, dtype)
        assert nulls == sum(1 for v in values if v is None)
        non_null = [v for v in values if v is not None]
        finite = [
            v
            for v in non_null
            if not (isinstance(v, float) and not math.isfinite(v))
        ]
        assert has_nan == (len(finite) < len(non_null))
        if finite:
            assert mn == min(finite) and mx == max(finite)
        else:
            assert mn is None and mx is None
        decoded = decode_segment(encoded, dtype, len(values))
        if dtype is DataType.FLOAT:
            decoded = [None if v is None else float(v) for v in decoded]
            non_null = [float(v) for v in non_null]
            values = [None if v is None else float(v) for v in values]
        assert decoded == values


@st.composite
def batch_lists(draw):
    """0-4 batches sharing one random schema, some possibly empty."""
    schema = draw(schemas())
    row = st.tuples(*[_VALUES[f.dtype] for f in schema.fields])
    return [
        ColumnBatch.from_rows(schema, tuple(draw(st.lists(row, max_size=12))))
        for _ in range(draw(st.integers(0, 4)))
    ]


class TestBlockStream:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64 * 1024])
    def test_decode_is_chunk_boundary_agnostic(self, chunk_size):
        schema = Schema.of("a", "b:int", "c:float", "d:bool")
        rows = [
            (f"r{i}", i if i % 3 else None, i / 2.0, i % 2 == 0)
            for i in range(300)
        ]
        stream = encode_block(
            ColumnBatch.from_rows(schema, tuple(rows[:100]))
        ) + encode_block(
            ColumnBatch.from_rows(schema, tuple(rows[100:]))
        )
        chunks = [
            stream[i : i + chunk_size]
            for i in range(0, len(stream), chunk_size)
        ]
        decoded = [
            row
            for batch in decode_block_stream(chunks)
            for row in batch.rows
        ]
        assert decoded == rows

    @settings(max_examples=80, deadline=None)
    @given(batches=batch_lists(), chunk_size=st.integers(1, 97))
    def test_arbitrary_batches_round_trip(self, batches, chunk_size):
        stream = b"".join(encode_block(batch) for batch in batches)
        chunks = [
            stream[i : i + chunk_size]
            for i in range(0, len(stream), chunk_size)
        ]
        decoder = BlockStreamDecoder()
        out = [b for chunk in chunks for b in decoder.push(chunk)]
        decoder.finish()
        assert [b.rows for b in out] == [b.rows for b in batches]

    def test_truncated_stream_raises(self):
        schema = Schema.of("a")
        block = encode_block(
            ColumnBatch.from_rows(schema, (("x",), ("y",)))
        )
        with pytest.raises(ValueError):
            list(decode_block_stream([block[:-1]]))

    def test_empty_batch_round_trips(self):
        schema = Schema.of("a", "b:int")
        block = encode_block(ColumnBatch(schema, [[], []], 0))
        (batch,) = list(decode_block_stream([block]))
        assert len(batch) == 0
        assert batch.schema.to_header() == schema.to_header()
