"""Regression tests for NaN-poisoned min/max statistics.

Pre-fix, ``encode_segment`` fed NaN straight into Python's ``min``/
``max`` -- which are order-dependent under NaN (``min([nan, 1]) = nan``
but ``min([1, nan]) = 1``) -- and ``stripe_may_match`` then treated the
NaN bound as refutation (``hi > value`` is False when ``hi`` is NaN),
silently dropping stripes that contain matching rows.  These tests pin
both orderings (NaN-first poisons both bounds, NaN-last neither) and
assert byte identity with the row oracle through the full columnar
plane; every one of them fails on the pre-fix stats code.
"""

import json
import math

import pytest

from repro.columnar.layout import (
    decode_footer,
    encode_columnar,
    encode_segment,
)
from repro.columnar.pruning import stripe_may_match
from repro.core.scoop import ScoopContext
from repro.sql.filters import EqualTo, GreaterThan, In, LessThan
from repro.sql.types import DataType, Schema

SCHEMA = Schema.of("vid", "index:float", "code:int")

#: The satellite's required filter shapes: >, <, =, IN.
NAN_QUERIES = (
    "SELECT vid, index FROM t WHERE index > 3.0",
    "SELECT vid, index FROM t WHERE index < 2.0",
    "SELECT vid FROM t WHERE index = 3.5",
    "SELECT vid FROM t WHERE index IN (0.5, 3.5)",
)


def _csv_body(nan_position):
    """40 rows with index i/2.0, one row's index replaced by NaN."""
    lines = []
    for i in range(40):
        value = "nan" if i == nan_position else f"{i / 2.0}"
        lines.append(f"v{i},{value},{i}")
    return "\n".join(lines) + "\n"


#: NaN-first poisons min AND max pre-fix; NaN-last poisons neither --
#: both must behave identically post-fix.
ORDERINGS = {"nan-first": 0, "nan-last": 39}


class TestSegmentStats:
    def test_nan_first_yields_finite_bounds_and_flag(self):
        values = [float("nan"), 1.0, 5.0]
        _data, nulls, mn, mx, has_nan = encode_segment(values, DataType.FLOAT)
        assert nulls == 0
        assert (mn, mx) == (1.0, 5.0)
        assert has_nan is True

    def test_nan_last_yields_identical_stats(self):
        values = [1.0, 5.0, float("nan")]
        _data, _nulls, mn, mx, has_nan = encode_segment(values, DataType.FLOAT)
        assert (mn, mx, has_nan) == (1.0, 5.0, True)

    def test_infinities_are_excluded_but_flagged(self):
        values = [float("inf"), 1.0, float("-inf")]
        _data, _nulls, mn, mx, has_nan = encode_segment(values, DataType.FLOAT)
        assert (mn, mx, has_nan) == (1.0, 1.0, True)

    def test_all_non_finite_yields_absent_bounds(self):
        values = [float("nan"), float("inf")]
        _data, _nulls, mn, mx, has_nan = encode_segment(values, DataType.FLOAT)
        assert (mn, mx, has_nan) == (None, None, True)


class TestFooter:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_footer_json_has_no_nan_literal(self, ordering):
        rows = [
            (f"v{i}", float("nan") if i == ORDERINGS[ordering] else i / 2.0, i)
            for i in range(40)
        ]
        data = encode_columnar(SCHEMA, rows)
        footer_len = int(data[-12:-4])
        payload = data[len(data) - 12 - footer_len : len(data) - 12]
        # Strict JSON must parse it; the non-standard literals must not
        # appear anywhere in the footer text.
        json.loads(payload.decode("utf-8"), parse_constant=_reject_constant)
        for literal in (b"NaN", b"Infinity"):
            assert literal not in payload

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_round_trip_preserves_flag_and_values(self, ordering):
        position = ORDERINGS[ordering]
        rows = [
            (f"v{i}", float("nan") if i == position else i / 2.0, i)
            for i in range(40)
        ]
        data = encode_columnar(SCHEMA, rows)
        footer = decode_footer(data)
        segment = footer.stripes[0].columns[SCHEMA.index_of("index")]
        assert segment.has_nan is True
        # NaN-first eats row 0 (index 0.0), so the finite min is 0.5.
        assert segment.min_value == (0.5 if position == 0 else 0.0)
        assert math.isfinite(segment.min_value)
        assert math.isfinite(segment.max_value)
        from repro.columnar.layout import iter_stripe_batches

        decoded = [row for batch in iter_stripe_batches(data) for row in batch.rows]
        assert math.isnan(decoded[position][1])

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_stripe_with_nan_is_never_refuted_on_that_column(self, ordering):
        rows = [
            (f"v{i}", float("nan") if i == ORDERINGS[ordering] else i / 2.0, i)
            for i in range(40)
        ]
        footer = decode_footer(encode_columnar(SCHEMA, rows))
        stripe = footer.stripes[0]
        # Matching rows exist for every one of these; pre-fix the
        # NaN-first ordering refuted all four.
        for item in (
            GreaterThan("index", 3.0),
            LessThan("index", 2.0),
            EqualTo("index", 3.5),
            In("index", [0.5, 3.5]),
        ):
            assert stripe_may_match(stripe, [item], SCHEMA), item

    def test_stale_non_finite_bounds_degrade_to_may_match(self):
        """A pre-fix footer (NaN bounds, no flag) must prune nothing."""
        from repro.columnar.layout import SegmentMeta, StripeMeta

        stripe = StripeMeta(
            rows=4,
            columns=[
                SegmentMeta(offset=4, length=10),
                SegmentMeta(
                    offset=14,
                    length=10,
                    min_value=float("nan"),
                    max_value=float("nan"),
                ),
                SegmentMeta(offset=24, length=10, min_value=0, max_value=3),
            ],
        )
        assert stripe_may_match(stripe, [GreaterThan("index", 3.0)], SCHEMA)
        assert stripe_may_match(stripe, [EqualTo("index", 3.5)], SCHEMA)


def _reject_constant(name):
    raise AssertionError(f"non-standard JSON literal {name} in footer")


@pytest.fixture(scope="module")
def row_baseline():
    """The row-path oracle for both NaN orderings."""
    baselines = {}
    for ordering, position in ORDERINGS.items():
        ctx = ScoopContext(chunk_size=16 * 1024)
        ctx.upload_csv("data", "part-000.csv", _csv_body(position))
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="csv")
        baselines[ordering] = {
            sql: ctx.sql(sql).collect() for sql in NAN_QUERIES
        }
    return baselines


class TestNanByteIdentity:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize(
        "parallelism,async_mode",
        [(1, False), (16, False), (16, True)],
        ids=["serial", "threads-16", "async-16"],
    )
    def test_columnar_matches_row_path(
        self, row_baseline, ordering, parallelism, async_mode
    ):
        ctx = ScoopContext(
            chunk_size=16 * 1024,
            parallelism=parallelism,
            async_mode=async_mode,
        )
        ctx.upload_csv("data", "part-000.csv", _csv_body(ORDERINGS[ordering]))
        ctx.register_csv_table("t", "data", schema=SCHEMA, format="columnar")
        for sql, expected in row_baseline[ordering].items():
            assert ctx.sql(sql).collect() == expected, (sql, ordering)

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_expected_rows_actually_survive(self, row_baseline, ordering):
        """Guard the oracle itself: the filters do match rows, so a
        pre-fix pruner dropping the stripe loses real output."""
        for sql, expected in row_baseline[ordering].items():
            assert len(expected) > 0, sql
