"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import ScoopContext
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.gridpocket.generator import MeterDataGenerator
from repro.simulation import Environment
from repro.sql.types import Schema
from repro.swift import SwiftClient, SwiftCluster


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def swift() -> SwiftCluster:
    return SwiftCluster(
        storage_node_count=3, disks_per_node=2, proxy_count=2, part_power=6
    )


@pytest.fixture
def client(swift: SwiftCluster) -> SwiftClient:
    return SwiftClient(swift, "AUTH_test")


@pytest.fixture
def small_schema() -> Schema:
    return Schema.of("vid", "date", "index:float", "city")


SMALL_SPEC = DatasetSpec(meters=25, intervals=96, objects=3)


@pytest.fixture(scope="session")
def small_dataset_rows():
    """Typed rows of the canonical small test dataset (deterministic)."""
    return list(MeterDataGenerator(SMALL_SPEC).rows())


@pytest.fixture(scope="session")
def _scoop_session():
    """One Scoop stack shared across the session (read-only usage)."""
    ctx = ScoopContext(chunk_size=48 * 1024)
    upload_dataset(ctx.client, "meters", SMALL_SPEC)
    ctx.register_csv_table(
        "largeMeter", "meters", schema=METER_SCHEMA, pushdown=True
    )
    ctx.register_csv_table(
        "largeMeterPlain", "meters", schema=METER_SCHEMA, pushdown=False
    )
    return ctx


@pytest.fixture
def scoop(_scoop_session) -> ScoopContext:
    """The shared Scoop stack with transfer metrics reset per test."""
    _scoop_session.connector.metrics.reset()
    return _scoop_session


@pytest.fixture
def fresh_scoop() -> ScoopContext:
    """A private Scoop stack for tests that mutate state."""
    return ScoopContext(chunk_size=48 * 1024)
