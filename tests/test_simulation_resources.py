"""Unit tests for Resource, Container and Store."""

import pytest

from repro.simulation import Container, Environment, Resource, SimulationError, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, 0)

    def test_serial_execution_under_capacity_one(self, env):
        resource = Resource(env, capacity=1)
        spans = []

        def worker(env, resource, tag):
            with resource.request() as req:
                yield req
                start = env.now
                yield env.timeout(10)
                spans.append((tag, start, env.now))

        env.process(worker(env, resource, "a"))
        env.process(worker(env, resource, "b"))
        env.run()
        assert spans == [("a", 0, 10), ("b", 10, 20)]

    def test_parallel_execution_under_capacity_two(self, env):
        resource = Resource(env, capacity=2)
        ends = []

        def worker(env, resource):
            with resource.request() as req:
                yield req
                yield env.timeout(10)
                ends.append(env.now)

        for _ in range(4):
            env.process(worker(env, resource))
        env.run()
        assert ends == [10, 10, 20, 20]

    def test_count_tracks_held_slots(self, env):
        resource = Resource(env, capacity=2)
        observed = []

        def worker(env, resource, delay):
            yield env.timeout(delay)
            with resource.request() as req:
                yield req
                observed.append(resource.count)
                yield env.timeout(5)

        env.process(worker(env, resource, 0))
        env.process(worker(env, resource, 1))
        env.run()
        assert observed == [1, 2]
        assert resource.count == 0

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        done = []

        def holder(env, resource):
            with resource.request() as req:
                yield req
                yield env.timeout(5)

        def impatient(env, resource):
            request = resource.request()
            yield env.timeout(1)
            request.cancel()
            done.append(env.now)

        env.process(holder(env, resource))
        env.process(impatient(env, resource))
        env.run()
        assert done == [1]
        assert not resource.queue


class TestContainer:
    def test_initial_level(self, env):
        assert Container(env, capacity=10, init=4).level == 4

    def test_invalid_init_raises(self, env):
        with pytest.raises(SimulationError):
            Container(env, capacity=10, init=11)

    def test_get_blocks_until_put(self, env):
        container = Container(env, capacity=10)
        times = []

        def consumer(env, container):
            yield container.get(5)
            times.append(("got", env.now))

        def producer(env, container):
            yield env.timeout(3)
            yield container.put(5)

        env.process(consumer(env, container))
        env.process(producer(env, container))
        env.run()
        assert times == [("got", 3)]

    def test_put_blocks_when_full(self, env):
        container = Container(env, capacity=10, init=8)
        times = []

        def producer(env, container):
            yield container.put(5)
            times.append(("put", env.now))

        def consumer(env, container):
            yield env.timeout(2)
            yield container.get(4)

        env.process(producer(env, container))
        env.process(consumer(env, container))
        env.run()
        assert times == [("put", 2)]
        assert container.level == 9

    def test_nonpositive_amount_raises(self, env):
        container = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            container.put(0)
        with pytest.raises(SimulationError):
            container.get(-1)


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        received = []

        def producer(env, store):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == ["a", "b", "c"]

    def test_get_blocks_on_empty(self, env):
        store = Store(env)
        times = []

        def consumer(env, store):
            item = yield store.get()
            times.append((item, env.now))

        def producer(env, store):
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert times == [("late", 7)]

    def test_put_blocks_at_capacity(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer(env, store):
            yield store.put(1)
            yield store.put(2)
            times.append(env.now)

        def consumer(env, store):
            yield env.timeout(4)
            yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert times == [4]
