"""Tests for the Spark-Storlets path: object-aware partitioning,
StorletRDD and the Hadoop-free CSV relation (Section VII)."""

import pytest

from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.spark.storlet_rdd import (
    StorletCsvRelation,
    StorletRDD,
    object_aware_partitions,
)
from repro.storlets.engine import StorletRequestHeaders
from repro.swift.exceptions import SwiftError


@pytest.fixture
def rig(fresh_scoop):
    upload_dataset(
        fresh_scoop.client,
        "meters",
        DatasetSpec(meters=20, intervals=120, objects=3),
    )
    return fresh_scoop


class TestObjectAwarePartitions:
    def test_splits_cover_objects_exactly(self, rig):
        splits = object_aware_partitions(
            rig.connector, "meters", parallelism=10
        )
        by_object = {}
        for split in splits:
            by_object.setdefault(split.name, []).append(split)
        for name, object_splits in by_object.items():
            object_splits.sort(key=lambda s: s.start)
            assert object_splits[0].start == 0
            for left, right in zip(object_splits, object_splits[1:]):
                assert left.start + left.length == right.start
            last = object_splits[-1]
            assert last.start + last.length == last.object_size

    def test_split_count_tracks_parallelism(self, rig):
        few = object_aware_partitions(
            rig.connector, "meters", parallelism=3, min_split_bytes=4096
        )
        many = object_aware_partitions(
            rig.connector, "meters", parallelism=24, min_split_bytes=4096
        )
        assert len(many) > len(few)

    def test_at_least_replica_count_splits_per_object(self, rig):
        splits = object_aware_partitions(
            rig.connector, "meters", parallelism=1, replica_count=3
        )
        by_object = {}
        for split in splits:
            by_object.setdefault(split.name, []).append(split)
        for object_splits in by_object.values():
            assert len(object_splits) >= 3

    def test_min_split_bytes_respected(self, rig):
        splits = object_aware_partitions(
            rig.connector,
            "meters",
            parallelism=10_000,
            min_split_bytes=16 * 1024,
        )
        for split in splits:
            if not split.is_last:
                assert split.length >= 16 * 1024 * 0.5

    def test_empty_container(self, rig):
        rig.client.put_container("void")
        assert object_aware_partitions(rig.connector, "void") == []

    def test_invalid_parallelism_raises(self, rig):
        with pytest.raises(ValueError):
            object_aware_partitions(rig.connector, "meters", parallelism=0)


class TestStorletRDD:
    def make_rdd(self, rig, parameters=None):
        splits = object_aware_partitions(
            rig.connector, "meters", parallelism=6
        )
        return StorletRDD(
            rig.spark_context,
            rig.connector,
            splits,
            "csvstorlet",
            {"schema": METER_SCHEMA.to_header(), **(parameters or {})},
        )

    def test_output_is_the_distributed_dataset(self, rig):
        rdd = self.make_rdd(rig)
        lines = rdd.collect()
        assert len(lines) == DatasetSpec(
            meters=20, intervals=120, objects=3
        ).total_rows()

    def test_replicas_rotate_across_partitions(self, rig):
        rdd = self.make_rdd(rig)
        per_object = {}
        for split in rdd.splits:
            per_object.setdefault(split.name, []).append(
                rdd._replica_for[split.index]
            )
        for replicas in per_object.values():
            if len(replicas) >= 3:
                assert len(set(replicas)) >= 2

    def test_composes_with_rdd_transformations(self, rig):
        import json

        rdd = self.make_rdd(
            rig, {"columns": json.dumps(["vid", "index"])}
        )
        counts = (
            rdd.map(lambda line: (line.split(b",")[0], 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert len(counts) == 20
        assert all(count == 120 for _vid, count in counts)

    def test_missing_engine_fails_loudly(self):
        from repro.connector import StocatorConnector
        from repro.spark import SparkContext
        from repro.swift import SwiftClient, SwiftCluster

        cluster = SwiftCluster(storage_node_count=2, disks_per_node=1)
        client = SwiftClient(cluster, "AUTH_x")
        client.put_container("c")
        client.put_object("c", "o", b"a,b\n")
        connector = StocatorConnector(client)
        splits = object_aware_partitions(connector, "c", parallelism=1)
        rdd = StorletRDD(
            SparkContext("x", 1),
            connector,
            splits,
            "csvstorlet",
            {"schema": "a,b"},
        )
        with pytest.raises(SwiftError):
            rdd.collect()


class TestStorletCsvRelation:
    def test_query_results_match_hadoop_path(self, rig):
        relation = StorletCsvRelation(
            rig.spark_context,
            rig.connector,
            "meters",
            METER_SCHEMA,
            parallelism=6,
        )
        rig.session.register_table("direct", relation)
        rig.register_csv_table("hadoop", "meters", schema=METER_SCHEMA)
        sql = (
            "SELECT vid, sum(index) as total FROM {} "
            "WHERE city LIKE 'Paris' GROUP BY vid ORDER BY vid"
        )
        direct = rig.session.sql(sql.format("direct")).collect()
        hadoop = rig.session.sql(sql.format("hadoop")).collect()
        assert direct == hadoop

    def test_pushdown_actually_used(self, rig):
        relation = StorletCsvRelation(
            rig.spark_context,
            rig.connector,
            "meters",
            METER_SCHEMA,
            parallelism=4,
        )
        rig.session.register_table("direct", relation)
        rig.connector.metrics.reset()
        rig.session.sql(
            "SELECT vid FROM direct WHERE city = 'Paris'"
        ).collect()
        metrics = rig.connector.metrics
        assert metrics.pushdown_requests == metrics.requests > 0
        assert metrics.bytes_transferred < metrics.bytes_requested

    def test_full_scan_through_storlet(self, rig):
        relation = StorletCsvRelation(
            rig.spark_context,
            rig.connector,
            "meters",
            METER_SCHEMA,
            parallelism=4,
        )
        rig.session.register_table("direct", relation)
        count = rig.session.sql("SELECT count(*) FROM direct").collect()
        assert count == [(2400,)]
