"""GROUP-BY pushdown through the scheduler: edges and differentials.

Every test here is differential against the compute-side oracle (the
executor's ordinary hash aggregation over scan rows): NULL group keys,
empty inputs, single-group and bounded-cardinality spill, forced
runtime degradation, named fault plans across execution modes, and a
Hypothesis property that merging tagged partials over *random*
row/partition splits reproduces the oracle exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.connector.stocator import PushdownError
from repro.core import ScoopContext
from repro.core.agg_pushdown import (
    merge_tagged_records,
    plan_aggregation_pushdown,
)
from repro.faults import NAMED_PLANS, named_plan
from repro.sql.parser import parse_query
from repro.sql.types import Schema
from repro.storlets.agg_storlet import tagged_partial_aggregate

SCHEMA = Schema.of("vid", "date", "index:int", "city")

#: ``city`` is empty every 11th row -- a NULL STRING group key --
#: and ``index`` is empty every 13th row -- NULL aggregate input.
CSV = "\n".join(
    "v{},2017-04-{:02d},{},{}".format(
        i % 7,
        (i % 28) + 1,
        "" if i % 13 == 0 else i % 5,
        "" if i % 11 == 0 else f"city{i % 3}",
    )
    for i in range(400)
) + "\n"


def build_context(agg_pushdown, data=CSV, parts=3, **context_kwargs):
    ctx = ScoopContext(chunk_size=4096, **context_kwargs)
    step = max(1, len(data) // parts)
    cuts = [data[i : i + step] for i in range(0, len(data), step)]
    for number, body in enumerate(part for part in cuts if part):
        ctx.upload_csv("meters", f"part-{number:02d}.csv", body)
    ctx.upload_csv("meters", "empty.csv", "")
    # Pinned to the CSV row path: GROUP-BY aggregation pushdown is a
    # CSV-relation feature (the columnar path has its own kernels), so
    # a REPRO_FORMAT=columnar CI run must not flip these tables.
    ctx.register_csv_table(
        "m", "meters", schema=SCHEMA, format="csv", agg_pushdown=agg_pushdown
    )
    return ctx


def assert_identical(left, right):
    """Same rows, same order, same Python types (int stays int)."""
    assert left == right
    for row_left, row_right in zip(left, right):
        for a, b in zip(row_left, row_right):
            assert type(a) is type(b), (a, b)


QUERIES = [
    "SELECT vid, COUNT(*), SUM(index), AVG(index) FROM m "
    "GROUP BY vid ORDER BY vid",
    "SELECT city, COUNT(*), MIN(index), MAX(index) FROM m GROUP BY city",
    "SELECT city, COUNT(index) FROM m GROUP BY city ORDER BY city DESC",
    "SELECT COUNT(*), SUM(index), AVG(index) FROM m",
    "SELECT vid, SUM(index) FROM m WHERE index > 2 GROUP BY vid ORDER BY vid",
    "SELECT vid, COUNT(*) FROM m GROUP BY vid ORDER BY vid DESC LIMIT 3",
]


class TestGroupByPushdownDifferential:
    def setup_method(self):
        self.oracle = build_context(False)
        self.push = build_context(True)

    def test_queries_byte_identical_and_cheaper(self):
        for sql in QUERIES:
            frame_oracle, _ = self.oracle.run_query(sql)
            frame_push, report = self.push.run_query(sql)
            assert_identical(frame_push.collect(), frame_oracle.collect())
            assert frame_push.schema == frame_oracle.schema
            assert report.pushdown_requests > 0

    def test_null_group_keys_survive_the_wire(self):
        sql = "SELECT city, COUNT(*) FROM m GROUP BY city"
        rows = self.push.run_query(sql)[0].collect()
        assert_identical(rows, self.oracle.run_query(sql)[0].collect())
        # The NULL city group really exists and is a Python None, not
        # the empty string the CSV codec would have collapsed it into.
        keys = [row[0] for row in rows]
        assert None in keys
        assert "" not in keys

    def test_empty_match_group_by_returns_no_rows(self):
        sql = "SELECT vid, COUNT(*) FROM m WHERE index > 999 GROUP BY vid"
        assert self.push.run_query(sql)[0].collect() == []

    def test_empty_match_global_aggregate_default_row(self):
        sql = "SELECT COUNT(*), SUM(index) FROM m WHERE index > 999"
        rows = self.push.run_query(sql)[0].collect()
        assert_identical(rows, self.oracle.run_query(sql)[0].collect())
        assert rows == [(0, None)]

    def test_single_group(self):
        sql = (
            "SELECT vid, COUNT(*) FROM m WHERE vid = 'v3' GROUP BY vid"
        )
        rows = self.push.run_query(sql)[0].collect()
        assert_identical(rows, self.oracle.run_query(sql)[0].collect())
        assert len(rows) == 1

    def test_float_sum_stays_compute_side_but_correct(self):
        # Float addition is not associative: merging per-partition
        # partial sums would group the additions differently from the
        # sequential oracle and drift in the last ulp, so SUM/AVG over
        # FLOAT inputs must not plan (COUNT/MIN/MAX still may).
        float_schema = Schema.of("vid", "date", "index:float", "city")
        refused = "SELECT vid, SUM(index), AVG(index) FROM m GROUP BY vid"
        assert plan_aggregation_pushdown(
            parse_query(refused), float_schema, exact_types=True
        ) is None
        allowed = "SELECT vid, COUNT(index), MIN(index) FROM m GROUP BY vid"
        assert plan_aggregation_pushdown(
            parse_query(allowed), float_schema, exact_types=True
        ) is not None
        # End to end the refused query still answers identically over a
        # genuinely-float column (ordinary filter pushdown takes over,
        # so both sides sum sequentially).
        sql = "SELECT vid, SUM(index) FROM m GROUP BY vid ORDER BY vid"
        results = {}
        for agg_pushdown in (True, False):
            ctx = build_context(agg_pushdown)
            ctx.register_csv_table(
                "f", "meters", schema=float_schema, format="csv",
                agg_pushdown=agg_pushdown,
            )
            frame, report = ctx.run_query(sql.replace("m", "f"))
            results[agg_pushdown] = frame.collect()
            assert report.pushdown_requests > 0
        assert_identical(results[True], results[False])
        assert isinstance(results[True][0][1], float)

    def test_having_stays_compute_side_but_correct(self):
        sql = (
            "SELECT vid, COUNT(*) FROM m GROUP BY vid "
            "HAVING COUNT(*) > 50 ORDER BY vid"
        )
        plan = plan_aggregation_pushdown(parse_query(sql), SCHEMA)
        assert plan is None
        assert_identical(
            self.push.run_query(sql)[0].collect(),
            self.oracle.run_query(sql)[0].collect(),
        )


class TestCardinalityOverflow:
    def _spilling_context(self, max_groups):
        ctx = build_context(True)
        relation = ctx.session.relation("m")
        builder = relation.build_aggregation_scan
        relation.build_aggregation_scan = (
            lambda plan, _b=builder: _b(plan, max_groups=max_groups)
        )
        return ctx

    @pytest.mark.parametrize("max_groups", [1, 2, 4])
    def test_spill_to_compute_is_identical(self, max_groups):
        oracle = build_context(False)
        ctx = self._spilling_context(max_groups)
        sql = (
            "SELECT vid, COUNT(*), SUM(index), AVG(index) FROM m "
            "GROUP BY vid ORDER BY vid"
        )
        frame, report = ctx.run_query(sql)
        assert_identical(frame.collect(), oracle.run_query(sql)[0].collect())
        assert report.pushdown_requests > 0

    def test_unsorted_group_order_matches_oracle_under_spill(self):
        # No ORDER BY: output order is the oracle's global first-seen
        # order, which spilled rows must not disturb.
        oracle = build_context(False)
        ctx = self._spilling_context(1)
        sql = "SELECT city, COUNT(*) FROM m GROUP BY city"
        assert_identical(
            ctx.run_query(sql)[0].collect(),
            oracle.run_query(sql)[0].collect(),
        )


class TestDegradation:
    SQL = (
        "SELECT vid, COUNT(*), SUM(index) FROM m GROUP BY vid ORDER BY vid"
    )

    # These tests monkeypatch the *sync* split-stream entry point, so
    # the context pins threaded execution (a REPRO_ASYNC=1 CI run would
    # otherwise route around the injected failure).

    def test_failure_at_open_degrades_identically(self):
        oracle = build_context(False).run_query(self.SQL)[0].collect()
        ctx = build_context(True, async_mode=False)
        original = ctx.connector.open_split_stream

        def failing(split, task=None):
            if task is not None:
                raise PushdownError(
                    "boom", degradable=True, reason="test-open"
                )
            return original(split, task)

        ctx.connector.open_split_stream = failing
        frame, report = ctx.run_query(self.SQL)
        assert_identical(frame.collect(), oracle)
        assert report.pushdown_fallbacks > 0

    def test_mid_stream_failure_resumes_identically(self):
        oracle = build_context(False).run_query(self.SQL)[0].collect()
        ctx = build_context(True, async_mode=False)
        original = ctx.connector.open_split_stream

        def midstream(split, task=None):
            headers, chunks = original(split, task)
            if task is None or split.index != 0:
                return headers, chunks

            def broken():
                for count, chunk in enumerate(chunks):
                    if count >= 1:
                        raise PushdownError(
                            "mid", degradable=True, reason="test-mid"
                        )
                    yield chunk

            return headers, broken()

        ctx.connector.open_split_stream = midstream
        frame, report = ctx.run_query(self.SQL)
        assert_identical(frame.collect(), oracle)
        assert report.pushdown_fallbacks == 1

    def test_non_degradable_error_propagates(self):
        ctx = build_context(True, async_mode=False)

        def fatal(split, task=None):
            raise PushdownError("gone", degradable=False, reason="fatal")

        ctx.connector.open_split_stream = fatal
        with pytest.raises(PushdownError):
            ctx.sql(self.SQL).collect()


class TestFaultPlans:
    SQL = (
        "SELECT vid, COUNT(*), SUM(index), AVG(index) FROM m "
        "GROUP BY vid ORDER BY vid"
    )

    @pytest.fixture(scope="class")
    def oracle_rows(self):
        return build_context(False).run_query(self.SQL)[0].collect()

    @pytest.mark.parametrize("plan_name", NAMED_PLANS)
    def test_identical_under_plan_threads(self, plan_name, oracle_rows):
        plan = (
            named_plan(plan_name, seed=7) if plan_name != "none" else None
        )
        ctx = build_context(True, fault_plan=plan, parallelism=16)
        assert_identical(
            ctx.run_query(self.SQL)[0].collect(), oracle_rows
        )

    @pytest.mark.parametrize("plan_name", ["none", "storlet-crash"])
    def test_identical_under_plan_async(self, plan_name, oracle_rows):
        plan = (
            named_plan(plan_name, seed=7) if plan_name != "none" else None
        )
        ctx = build_context(
            True, fault_plan=plan, parallelism=16, async_mode=True
        )
        assert_identical(
            ctx.run_query(self.SQL)[0].collect(), oracle_rows
        )


# --------------------------------------------------------------------------
# Merge associativity: random rows, random partitioning, random spill
# --------------------------------------------------------------------------

MERGE_SCHEMA = Schema.of("k:int", "v:int")
MERGE_SQL = (
    "SELECT k, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY k"
)
MERGE_PLAN = plan_aggregation_pushdown(
    parse_query(MERGE_SQL), MERGE_SCHEMA, exact_types=True
)

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    ),
    max_size=80,
)


def reference_aggregate(rows):
    """Independent oracle: accumulator semantics in first-seen order."""
    groups = {}
    order = []
    for key, value in rows:
        if key not in groups:
            groups[key] = {"count": 0, "sum": None, "total": 0.0,
                           "n": 0, "min": None, "max": None}
            order.append(key)
        state = groups[key]
        state["count"] += 1
        if value is not None:
            state["sum"] = (
                value if state["sum"] is None else state["sum"] + value
            )
            state["total"] += value
            state["n"] += 1
            state["min"] = (
                value if state["min"] is None else min(state["min"], value)
            )
            state["max"] = (
                value if state["max"] is None else max(state["max"], value)
            )
    result = []
    for key in order:
        state = groups[key]
        avg = state["total"] / state["n"] if state["n"] else None
        result.append(
            (key, state["count"], state["sum"], avg,
             state["min"], state["max"])
        )
    return result


@given(
    rows=rows_strategy,
    cut_seed=st.integers(min_value=0, max_value=2**30),
    partitions=st.integers(min_value=1, max_value=5),
    max_groups=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=120, deadline=None)
def test_merge_equals_oracle_under_random_splits(
    rows, cut_seed, partitions, max_groups
):
    """Partial aggregation per partition + merge == sequential oracle,
    for every row multiset, partitioning, and spill threshold."""
    import random

    rng = random.Random(cut_seed)
    assignment = [rng.randrange(partitions) for _ in rows]
    parts = [
        [row for row, where in zip(rows, assignment) if where == split]
        for split in range(partitions)
    ]
    records = []
    for split, part in enumerate(parts):
        for record in tagged_partial_aggregate(
            part, MERGE_PLAN.spec, MERGE_SCHEMA, max_groups=max_groups
        ):
            records.append((record[0], split, *record[1:]))
    _schema, merged = merge_tagged_records(MERGE_PLAN, records, MERGE_SCHEMA)
    # The oracle sees partitions in partition order (the scheduler's
    # determinism contract), so first-seen order is over the
    # partition-concatenated stream.
    expected = reference_aggregate(
        [row for part in parts for row in part]
    )
    assert merged == expected
    for row_merged, row_expected in zip(merged, expected):
        for a, b in zip(row_merged, row_expected):
            assert type(a) is type(b), (a, b)
