"""Integration tests for the object store: proxy + backend + client."""

import pytest

from repro.swift import (
    NotFound,
    RangeNotSatisfiable,
    SwiftClient,
    SwiftCluster,
    SwiftError,
)
from repro.swift.http import Request
from repro.swift.middleware import RequestLogger


class TestObjectLifecycle:
    def test_put_get_roundtrip(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"hello world")
        _headers, body = client.get_object("c", "o")
        assert body == b"hello world"

    def test_etag_is_md5(self, client):
        import hashlib

        client.put_container("c")
        etag = client.put_object("c", "o", b"payload")
        assert etag == hashlib.md5(b"payload").hexdigest()

    def test_overwrite_replaces_content(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"v1")
        client.put_object("c", "o", b"v2")
        _headers, body = client.get_object("c", "o")
        assert body == b"v2"

    def test_delete_removes_object(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"x")
        client.delete_object("c", "o")
        with pytest.raises(SwiftError):
            client.get_object("c", "o")

    def test_get_missing_object_404(self, client):
        client.put_container("c")
        with pytest.raises(SwiftError) as excinfo:
            client.get_object("c", "missing")
        assert excinfo.value.status == 404

    def test_put_into_missing_container_404(self, client):
        with pytest.raises(SwiftError) as excinfo:
            client.put_object("nope", "o", b"x")
        assert excinfo.value.status == 404

    def test_head_reports_size_and_etag(self, client):
        client.put_container("c")
        etag = client.put_object("c", "o", b"12345")
        headers = client.head_object("c", "o")
        assert headers["content-length"] == "5"
        assert headers["etag"] == etag

    def test_user_metadata_roundtrip(self, client):
        client.put_container("c")
        client.put_object(
            "c", "o", b"x", headers={"x-object-meta-color": "blue"}
        )
        headers = client.head_object("c", "o")
        assert headers["x-object-meta-color"] == "blue"

    def test_post_updates_metadata(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"x")
        client.post_object("c", "o", {"owner": "alice"})
        headers = client.head_object("c", "o")
        assert headers["x-object-meta-owner"] == "alice"


class TestRangeReads:
    def test_middle_range(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"0123456789")
        headers, body = client.get_object("c", "o", byte_range=(3, 6))
        assert body == b"3456"
        assert headers["content-range"] == "bytes 3-6/10"

    def test_range_past_end_clamped(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"0123456789")
        _headers, body = client.get_object("c", "o", byte_range=(8, 100))
        assert body == b"89"

    def test_range_beyond_object_416(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"0123456789")
        with pytest.raises(RangeNotSatisfiable) as excinfo:
            client.get_object("c", "o", byte_range=(50, 60))
        assert excinfo.value.status == 416
        # RFC 7233 section 4.4: the 416 names the current object length
        # so the client can construct a valid range.
        assert excinfo.value.headers["content-range"] == "bytes */10"

    def test_range_end_before_start_serves_full_object(self, client):
        # RFC 7233 2.1: end < start is a syntactically invalid
        # byte-range-spec; the header is ignored, not answered with 416.
        client.put_container("c")
        client.put_object("c", "o", b"0123456789")
        headers, body = client.get_object("c", "o", byte_range=(6, 3))
        assert body == b"0123456789"
        assert "content-range" not in headers

    def test_any_range_on_zero_byte_object_416(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"")
        with pytest.raises(RangeNotSatisfiable) as excinfo:
            client.get_object("c", "o", byte_range=(0, 0))
        assert excinfo.value.status == 416
        assert excinfo.value.headers["content-range"] == "bytes */0"

    def test_suffix_zero_range_416(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"0123456789")
        with pytest.raises(RangeNotSatisfiable) as excinfo:
            client.get_object("c", "o", headers={"range": "bytes=-0"})
        assert excinfo.value.status == 416
        assert excinfo.value.headers["content-range"] == "bytes */10"


class TestReplication:
    def test_object_stored_on_replica_count_devices(self, swift, client):
        client.put_container("c")
        client.put_object("c", "o", b"replicated")
        assert swift.total_object_count() == swift.object_ring.replica_count

    def test_survives_loss_of_primary_replica(self, swift, client):
        client.put_container("c")
        client.put_object("c", "o", b"durable")
        _part, devices = swift.object_ring.get_nodes("AUTH_test", "c", "o")
        primary = devices[0]
        # Simulate primary disk loss.
        swift.object_servers[primary.node].devices[primary.id].clear()
        _headers, body = client.get_object("c", "o")
        assert body == b"durable"

    def test_replica_pinning_header(self, swift, client):
        client.put_container("c")
        client.put_object("c", "o", b"pin me")
        _headers, body = client.get_object(
            "c", "o", headers={"x-backend-replica-index": "1"}
        )
        assert body == b"pin me"

    def test_delete_removes_all_replicas(self, swift, client):
        client.put_container("c")
        client.put_object("c", "o", b"x")
        client.delete_object("c", "o")
        assert swift.total_object_count() == 0


class TestContainers:
    def test_listing_sorted_with_prefix_and_limit(self, client):
        client.put_container("c")
        for name in ("b/2", "a/1", "b/1", "zz"):
            client.put_object("c", name, b"x")
        assert client.list_objects("c") == ["a/1", "b/1", "b/2", "zz"]
        assert client.list_objects("c", prefix="b/") == ["b/1", "b/2"]
        assert client.list_objects("c", limit=2) == ["a/1", "b/1"]
        assert client.list_objects("c", marker="b/1") == ["b/2", "zz"]

    def test_delete_nonempty_container_conflicts(self, client):
        client.put_container("c")
        client.put_object("c", "o", b"x")
        with pytest.raises(SwiftError) as excinfo:
            client.delete_container("c")
        assert excinfo.value.status == 409

    def test_delete_empty_container(self, client):
        client.put_container("c")
        client.delete_container("c")
        with pytest.raises(SwiftError):
            client.list_objects("c")

    def test_container_head_counts_objects(self, client):
        client.put_container("c")
        client.put_object("c", "a", b"x")
        client.put_object("c", "b", b"x")
        headers = client.head_container("c")
        assert headers["x-container-object-count"] == "2"

    def test_account_lists_containers(self, client):
        client.put_container("c2")
        client.put_container("c1")
        assert client.list_containers() == ["c1", "c2"]


class TestAuth:
    def test_bad_token_rejected_when_auth_enabled(self):
        cluster = SwiftCluster(
            storage_node_count=2, disks_per_node=1, auth_enabled=True
        )
        request = Request(
            "PUT", "/AUTH_x", headers={"x-auth-token": "wrong"}
        )
        response = cluster.handle_request(request)
        assert response.status == 401

    def test_good_token_accepted(self):
        cluster = SwiftCluster(
            storage_node_count=2, disks_per_node=1, auth_enabled=True
        )
        client = SwiftClient(cluster, "AUTH_x")  # sets token-AUTH_x
        client.put_container("c")
        client.put_object("c", "o", b"data")
        _headers, body = client.get_object("c", "o")
        assert body == b"data"


class TestMiddleware:
    def test_request_logger_observes_traffic(self):
        log = []
        cluster = SwiftCluster(
            storage_node_count=2,
            disks_per_node=1,
            proxy_middleware=[RequestLogger.factory(log)],
        )
        client = SwiftClient(cluster)
        client.put_container("c")
        client.put_object("c", "o", b"x")
        methods = [entry[0] for entry in log]
        assert "PUT" in methods

    def test_install_object_middleware_after_construction(self, swift, client):
        log = []
        swift.install_object_middleware(RequestLogger.factory(log))
        client.put_container("c")
        client.put_object("c", "o", b"x")
        client.get_object("c", "o")
        assert any(entry[0] == "GET" for entry in log)
        # PUT fans out to every replica through the object pipeline.
        put_count = sum(1 for entry in log if entry[0] == "PUT")
        assert put_count == swift.object_ring.replica_count


class TestProxyDispatch:
    def test_round_robin_across_proxies(self, swift, client):
        client.put_container("c")
        client.put_object("c", "o", b"x")
        seen = set()
        for _ in range(len(swift.proxies) * 2):
            response = client.get_object_stream("c", "o")
            response.read()
            seen.add(response.headers.get("x-storlet-invoked", ""))
        # No storlets installed: just confirm requests succeeded via
        # multiple proxies (environ is internal; we assert via balance).
        assert len(swift.proxies) >= 2
