"""Tests for RDDs and the DAG scheduler."""

import pytest

from repro.spark import SparkContext
from repro.spark.rdd import ShuffleDependency


@pytest.fixture
def sc():
    return SparkContext("test", num_workers=3)


class TestTransformations:
    def test_map_collect(self, sc):
        rdd = sc.parallelize(list(range(10)), 4).map(lambda x: x * 2)
        assert rdd.collect() == [x * 2 for x in range(10)]

    def test_filter(self, sc):
        rdd = sc.parallelize(list(range(10)), 3).filter(lambda x: x % 2 == 0)
        assert rdd.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, sc):
        rdd = sc.parallelize(["a b", "c"], 2).flat_map(str.split)
        assert rdd.collect() == ["a", "b", "c"]

    def test_map_partitions(self, sc):
        rdd = sc.parallelize(list(range(10)), 5).map_partitions(
            lambda it: [sum(it)]
        )
        assert sum(rdd.collect()) == 45
        assert rdd.num_partitions() == 5

    def test_union(self, sc):
        left = sc.parallelize([1, 2], 2)
        right = sc.parallelize([3, 4], 2)
        union = left.union(right)
        assert union.num_partitions() == 4
        assert union.collect() == [1, 2, 3, 4]

    def test_chained_laziness(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3], 1).map(spy)
        assert calls == []  # nothing computed yet
        rdd.collect()
        assert calls == [1, 2, 3]

    def test_key_by(self, sc):
        rdd = sc.parallelize(["aa", "b"], 1).key_by(len)
        assert rdd.collect() == [(2, "aa"), (1, "b")]


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(list(range(17)), 4).count() == 17

    def test_reduce(self, sc):
        assert sc.parallelize(list(range(1, 6)), 3).reduce(
            lambda a, b: a * b
        ) == 120

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_take_stops_early(self, sc):
        computed = []

        def spy(x):
            computed.append(x)
            return x

        rdd = sc.parallelize(list(range(100)), 10).map(spy)
        assert rdd.take(5) == [0, 1, 2, 3, 4]
        # Only the first partition (10 items) should have been computed.
        assert len(computed) == 10

    def test_first(self, sc):
        assert sc.parallelize([9, 8], 2).first() == 9

    def test_first_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 2).first()


class TestCaching:
    def test_cache_avoids_recompute(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3], 1).map(spy).cache()
        rdd.collect()
        rdd.collect()
        assert calls == [1, 2, 3]  # computed once

    def test_uncached_recomputes(self, sc):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2], 1).map(spy)
        rdd.collect()
        rdd.collect()
        assert calls == [1, 2, 1, 2]


class TestShuffle:
    def test_reduce_by_key(self, sc):
        data = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        rdd = sc.parallelize(data, 3).reduce_by_key(lambda a, b: a + b)
        assert dict(rdd.collect()) == {"a": 4, "b": 7, "c": 4}

    def test_group_by_key(self, sc):
        data = [("a", 1), ("a", 2), ("b", 3)]
        rdd = sc.parallelize(data, 2).group_by_key()
        grouped = dict(rdd.collect())
        assert sorted(grouped["a"]) == [1, 2]
        assert grouped["b"] == [3]

    def test_shuffle_creates_extra_stage(self, sc):
        data = [("a", 1), ("b", 2)]
        sc.parallelize(data, 2).reduce_by_key(lambda a, b: a + b).collect()
        shuffle_stages = [s for s in sc.stage_log if s.shuffle_id is not None]
        result_stages = [s for s in sc.stage_log if s.shuffle_id is None]
        assert len(shuffle_stages) == 1
        assert len(result_stages) == 1

    def test_shuffle_materialized_once(self, sc):
        data = [("a", 1), ("a", 2)]
        rdd = sc.parallelize(data, 2).reduce_by_key(lambda a, b: a + b)
        rdd.collect()
        rdd.collect()
        shuffle_stages = [s for s in sc.stage_log if s.shuffle_id is not None]
        assert len(shuffle_stages) == 1

    def test_shuffle_respects_partition_count(self, sc):
        data = [(i, i) for i in range(20)]
        rdd = sc.parallelize(data, 4).reduce_by_key(
            lambda a, b: a + b, num_partitions=7
        )
        assert rdd.num_partitions() == 7
        assert len(rdd.collect()) == 20

    def test_shuffle_then_map(self, sc):
        data = [("a", 1), ("a", 2), ("b", 1)]
        rdd = (
            sc.parallelize(data, 2)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[0], kv[1] * 10))
        )
        assert dict(rdd.collect()) == {"a": 30, "b": 10}


class TestSchedulerMetrics:
    def test_tasks_round_robin_over_workers(self, sc):
        sc.parallelize(list(range(9)), 9).collect()
        counts = sc.tasks_per_worker()
        assert sum(counts.values()) == 9
        assert all(count == 3 for count in counts.values())

    def test_task_log_records_rows(self, sc):
        sc.parallelize(list(range(10)), 2).collect()
        assert [m.rows for m in sc.task_log] == [5, 5]

    def test_reset_metrics(self, sc):
        sc.parallelize([1], 1).collect()
        sc.reset_metrics()
        assert not sc.task_log
        assert not sc.stage_log


class TestLineage:
    def test_lineage_renders_ancestry(self, sc):
        rdd = (
            sc.parallelize([1, 2], 2)
            .map(lambda x: x)
            .filter(lambda x: True)
        )
        lines = rdd.lineage()
        assert "Filtered" in lines[0]
        assert any("Mapped" in line for line in lines)
        assert any("ParallelCollection" in line for line in lines)

    def test_shuffle_dependency_marked(self, sc):
        rdd = sc.parallelize([("a", 1)], 1).reduce_by_key(lambda a, b: a)
        assert isinstance(rdd.dependencies[0], ShuffleDependency)
        assert any("shuffle" in line for line in rdd.lineage())
