"""Tests for the optimizer: folding, LIKE decomposition, pushdown
extraction (the Catalyst role)."""

import pytest

from repro.sql import filters as f
from repro.sql.catalyst import (
    AggregateNode,
    FilterNode,
    Optimizer,
    ProjectNode,
    ScanNode,
    SortNode,
    build_logical_plan,
    conjoin,
    decompose_like,
    expression_to_filter,
    extract_pushdown,
    fold_constants,
    required_columns,
    split_conjuncts,
)
from repro.sql.errors import SqlAnalysisError
from repro.sql.expressions import BinaryOp, Column, Literal
from repro.sql.parser import parse_expression, parse_query
from repro.sql.types import Schema

SCHEMA = Schema.of(
    "vid", "date", "index:float", "sumHC:float", "sumHP:float",
    "code:int", "city", "state", "lat:float", "long:float",
)


class TestConstantFolding:
    def test_literal_arithmetic_folds(self):
        assert fold_constants(parse_expression("1 + 2 * 3")) == Literal(7)

    def test_boolean_identity_simplifies(self):
        expr = parse_expression("city = 'x' AND TRUE")
        assert fold_constants(expr) == parse_expression("city = 'x'")

    def test_or_false_simplifies(self):
        expr = parse_expression("city = 'x' OR FALSE")
        assert fold_constants(expr) == parse_expression("city = 'x'")

    def test_and_false_becomes_false(self):
        assert fold_constants(
            parse_expression("city = 'x' AND FALSE")
        ) == Literal(False)

    def test_double_negation_removed(self):
        expr = fold_constants(parse_expression("NOT NOT city = 'x'"))
        assert expr == parse_expression("city = 'x'")

    def test_constant_function_folds(self):
        assert fold_constants(
            parse_expression("SUBSTRING('2015-01-02', 0, 7)")
        ) == Literal("2015-01")

    def test_columns_not_folded(self):
        expr = parse_expression("code + 1")
        assert fold_constants(expr) == expr


class TestConjuncts:
    def test_split_nested_ands(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        parts = split_conjuncts(expr)
        assert len(parts) == 3

    def test_or_not_split(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert split_conjuncts(expr) == [expr]

    def test_conjoin_inverse_of_split(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert conjoin(split_conjuncts(expr)) == expr

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None


class TestLikeDecomposition:
    def test_exact(self):
        assert decompose_like("c", "Rotterdam") == f.EqualTo("c", "Rotterdam")

    def test_prefix(self):
        assert decompose_like("d", "2015-01%") == f.StringStartsWith(
            "d", "2015-01"
        )

    def test_suffix(self):
        assert decompose_like("d", "%-31") == f.StringEndsWith("d", "-31")

    def test_contains(self):
        assert decompose_like("d", "%mid%") == f.StringContains("d", "mid")

    def test_general_pattern_preserved(self):
        assert decompose_like("d", "a%b") == f.LikePattern("d", "a%b")
        assert decompose_like("d", "a_c") == f.LikePattern("d", "a_c")


class TestExpressionToFilter:
    def test_column_compare_literal(self):
        assert expression_to_filter(
            parse_expression("code > 5")
        ) == f.GreaterThan("code", 5)

    def test_literal_compare_column_flipped(self):
        assert expression_to_filter(
            parse_expression("5 > code")
        ) == f.LessThan("code", 5)

    def test_not_equal(self):
        assert expression_to_filter(
            parse_expression("city <> 'x'")
        ) == f.Not(f.EqualTo("city", "x"))

    def test_in_of_literals(self):
        assert expression_to_filter(
            parse_expression("city IN ('a', 'b')")
        ) == f.In("city", ["a", "b"])

    def test_between(self):
        converted = expression_to_filter(
            parse_expression("code BETWEEN 1 AND 9")
        )
        assert converted == f.And(
            f.GreaterThanOrEqual("code", 1), f.LessThanOrEqual("code", 9)
        )

    def test_is_not_null(self):
        assert expression_to_filter(
            parse_expression("city IS NOT NULL")
        ) == f.IsNotNull("city")

    def test_or_of_convertibles(self):
        converted = expression_to_filter(
            parse_expression("code = 1 OR code = 2")
        )
        assert converted == f.Or(f.EqualTo("code", 1), f.EqualTo("code", 2))

    def test_function_call_not_convertible(self):
        assert (
            expression_to_filter(
                parse_expression("SUBSTRING(date, 0, 7) = '2015-01'")
            )
            is None
        )

    def test_column_to_column_not_convertible(self):
        assert expression_to_filter(parse_expression("a = b")) is None

    def test_arithmetic_operand_not_convertible(self):
        assert expression_to_filter(parse_expression("code + 1 = 2")) is None


class TestPushdownExtraction:
    def test_columns_and_filters_for_gridpocket_query(self):
        query = parse_query(
            "SELECT vid, sum(index) as max FROM t "
            "WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%' "
            "GROUP BY SUBSTRING(date, 0, 10), vid "
            "ORDER BY SUBSTRING(date, 0, 10), vid"
        )
        spec = extract_pushdown(query, SCHEMA)
        assert spec.required_columns == ["vid", "date", "index", "city"]
        assert f.EqualTo("city", "Rotterdam") in spec.filters
        assert f.StringStartsWith("date", "2015-01-") in spec.filters
        assert spec.residual is None

    def test_unconvertible_conjunct_becomes_residual(self):
        query = parse_query(
            "SELECT vid FROM t WHERE code > 5 AND SUBSTRING(date, 0, 4) = '2015'"
        )
        spec = extract_pushdown(query, SCHEMA)
        assert spec.filters == [f.GreaterThan("code", 5)]
        assert spec.residual is not None
        assert "SUBSTRING" in spec.residual.to_sql()

    def test_star_requires_all_columns(self):
        query = parse_query("SELECT * FROM t")
        spec = extract_pushdown(query, SCHEMA)
        assert spec.required_columns == SCHEMA.names

    def test_no_where_no_filters(self):
        query = parse_query("SELECT vid FROM t")
        spec = extract_pushdown(query, SCHEMA)
        assert spec.filters == []
        assert spec.required_columns == ["vid"]

    def test_required_columns_in_schema_order(self):
        query = parse_query("SELECT long, city, vid FROM t")
        assert required_columns(query, SCHEMA) == ["vid", "city", "long"]

    def test_order_by_contributes_columns(self):
        query = parse_query("SELECT vid FROM t ORDER BY lat")
        assert "lat" in required_columns(query, SCHEMA)

    def test_describe_is_readable(self):
        query = parse_query("SELECT vid FROM t WHERE code = 1")
        spec = extract_pushdown(query, SCHEMA)
        text = spec.describe()
        assert "vid" in text and "code" in text


class TestPlanBuilding:
    def test_plain_select_plan_shape(self):
        query = parse_query("SELECT vid FROM t WHERE code = 1 LIMIT 5")
        plan = build_logical_plan(query, SCHEMA)
        # Limit > Project > Filter > Scan
        names = []
        node = plan
        while node is not None:
            names.append(type(node).__name__)
            node = node.child
        assert names == ["LimitNode", "ProjectNode", "FilterNode", "ScanNode"]

    def test_aggregate_plan_shape(self):
        query = parse_query(
            "SELECT vid, sum(index) FROM t GROUP BY vid ORDER BY vid"
        )
        plan = build_logical_plan(query, SCHEMA)
        assert isinstance(plan, SortNode)
        assert isinstance(plan.child, AggregateNode)

    def test_star_expansion(self):
        query = parse_query("SELECT * FROM t")
        plan = build_logical_plan(query, SCHEMA)
        assert isinstance(plan, ProjectNode)
        assert len(plan.items) == len(SCHEMA)

    def test_aggregate_in_where_rejected(self):
        query = parse_query("SELECT vid FROM t WHERE sum(index) > 5")
        with pytest.raises(SqlAnalysisError):
            build_logical_plan(query, SCHEMA)

    def test_optimizer_removes_true_filter(self):
        query = parse_query("SELECT vid FROM t WHERE 1 = 1")
        plan = Optimizer().optimize(build_logical_plan(query, SCHEMA))
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, ScanNode)

    def test_describe_renders_tree(self):
        query = parse_query("SELECT vid FROM t WHERE code = 1")
        text = build_logical_plan(query, SCHEMA).describe()
        assert "Scan" in text and "Filter" in text
