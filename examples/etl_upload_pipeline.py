#!/usr/bin/env python3
"""ETL on the upload path: active storage beyond query pushdown.

The paper (Section V-A): "ETL often requires data transformations.
Storlets permits this in the PUT data path.  We use Storlet for data
cleansing and for modifying the data format (e.g., split a column into
multiple ones).  These transformations simplify Spark workloads without
requiring painful rewrites of huge data sets."

This example uploads messy sensor dumps through two PUT-path storlets
enforced by container policies -- a column splitter that breaks a
combined timestamp into date and time, then a cleanser that drops
malformed records -- and queries the shaped result.

Run:  python examples/etl_upload_pipeline.py
"""

import json

from repro import ScoopContext, Schema
from repro.storlets import ColumnSplitStorlet
from repro.storlets.engine import StorletPolicy


RAW_DUMP = b"""M001,2015-01-01 00:10:00,12.5,Rotterdam
M002,2015-01-01 00:10:00,7.25,Paris
garbage line that is not a reading
M003,2015-01-01 00:10:00,not-a-number,Berlin
M001,2015-01-01 00:20:00,13.0,Rotterdam
M002 , 2015-01-01 00:20:00 , 7.5 , Paris
"""

RAW_SCHEMA = Schema.of("vid", "stamp", "index:float", "city")
SHAPED_SCHEMA = Schema.of("vid", "day", "time", "index:float", "city")


def main() -> None:
    ctx = ScoopContext(storage_node_count=3)
    ctx.client.put_container("readings")

    # Policy 1: cleanse against the raw schema -- drops the garbage line
    # and the record whose index does not parse, and trims whitespace.
    ctx.engine.set_policy(
        ctx.client.account,
        "readings",
        StorletPolicy(
            storlet="etl-cleanse",
            method="PUT",
            parameters={"schema": RAW_SCHEMA.to_header()},
        ),
    )
    # Policy 2: split the combined timestamp column into day + time.
    ctx.engine.set_policy(
        ctx.client.account,
        "readings",
        StorletPolicy(
            storlet=ColumnSplitStorlet.name,
            method="PUT",
            parameters={"column": "1", "parts": "2"},
        ),
    )

    print("uploading a messy dump through the ETL pipeline...")
    ctx.client.put_object("readings", "dump-001.csv", RAW_DUMP)
    _headers, shaped = ctx.client.get_object("readings", "dump-001.csv")
    print("stored object after PUT-path storlets:")
    print(shaped.decode())

    headers = ctx.client.head_object("readings", "dump-001.csv")
    print(
        "cleansing report from object metadata: kept="
        f"{headers.get('x-object-meta-etl-kept')} "
        f"dropped={headers.get('x-object-meta-etl-dropped')}"
    )

    # The shaped data is immediately queryable -- with pushdown on the
    # *new* columns the splitter created.
    ctx.register_csv_table("readings", "readings", schema=SHAPED_SCHEMA)
    frame, report = ctx.run_query(
        "SELECT vid, time, index FROM readings "
        "WHERE day LIKE '2015-01-01' AND city LIKE 'P%' ORDER BY time"
    )
    print("query over the shaped data (filtered at the store):")
    frame.show()
    print(f"data selectivity: {report.data_selectivity * 100:.1f}%")


if __name__ == "__main__":
    main()
