#!/usr/bin/env python3
"""Scoop pushdown vs Apache Parquet: the Fig. 8 comparison, live.

Stores the same GridPocket data twice -- as raw CSV (queried with
pushdown) and re-encoded into the columnar, zlib-compressed parquet-like
format (column-pruned at the compute side) -- then runs a projection
query through both and compares what actually crossed the
store-to-compute boundary.  Finishes with the Fig. 8 speedup curves from
the performance model.

Run:  python examples/pushdown_vs_parquet.py
"""

from repro import ScoopContext
from repro.experiments import fig8_parquet_comparison, render_table
from repro.experiments.figures import fig8_crossover
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset
from repro.spark.parquet_source import ParquetRelation, convert_csv_container


def main() -> None:
    ctx = ScoopContext(storage_node_count=4, chunk_size=256 * 1024)
    upload_dataset(
        ctx.client, "meters", DatasetSpec(meters=60, intervals=1000, objects=4)
    )
    csv_bytes = ctx.connector.dataset_size("meters")

    print("re-encoding the CSV container as parquet-like objects...")
    convert_csv_container(ctx.connector, "meters", "meters_pq", METER_SCHEMA)
    parquet_bytes = ctx.connector.dataset_size("meters_pq")
    print(
        f"CSV: {csv_bytes:,} B -> parquet: {parquet_bytes:,} B "
        f"(compression ratio {parquet_bytes / csv_bytes:.2f})"
    )

    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    ctx.session.register_table(
        "largeMeterPq",
        ParquetRelation(ctx.spark_context, ctx.connector, "meters_pq"),
    )

    # A column-selective query: 3 of 10 columns, no row filter.
    sql = "SELECT vid, date, index FROM {}"
    scoop_frame, scoop_report = ctx.run_query(sql.format("largeMeter"))
    parquet_frame, parquet_report = ctx.run_query(sql.format("largeMeterPq"))
    assert scoop_frame.collect() == parquet_frame.collect()

    render_table(
        "Bytes ingested for SELECT vid, date, index (live run)",
        ["path", "bytes over the wire", "note"],
        [
            [
                "Scoop pushdown",
                f"{scoop_report.bytes_transferred:,}",
                "storlet projects at the store",
            ],
            [
                "Parquet",
                f"{parquet_report.bytes_transferred:,}",
                "whole compressed object; pruned at compute",
            ],
            ["raw CSV size", f"{csv_bytes:,}", "what plain ingest would move"],
        ],
    )

    # The paper's Fig. 8 curves at 50 GB scale.
    points = fig8_parquet_comparison(
        selectivities=(0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9)
    )
    render_table(
        "Fig. 8 -- speedup vs plain Swift (column selectivity, 50GB model)",
        ["selectivity", "Scoop", "Parquet"],
        [
            [
                f"{p.selectivity * 100:.0f}%",
                round(p.scoop_speedup, 2),
                round(p.parquet_speedup, 2),
            ]
            for p in points
        ],
    )
    crossover = fig8_crossover(points)
    print(
        f"\nScoop overtakes Parquet at ~{crossover * 100:.0f}% column "
        "selectivity (paper: >= 60%)"
    )


if __name__ == "__main__":
    main()
