#!/usr/bin/env python3
"""Aggregation pushdown: whole GROUP BY queries computed at the store.

Section IV-A defines pushdown tasks broadly -- not just filters but
"a partial computation to be executed on object request (e.g.,
aggregations, statistics)".  This example runs the same dashboard query
three ways and compares what crossed the store-to-compute boundary:

1. plain ingest-then-compute (every byte travels),
2. filter pushdown (matching rows travel),
3. aggregation pushdown (only per-range partial group states travel).

Run:  python examples/aggregation_pushdown.py
"""

from repro import ScoopContext
from repro.experiments import render_table
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset

SQL = (
    "SELECT vid, sum(index) as total, count(*) as readings, "
    "first_value(city) as city "
    "FROM {} WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid"
)


def main() -> None:
    ctx = ScoopContext(storage_node_count=4, chunk_size=256 * 1024)
    upload_dataset(
        ctx.client, "meters", DatasetSpec(meters=50, intervals=1500, objects=4)
    )
    dataset_bytes = ctx.connector.dataset_size("meters")
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    ctx.register_csv_table(
        "largeMeterPlain", "meters", schema=METER_SCHEMA, pushdown=False
    )

    _frame, plain = ctx.run_query(SQL.format("largeMeterPlain"))
    filter_frame, filtered = ctx.run_query(SQL.format("largeMeter"))
    (agg_schema, agg_rows), aggregated = ctx.run_aggregation_query(
        SQL.format("largeMeter"), "meters", METER_SCHEMA
    )

    # All three agree.
    reference = filter_frame.collect()
    assert len(agg_rows) == len(reference)
    for got, want in zip(agg_rows, reference):
        assert got[0] == want[0] and abs(got[1] - want[1]) < 1e-6

    render_table(
        f"Same query, three ingestion strategies ({dataset_bytes:,} B dataset)",
        ["strategy", "bytes over the wire", "% of dataset"],
        [
            [
                "ingest-then-compute",
                f"{plain.bytes_transferred:,}",
                f"{plain.bytes_transferred / dataset_bytes * 100:.2f}%",
            ],
            [
                "filter pushdown",
                f"{filtered.bytes_transferred:,}",
                f"{filtered.bytes_transferred / dataset_bytes * 100:.2f}%",
            ],
            [
                "aggregation pushdown",
                f"{aggregated.bytes_transferred:,}",
                f"{aggregated.bytes_transferred / dataset_bytes * 100:.2f}%",
            ],
        ],
    )
    print("\nfirst result rows (identical across all three):")
    for row in agg_rows[:4]:
        print(" ", dict(zip(agg_schema.names, row)))


if __name__ == "__main__":
    main()
