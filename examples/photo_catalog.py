#!/usr/bin/env python3
"""SQL over binary objects: the EXIF example of Section VII.

"One can imagine different types of Spark jobs ingesting information
from non-textual data thanks to Scoop pushdown filters; examples include
bringing EXIF metadata from JPEGs."  This example stores a few hundred
image-like binary objects (tag header + opaque payload), registers a
metadata relation, and answers catalog questions with plain SQL -- while
the payloads never leave the store.

Run:  python examples/photo_catalog.py
"""

import random

from repro import ScoopContext, Schema
from repro.spark.binary_source import BinaryMetadataRelation
from repro.storlets.metadata_storlet import (
    MetadataExtractorStorlet,
    encode_image,
)

CAMERAS = ["NikonD500", "CanonR5", "SonyA7IV", "FujiXT5"]
CITIES = ["Rotterdam", "Paris", "Berlin", "Nice"]
TAG_SCHEMA = Schema.of("camera", "city", "iso:int", "width:int", "height:int")


def main() -> None:
    ctx = ScoopContext(storage_node_count=3)
    ctx.engine.deploy(MetadataExtractorStorlet(), ctx.client)
    ctx.client.put_container("photos")

    rng = random.Random(7)
    print("uploading 200 'photos' (tag header + opaque payload)...")
    for index in range(200):
        tags = {
            "camera": rng.choice(CAMERAS),
            "city": rng.choice(CITIES),
            "iso": str(rng.choice([100, 200, 400, 800, 1600, 3200])),
            "width": "6000",
            "height": "4000",
        }
        ctx.client.put_object(
            "photos",
            f"shoot-{index // 50}/img-{index:04d}.img",
            encode_image(tags, payload_size=rng.randint(20_000, 60_000)),
        )
    total_bytes = ctx.connector.dataset_size("photos")
    print(f"stored {total_bytes / 1e6:.1f} MB of photos\n")

    ctx.session.register_table(
        "photos",
        BinaryMetadataRelation(
            ctx.spark_context, ctx.connector, "photos", TAG_SCHEMA
        ),
    )

    ctx.connector.metrics.reset()
    print("which camera shoots the most in low light (ISO >= 1600)?")
    ctx.session.sql(
        "SELECT camera, count(*) AS shots, avg(iso) AS avg_iso FROM photos "
        "WHERE iso >= 1600 GROUP BY camera ORDER BY shots DESC"
    ).show()

    print("\nhow much storage does each shoot directory use?")
    ctx.session.sql(
        "SELECT SUBSTRING(object_name, 0, 7) AS shoot, count(*) AS photos, "
        "sum(payload_bytes) AS bytes FROM photos "
        "GROUP BY SUBSTRING(object_name, 0, 7) ORDER BY shoot"
    ).show()

    moved = ctx.connector.metrics.bytes_transferred
    print(
        f"\nbytes moved to answer both queries: {moved:,} "
        f"({moved / total_bytes * 100:.2f}% of the stored photos -- "
        "the payloads never travelled)"
    )


if __name__ == "__main__":
    main()
