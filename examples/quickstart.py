#!/usr/bin/env python3
"""Quickstart: the Scoop pushdown pipeline in ~40 lines.

Spins up a simulated disaggregated deployment (Swift-like object store
with the storlet engine + a mini Spark), uploads GridPocket-style smart
meter data, and runs the same SQL query with and without pushdown --
showing identical results but a fraction of the bytes ingested.

Run:  python examples/quickstart.py
"""

from repro import ScoopContext
from repro.gridpocket import DatasetSpec, METER_SCHEMA, upload_dataset


def main() -> None:
    # One call wires everything: object store, storlet engine (with the
    # CSV pushdown filter deployed), Stocator connector, Spark session.
    ctx = ScoopContext(storage_node_count=4, num_workers=4, chunk_size=256 * 1024)

    # Generate and upload two weeks of readings from 60 meters.
    sizes = upload_dataset(
        ctx.client,
        "meters",
        DatasetSpec(meters=60, intervals=2016, objects=4),
    )
    total = sum(sizes.values())
    print(f"uploaded {len(sizes)} objects, {total / 1e6:.1f} MB total")

    # Register the same container twice: with and without pushdown.
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    ctx.register_csv_table(
        "largeMeterPlain", "meters", schema=METER_SCHEMA, pushdown=False
    )

    sql = (
        "SELECT vid, sum(index) as total, first_value(city) as city "
        "FROM {} WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01%' "
        "GROUP BY vid ORDER BY vid"
    )

    frame, pushdown_report = ctx.run_query(sql.format("largeMeter"))
    plain_frame, plain_report = ctx.run_query(sql.format("largeMeterPlain"))

    print("\nquery results (pushdown):")
    frame.show(limit=5)
    assert frame.collect() == plain_frame.collect(), "results must match!"

    print("\nhow the store helped:")
    print(frame.explain())
    print(
        f"\ningested bytes  plain: {plain_report.bytes_transferred:>12,}"
        f"\n                scoop: {pushdown_report.bytes_transferred:>12,}"
        f"  (data selectivity "
        f"{pushdown_report.data_selectivity * 100:.1f}%)"
    )
    print(
        f"storage-side CPU spent filtering: "
        f"{ctx.storage_cpu_seconds():.3f} core-seconds"
    )


if __name__ == "__main__":
    main()
