#!/usr/bin/env python3
"""Adaptive pushdown: gold/bronze tenants under storage load (Sec. VII).

The paper's discussion section sketches a Crystal-style control loop:
"under peak workloads and CPU/parallelism constraints at the object
store, an administrator may decide that only 'gold' tenants enjoy the
pushdown service, whereas 'bronze' tenants will ingest data in the
traditional way", with filter effectiveness "modeled -- e.g., by
approximating the data selectivity".

This example wires the AdaptivePushdownController to a live storage-CPU
probe and shows three behaviours:

1. everyone pushes down while the store is idle;
2. bronze (then silver) tenants are shed as CPU pressure rises;
3. the selectivity model learns that a filter is not worth pushing.

Run:  python examples/adaptive_pushdown.py
"""

from repro import AdaptivePushdownController, AnalyticsDelegator
from repro.core.policies import SelectivityModel, TenantClass, TenantPolicy
from repro.experiments import render_table
from repro.gridpocket import METER_SCHEMA


QUERY = (
    "SELECT vid, sum(index) as total FROM largeMeter "
    "WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01%' GROUP BY vid"
)


def decide_for_all(controller: AnalyticsDelegator, tenants):
    row = []
    for tenant in tenants:
        task = controller.make_task(QUERY, METER_SCHEMA, tenant=tenant)
        row.append("pushdown" if task is not None else "plain ingest")
    return row


def main() -> None:
    # A fake probe we can turn like a dial; in ScoopContext this would be
    # backed by the storlet sandboxes / metrics collector.
    pressure = {"cpu": 0.1}
    controller = AdaptivePushdownController(
        storage_cpu_probe=lambda: pressure["cpu"]
    )
    for name, tenant_class in [
        ("gold-corp", TenantClass.GOLD),
        ("silver-labs", TenantClass.SILVER),
        ("bronze-free", TenantClass.BRONZE),
    ]:
        controller.set_policy(TenantPolicy(name, tenant_class))
    delegator = AnalyticsDelegator(controller)

    tenants = ["gold-corp", "silver-labs", "bronze-free"]
    rows = []
    for cpu in (0.1, 0.65, 0.9):
        pressure["cpu"] = cpu
        rows.append([f"{cpu * 100:.0f}%"] + decide_for_all(delegator, tenants))
    render_table(
        "Who keeps the pushdown service as storage CPU rises",
        ["storage CPU"] + tenants,
        rows,
    )
    print("decision log (last three):")
    for record in delegator.log[-3:]:
        print(f"  {record.tenant:<12} pushed={record.pushed_down} ({record.reason})")

    # -- the selectivity model learning loop ---------------------------------
    print("\nlearning that a filter is not worth pushing:")
    pressure["cpu"] = 0.1
    model = SelectivityModel(prior=0.9, smoothing=0.5)
    learner = AdaptivePushdownController(
        storage_cpu_probe=lambda: pressure["cpu"], selectivity_model=model
    )
    learning_delegator = AnalyticsDelegator(learner)
    task = learning_delegator.make_task(QUERY, METER_SCHEMA, tenant="t")
    assert task is not None
    for round_number in range(1, 6):
        # Observed reality: the filter discards almost nothing (2%).
        learner.observe_invocation("t", task, bytes_in=1000, bytes_out=980)
        estimate = model.estimate("t", task)
        decision = learner.decide("t", task)
        print(
            f"  round {round_number}: estimated selectivity "
            f"{estimate * 100:5.1f}% -> "
            f"{'push down' if decision.push_down else 'ingest plainly'}"
        )


if __name__ == "__main__":
    main()
