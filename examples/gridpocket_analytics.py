#!/usr/bin/env python3
"""GridPocket analytics: the paper's real use case, end to end.

Runs all seven data-intensive SQL queries that GridPocket data
scientists execute (Table I of the paper) over generated smart-meter
data, with and without Scoop pushdown, reporting per-query ingest
savings -- then replays the measured selectivities through the
performance model at the paper's 500 GB scale to reproduce the Fig. 7
speedups.

Run:  python examples/gridpocket_analytics.py
"""

from repro import ScoopContext
from repro.experiments import render_table
from repro.gridpocket import (
    DatasetSpec,
    GRIDPOCKET_QUERIES,
    METER_SCHEMA,
    upload_dataset,
)
from repro.perfmodel import DATASETS, IngestSimulation, SelectivityProfile


def main() -> None:
    ctx = ScoopContext(storage_node_count=4, num_workers=4, chunk_size=256 * 1024)
    # One month of 10-minute readings from 40 meters.
    upload_dataset(
        ctx.client, "meters", DatasetSpec(meters=40, intervals=4464, objects=4)
    )
    ctx.register_csv_table("largeMeter", "meters", schema=METER_SCHEMA)
    ctx.register_csv_table(
        "largeMeterPlain", "meters", schema=METER_SCHEMA, pushdown=False
    )

    # -- functional pass: every query, both paths, results compared -----
    rows = []
    selectivities = {}
    for query in GRIDPOCKET_QUERIES:
        frame, report = ctx.run_query(query.sql("largeMeter"))
        plain_frame, plain_report = ctx.run_query(
            query.sql("largeMeterPlain")
        )
        assert frame.collect() == plain_frame.collect(), query.name
        selectivities[query.name] = report.data_selectivity
        rows.append(
            [
                query.name,
                len(frame.collect()),
                f"{plain_report.bytes_transferred:,}",
                f"{report.bytes_transferred:,}",
                f"{report.data_selectivity * 100:.2f}%",
            ]
        )
    render_table(
        "GridPocket queries on live data (pushdown == plain, verified)",
        ["query", "result rows", "plain bytes", "scoop bytes", "selectivity"],
        rows,
    )

    # -- performance pass: same queries at the paper's 500 GB scale -----
    # The live dataset above covers one month, so its date filters
    # discard little; the paper's datasets span years.  For the Fig. 7
    # replay we use selectivities measured on a multi-year sample, like
    # the benchmark harness does.
    from repro.experiments import table1_selectivities

    print("\nmeasuring selectivities on a multi-year sample (paper span)...")
    table1 = {row.name: row.measured for row in table1_selectivities()}
    simulation = IngestSimulation()
    medium = DATASETS["medium"].size_bytes
    plain_seconds = simulation.run("plain", medium).duration
    perf_rows = []
    total_pushdown = 0.0
    for query in GRIDPOCKET_QUERIES:
        profile = SelectivityProfile.mixed(
            table1[query.name].data_selectivity
        )
        pushdown_seconds = simulation.run(
            "pushdown", medium, profile
        ).duration
        total_pushdown += pushdown_seconds
        perf_rows.append(
            [
                query.name,
                round(plain_seconds, 1),
                round(pushdown_seconds, 1),
                round(plain_seconds / pushdown_seconds, 2),
            ]
        )
    render_table(
        "Fig. 7-style speedups at 500 GB scale (simulated OSIC testbed)",
        ["query", "plain (s)", "scoop (s)", "S_Q"],
        perf_rows,
    )
    print(
        f"\nwhole-batch: {plain_seconds * 7:,.0f} s plain vs "
        f"{total_pushdown:,.0f} s with Scoop "
        f"(paper: 4,814.7 s vs 155.48 s)"
    )


if __name__ == "__main__":
    main()
